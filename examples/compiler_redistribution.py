#!/usr/bin/env python
"""A compiler's view: array redistribution between HPF distributions.

Generates the communication set for ``B = A`` where A is BLOCK- and B
CYCLIC-distributed (and an irregular case), classifies each message's
access patterns, and lets the copy-transfer model pick the best
implementation strategy per machine — the decision procedure the paper
proposes for parallelizing compilers.

Run:  python examples/compiler_redistribution.py
"""

import numpy as np

from repro import paragon, t3d
from repro.compiler import Block, Cyclic, Irregular, redistribute_1d


def describe(plan, machines) -> None:
    print(f"plan {plan.name!r}: {len(plan)} messages, "
          f"{plan.total_bytes // 1024} KB total")
    print(f"  patterns: {plan.pattern_histogram()}")
    dominant = plan.dominant_op()
    print(f"  dominant op: {dominant.notation}, {dominant.nwords} words each")
    for machine in machines:
        model = machine.model()
        choice = model.choose(dominant.x, dominant.y)
        alternatives = ", ".join(
            f"{style.value} {est.mbps:.1f}" for style, est in choice.alternatives
        )
        print(
            f"  {machine.name:14}: use {choice.style.value:14} "
            f"({choice.mbps:.1f} MB/s; alternatives: {alternatives})"
        )
    print()


def main() -> None:
    machines = (t3d(), paragon())
    n, nodes = 1 << 16, 64

    # Regular redistribution: BLOCK -> CYCLIC.
    plan = redistribute_1d(
        Block(n, nodes), Cyclic(n, nodes), name="block->cyclic"
    )
    describe(plan, machines)

    # The reverse direction flips the strided side.
    plan = redistribute_1d(
        Cyclic(n, nodes), Block(n, nodes), name="cyclic->block"
    )
    describe(plan, machines)

    # Irregular destination: A[1:n] = B[X[1:n]] style indexed traffic.
    rng = np.random.default_rng(7)
    node_map = rng.integers(0, nodes, size=n)
    plan = redistribute_1d(
        Block(n, nodes), Irregular(node_map, nodes), name="block->irregular"
    )
    describe(plan, machines)


if __name__ == "__main__":
    main()
