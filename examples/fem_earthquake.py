#!/usr/bin/env python
"""FEM solver communication on a partitioned irregular mesh.

Builds a synthetic analogue of the Quake project's alluvial-valley
mesh, runs the iterative solver functionally (checking convergence),
and measures the halo-exchange communication step — the paper's
indexed-pattern (``wQw``) application (Table 6, row 2).

Run:  python examples/fem_earthquake.py
"""

import numpy as np

from repro import OperationStyle, t3d
from repro.apps import FEMKernel, FEMSolver


def main() -> None:
    machine = t3d()
    kernel = FEMKernel(machine, n_nodes=64, side=256)
    mesh = kernel.mesh

    print(
        f"mesh: {mesh.n_vertices} vertices, {len(mesh.edges)} edges, "
        f"{mesh.n_nodes} partitions"
    )
    print(f"boundary fraction: {mesh.boundary_fraction():.1%} "
          "(well partitioned: only a fraction of elements exchanged)")

    # -- functional solve -------------------------------------------------
    solver = FEMSolver(mesh)
    rng = np.random.default_rng(0)
    x_true = rng.normal(size=mesh.n_vertices)
    b = solver.matvec(x_true)
    x, residual = solver.solve(b, iterations=300)
    print(f"\nJacobi solve: residual {residual:.2e}, "
          f"max error {np.max(np.abs(x - x_true)):.2e}")

    # -- communication measurement ---------------------------------------
    plan = kernel.communication_plan()
    dominant = plan.dominant_op()
    print(f"\nhalo exchange: {len(plan)} messages, dominant {dominant.notation} "
          f"of {dominant.nwords} words")

    packing = kernel.measure(OperationStyle.BUFFER_PACKING)
    chained = kernel.measure(OperationStyle.CHAINED)
    model = kernel.model_estimate(OperationStyle.CHAINED)
    print(
        f"measured: packing {packing.per_node_mbps:.1f}, "
        f"chained {chained.per_node_mbps:.1f} MB/s per node "
        f"(chained model {model:.1f})"
    )
    gain = chained.per_node_mbps / packing.per_node_mbps - 1
    print(f"chained transfers win by {gain:.0%} on indexed halo traffic")


if __name__ == "__main__":
    main()
