#!/usr/bin/env python
"""What-if studies for machine designers.

The paper closes with advice to hardware designers: deposit engines
must handle non-contiguous patterns, and memory-system features (write
buffers, pipelined loads) decide communication throughput.  Because
machines here are plain parameter sets, those what-ifs take a few
lines each:

1. give the T3D a Paragon-style DMA that only handles contiguous
   blocks — chained transfers for strided/indexed patterns vanish;
2. turn off the T3D's write-back-queue merging — strided stores (and
   with them buffer packing for ``1Qn``) collapse;
3. double the Paragon's wire speed without touching the nodes — the
   memory system, not the network, still limits every pattern.

Run:  python examples/design_a_machine.py
"""

from dataclasses import replace

from repro import CONTIGUOUS, INDEXED, strided, t3d, paragon
from repro.core import DepositSupport
from repro.machines import replace_node


def rates(machine, label):
    model = machine.model(source="simulated")
    packing = model.estimate(CONTIGUOUS, strided(64), "buffer-packing").mbps
    try:
        chained = model.estimate(INDEXED, INDEXED, "chained").mbps
        chained_text = f"{chained:6.1f}"
    except Exception as error:  # chained may be infeasible by design
        chained_text = f"infeasible ({type(error).__name__})"
    print(f"{label:34} packing 1Q64 {packing:6.1f}   chained wQw {chained_text}")


def main() -> None:
    print("baseline machines (simulated calibration):")
    rates(t3d(), "T3D")
    rates(paragon(), "Paragon")

    print("\nwhat-if 1: T3D annex restricted to contiguous deposits")
    crippled = t3d()
    crippled.capabilities = replace(
        crippled.capabilities, deposit=DepositSupport.CONTIGUOUS
    )
    rates(crippled, "T3D w/ contiguous-only deposits")

    print("\nwhat-if 2: T3D without write-buffer merging")
    no_merge = replace_node(
        t3d(),
        write_buffer=replace(t3d().node.write_buffer, merge=False),
    )
    rates(no_merge, "T3D w/o WBQ merging")

    print("\nwhat-if 3: Paragon with a 2x faster network")
    fast_net = paragon()
    fast_net.network = replace(
        fast_net.network,
        payload_data_mbps=2 * fast_net.network.payload_data_mbps,
        payload_adp_mbps=2 * fast_net.network.payload_adp_mbps,
    )
    rates(fast_net, "Paragon w/ 2x network")
    print(
        "\nreading: doubling the wire barely moves application-visible "
        "throughput —\nthe memory system is the limit, the paper's "
        "central claim."
    )


if __name__ == "__main__":
    main()
