#!/usr/bin/env python
"""Quickstart: predict and measure communication throughput.

The core workflow of the library in ~40 lines:

1. pick a machine (Cray T3D or Intel Paragon);
2. describe a communication operation ``xQy`` by its access patterns;
3. ask the copy-transfer model which implementation strategy wins;
4. confirm with an end-to-end measurement on the simulators.

Run:  python examples/quickstart.py
"""

from repro import CONTIGUOUS, INDEXED, OperationStyle, strided, t3d
from repro.runtime import measure_q


def main() -> None:
    machine = t3d()
    model = machine.model()  # published calibration, typical congestion

    print(f"machine: {machine.name}\n")
    print(f"{'operation':10} {'packing':>9} {'chained':>9}  best strategy")

    cases = [
        (CONTIGUOUS, CONTIGUOUS),
        (CONTIGUOUS, strided(64)),
        (strided(64), CONTIGUOUS),
        (INDEXED, INDEXED),
    ]
    for x, y in cases:
        choice = model.choose(x, y)
        packing = model.estimate(x, y, OperationStyle.BUFFER_PACKING)
        chained = model.estimate(x, y, OperationStyle.CHAINED)
        name = f"{x.subscript}Q{y.subscript}"
        print(
            f"{name:10} {packing.mbps:7.1f}   {chained.mbps:7.1f}   "
            f"{choice.style.value}"
        )

    # Under the hood: the model is a composition of basic transfers.
    expr = model.build(INDEXED, INDEXED, OperationStyle.BUFFER_PACKING)
    estimate = model.estimate_expr(expr)
    print(f"\nbuffer-packing wQw decomposes as:  {expr.notation()}")
    print(estimate.render())

    # And the runtime simulator measures the same operation end to end.
    measured = measure_q(
        machine, INDEXED, INDEXED, 128 * 1024, OperationStyle.CHAINED
    )
    print(
        f"\nend-to-end measured chained wQw (128 KB): {measured.mbps:.1f} MB/s "
        f"(model said {model.estimate(INDEXED, INDEXED, 'chained').mbps:.1f})"
    )


if __name__ == "__main__":
    main()
