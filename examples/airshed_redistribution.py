#!/usr/bin/env python
"""The air-shed model's phase redistribution (Section 6.1.1).

The paper's grand-challenge example: an air-pollution model
(McRae/Goodin/Seinfeld) redistributes a 3500 x (35 x 5) array between
a chemistry phase (each node owns whole columns of chemical species)
and a transport phase (each node owns geographic rows), implemented as
a generic transpose.  We build exactly that redistribution, classify
its patterns, and compare implementation strategies on the T3D.

Run:  python examples/airshed_redistribution.py
"""

import numpy as np

from repro import OperationStyle, t3d
from repro.compiler import transpose_2d
from repro.runtime import CommRuntime, CommunicationStep, lowlevel_profile, packing_profile

ROWS = 3500       # grid cells
COLS = 175        # 35 species x 5 layers
N_NODES = 35      # divides both axes


def main() -> None:
    machine = t3d()
    plan = transpose_2d(ROWS, COLS, N_NODES, name="airshed")
    dominant = plan.dominant_op()
    print(
        f"air-shed redistribution: {ROWS}x{COLS} doubles over {N_NODES} nodes"
    )
    print(f"  {len(plan)} messages of {dominant.nwords} words, "
          f"dominant pattern {dominant.notation}")
    print(f"  per-node payload: "
          f"{sum(op.nbytes for op in plan.messages_from(0)) // 1024} KB")

    results = {}
    for style, library in (
        (OperationStyle.BUFFER_PACKING, packing_profile()),
        (OperationStyle.CHAINED, lowlevel_profile()),
    ):
        runtime = CommRuntime(machine, library=library)
        step = CommunicationStep(
            runtime, plan.flows(), dominant.x, dominant.y, dominant.nbytes
        )
        results[style.value] = step.run(style)

    print("\nper-node throughput of the redistribution step:")
    for name, result in results.items():
        print(
            f"  {name:16} {result.per_node_mbps:6.1f} MB/s "
            f"(congestion {result.congestion:.0f}, "
            f"{result.messages_per_node} messages/node)"
        )
    gain = (
        results["chained"].per_node_mbps
        / results["buffer-packing"].per_node_mbps
        - 1
    )
    print(f"\nchained transfers win by {gain:.0%} — the same conclusion as "
          "the 2-D FFT transpose,\nat the odd shape and node count of a "
          "real application.")


if __name__ == "__main__":
    main()
