#!/usr/bin/env python
"""The 2-D FFT transpose: the paper's motivating application.

Runs the distributed 2-D FFT functionally (validated against numpy),
then measures its transpose communication step on the simulated T3D
both ways the compiler could implement it (Figure 9):

* loop order "row": contiguous loads + strided stores (``1Qn``);
* loop order "col": strided loads + contiguous stores (``nQ1``);

for both buffer-packing and chained strategies.

Run:  python examples/transpose_fft.py
"""

import numpy as np

from repro import OperationStyle, paragon, t3d
from repro.apps import FFT2D


def main() -> None:
    # -- functional check on a small instance ---------------------------
    machine = t3d()
    small = FFT2D(machine, n=128, n_nodes=16)
    rng = np.random.default_rng(42)
    data = rng.normal(size=(128, 128)) + 1j * rng.normal(size=(128, 128))
    ours = small.run(data)
    error = np.max(np.abs(ours - np.fft.fft2(data)))
    print(f"distributed 2-D FFT vs numpy.fft.fft2: max |error| = {error:.2e}")
    assert error < 1e-8

    # -- communication measurement at paper scale -----------------------
    print("\n1024x1024 complex transpose on 64 nodes, MB/s per node:")
    print(f"{'machine':16} {'order':6} {'packing':>8} {'chained':>8}")
    for m in (t3d(), paragon()):
        for order in ("row", "col"):
            kernel = FFT2D(m, n=1024, n_nodes=64, loop_order=order)
            packing = kernel.measure(OperationStyle.BUFFER_PACKING)
            chained = kernel.measure(OperationStyle.CHAINED)
            print(
                f"{m.name:16} {order:6} {packing.per_node_mbps:8.1f} "
                f"{chained.per_node_mbps:8.1f}"
            )

    print(
        "\nreading: the T3D prefers 'row' (strided stores ride the "
        "write-back queue);\nthe Paragon prefers 'col' (pipelined strided "
        "loads) — Section 5.2's optimization."
    )


if __name__ == "__main__":
    main()
