"""repro — the copy-transfer model of Stricker & Gross (ISCA 1995).

A reproduction of "Optimizing Memory System Performance for
Communication in Parallel Computers": the copy-transfer model itself
(:mod:`repro.core`), simulators for the node memory systems
(:mod:`repro.memsim`) and interconnects (:mod:`repro.netsim`) of the
paper's two machines (:mod:`repro.machines`), a simulated
message-passing runtime for end-to-end measurements
(:mod:`repro.runtime`), the compiler view of communication
(:mod:`repro.compiler`), and the paper's three application kernels
(:mod:`repro.apps`).

Quickstart::

    from repro import t3d, CONTIGUOUS, strided

    model = t3d().model()
    packing = model.estimate(CONTIGUOUS, strided(64), "buffer-packing")
    chained = model.estimate(CONTIGUOUS, strided(64), "chained")
    print(packing.mbps, chained.mbps)   # ~25 vs ~38 MB/s
"""

from .core import (
    AccessPattern,
    CommCapabilities,
    CONTIGUOUS,
    CopyTransferModel,
    DepositSupport,
    FIXED,
    INDEXED,
    ModelError,
    OperationStyle,
    PatternKind,
    ResourceConstraint,
    StyleChoice,
    ThroughputEstimate,
    ThroughputTable,
    TransferKind,
    buffer_packing,
    chained,
    duplex_memory_constraint,
    evaluate,
    par,
    seq,
    strided,
)
from .machines import Machine, paragon, t3d

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "buffer_packing",
    "chained",
    "CommCapabilities",
    "CONTIGUOUS",
    "CopyTransferModel",
    "DepositSupport",
    "duplex_memory_constraint",
    "evaluate",
    "FIXED",
    "INDEXED",
    "Machine",
    "ModelError",
    "OperationStyle",
    "par",
    "paragon",
    "PatternKind",
    "seq",
    "strided",
    "StyleChoice",
    "t3d",
    "ThroughputEstimate",
    "ThroughputTable",
    "TransferKind",
]
