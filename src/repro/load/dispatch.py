"""Dispatch policies: which destination node serves a request.

A policy sees the request's identity and the current per-node backlog
and picks the destination node.  The source node is fixed per
generator (a pure hash of the generator's *name*), so a policy routes
work, not senders.  Every policy is deterministic:

* ``round-robin`` — cycle destinations in dispatch order (the event
  loop's order, which is itself canonical), skipping the source;
* ``least-loaded`` — the node with the smallest total station backlog,
  lowest node id on ties, skipping the source;
* ``affinity`` — a pure hash of ``(generator, client/template)`` so a
  client's requests always land on the same node (cache-warm
  dispatch), independent of everything else in flight.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..core.errors import ModelError
from .workload import uniform

__all__ = ["DispatchPolicy", "policy_by_name", "POLICIES"]


class DispatchPolicy:
    """Base: pick a destination node for a request.

    Args:
        nodes: Partition size; destinations are ``0..nodes-1``.
        seed: Profile seed (affinity hashing).
    """

    name = "base"

    def __init__(self, nodes: int, seed: int) -> None:
        self.nodes = nodes
        self.seed = seed

    def pick(
        self,
        src: int,
        generator: str,
        client: int,
        template: str,
        backlog: Sequence[int],
    ) -> int:
        raise NotImplementedError

    def _skip_src(self, node: int, src: int) -> int:
        """Bump ``node`` off ``src`` (a node does not message itself)."""
        if node != src:
            return node
        return (node + 1) % self.nodes


class RoundRobin(DispatchPolicy):
    """Cycle through destinations in dispatch order."""

    name = "round-robin"

    def __init__(self, nodes: int, seed: int) -> None:
        super().__init__(nodes, seed)
        self._next = 0

    def pick(self, src, generator, client, template, backlog) -> int:
        node = self._next % self.nodes
        self._next += 1
        return self._skip_src(node, src)


class LeastLoaded(DispatchPolicy):
    """The destination with the smallest station backlog right now."""

    name = "least-loaded"

    def pick(self, src, generator, client, template, backlog) -> int:
        best = None
        best_load = None
        for node, load in enumerate(backlog):
            if node == src:
                continue
            if best_load is None or load < best_load:
                best, best_load = node, load
        assert best is not None  # nodes >= 2, so one candidate exists
        return best


class Affinity(DispatchPolicy):
    """Sticky per-client destination via a pure hash."""

    name = "affinity"

    def pick(self, src, generator, client, template, backlog) -> int:
        draw = uniform(self.seed, "affinity", generator, client, template)
        return self._skip_src(int(draw * self.nodes) % self.nodes, src)


POLICIES: Dict[str, Callable[[int, int], DispatchPolicy]] = {
    "round-robin": RoundRobin,
    "least-loaded": LeastLoaded,
    "affinity": Affinity,
}


def policy_by_name(name: str, nodes: int, seed: int) -> DispatchPolicy:
    """Instantiate a dispatch policy; :class:`ModelError` if unknown."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ModelError(
            f"unknown dispatch policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        )
    return factory(nodes, seed)
