"""Overload protection for the traffic engine: admission control.

The paper's whole point is that communication performance collapses
when a memory-system resource saturates.  The load engine can drive a
node into that regime — an open-loop generator above the NIC's
calibrated capacity grows queues (and p99) without bound.  This module
is the part of the protection layer that decides, *before a request is
priced*, whether the system should take it at all:

* :class:`OverloadSpec` — the profile-level configuration: admission
  policy, station capacity, reject handling (drop vs seeded backoff
  retry), retry budget, circuit-breaker parameters and the declared
  p99 ceiling the latency-curve assertions hold the protected engine
  to;
* :class:`AdmissionPolicy` and its implementations — ``none``,
  ``bounded-queue`` (gate on the source NIC's backlog),
  ``token-bucket`` (seeded refill on simulated time) and ``adaptive``
  (AIMD on the observed p99, the gradient-descent shape of
  Netflix-style concurrency limiters).

Every decision is content-derived: backlog and token state evolve only
with simulated events, and the adaptive policy's probabilistic gate
draws through the pure-hash :func:`repro.load.workload.uniform` — so a
protected run replays bit-identically, like everything else in
``repro.load``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..core.errors import LoadError

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "OverloadSpec",
    "admission_by_name",
]

#: Admission policy names accepted by :attr:`OverloadSpec.admission`.
ADMISSION_POLICIES = ("none", "bounded-queue", "token-bucket", "adaptive")

_REJECT_MODES = ("drop", "backoff")


@dataclass(frozen=True)
class OverloadSpec:
    """Overload-protection configuration for one load profile.

    The default instance is a no-op (:meth:`is_noop`): admission
    ``none``, unbounded stations, breakers off — and the engine treats
    a no-op spec exactly like no spec at all, so the protection-off
    report stays byte-identical to the unprotected engine's.

    Attributes:
        admission: One of :data:`ADMISSION_POLICIES`.
        queue_limit: ``bounded-queue``: maximum source-NIC backlog
            (queued + in service) admitted; at or beyond it new
            arrivals are rejected.
        station_capacity: Waiting-line bound installed on every
            station (0 = unbounded).  Rejections mid-route count
            against the station and the request's generator.
        token_rate_per_s: ``token-bucket``: sustained admitted request
            rate; tokens refill on simulated time.
        token_burst: ``token-bucket``: bucket depth (maximum burst
            admitted from a full bucket).
        target_p99_ns: ``adaptive``: the p99 the controller steers
            toward — multiplicative decrease of the admit fraction
            while the windowed p99 exceeds it, additive increase
            otherwise.
        p99_ceiling_ns: Declared bound on reported p99 (0 = none).
            Not enforced by the engine; the latency-curve knee report
            and the overload CI job assert against it.
        reject_retry: ``"drop"`` (open-loop semantics: a rejected
            request is lost) or ``"backoff"`` (closed-loop semantics:
            the request re-arrives after a seeded exponential backoff,
            up to ``max_retries`` attempts, subject to the retry
            budget).
        retry_backoff_ns: Base backoff before the first re-arrival;
            doubles per attempt, with a pure-hash jitter in [0.5, 1.5).
        max_retries: Re-arrival attempts per rejected request.
        retry_budget: Maximum fraction of in-flight arrivals that may
            be retries, in [0, 1].  Composes with the fault plan's
            :attr:`~repro.faults.policy.RetryPolicy.retry_budget` (the
            stricter of the two wins) so reject-retries and
            abort-retries cannot storm an open breaker.
        breaker_threshold: Consecutive per-link failures that trip the
            breaker open (0 = breakers off).
        breaker_cooldown_ns: Simulated time an open breaker waits
            before letting half-open probes through.
        breaker_probes: Consecutive half-open probe successes required
            to close.
        breaker_derate_trip: Treat a link whose fault-plan derate is
            at or below this remaining-capacity fraction as failing
            (0 = ignore derates).
    """

    admission: str = "none"
    queue_limit: int = 64
    station_capacity: int = 0
    token_rate_per_s: float = 0.0
    token_burst: int = 32
    target_p99_ns: float = 0.0
    p99_ceiling_ns: float = 0.0
    reject_retry: str = "drop"
    retry_backoff_ns: float = 200_000.0
    max_retries: int = 3
    retry_budget: float = 1.0
    breaker_threshold: int = 0
    breaker_cooldown_ns: float = 5_000_000.0
    breaker_probes: int = 1
    breaker_derate_trip: float = 0.0

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_POLICIES:
            raise LoadError(
                f"unknown admission policy {self.admission!r}; "
                f"choose from {list(ADMISSION_POLICIES)}"
            )
        if self.queue_limit < 1:
            raise LoadError(
                f"queue limit must be >= 1, got {self.queue_limit}"
            )
        if self.station_capacity < 0:
            raise LoadError(
                "station capacity must be >= 0 (0 = unbounded), "
                f"got {self.station_capacity}"
            )
        if self.admission == "token-bucket" and self.token_rate_per_s <= 0.0:
            raise LoadError(
                "token-bucket admission needs token_rate_per_s > 0"
            )
        if self.token_rate_per_s < 0.0:
            raise LoadError("token rate cannot be negative")
        if self.token_burst < 1:
            raise LoadError(
                f"token burst must be >= 1, got {self.token_burst}"
            )
        if self.admission == "adaptive" and self.target_p99_ns <= 0.0:
            raise LoadError("adaptive admission needs target_p99_ns > 0")
        for name, value in (
            ("target_p99_ns", self.target_p99_ns),
            ("p99_ceiling_ns", self.p99_ceiling_ns),
            ("retry_backoff_ns", self.retry_backoff_ns),
            ("breaker_cooldown_ns", self.breaker_cooldown_ns),
            ("breaker_derate_trip", self.breaker_derate_trip),
        ):
            if value < 0.0:
                raise LoadError(f"{name} cannot be negative, got {value}")
        if self.reject_retry not in _REJECT_MODES:
            raise LoadError(
                f"reject_retry must be one of {_REJECT_MODES}, "
                f"got {self.reject_retry!r}"
            )
        if self.max_retries < 0:
            raise LoadError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not 0.0 <= self.retry_budget <= 1.0:
            raise LoadError(
                f"retry budget must be in [0, 1], got {self.retry_budget}"
            )
        if self.breaker_threshold < 0:
            raise LoadError(
                f"breaker threshold must be >= 0, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_probes < 1:
            raise LoadError(
                f"breaker probes must be >= 1, got {self.breaker_probes}"
            )
        if not 0.0 <= self.breaker_derate_trip <= 1.0:
            raise LoadError(
                "breaker derate trip must be in [0, 1], got "
                f"{self.breaker_derate_trip}"
            )

    def is_noop(self) -> bool:
        """True when this spec changes nothing about the engine.

        A no-op spec is treated exactly like ``overload=None``, which
        is what keeps ``--admission none`` byte-identical to PR 8.
        """
        return (
            self.admission == "none"
            and self.station_capacity == 0
            and self.breaker_threshold == 0
        )

    def breakers_enabled(self) -> bool:
        return self.breaker_threshold > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "admission": self.admission,
            "queue_limit": self.queue_limit,
            "station_capacity": self.station_capacity,
            "token_rate_per_s": self.token_rate_per_s,
            "token_burst": self.token_burst,
            "target_p99_ns": self.target_p99_ns,
            "p99_ceiling_ns": self.p99_ceiling_ns,
            "reject_retry": self.reject_retry,
            "retry_backoff_ns": self.retry_backoff_ns,
            "max_retries": self.max_retries,
            "retry_budget": self.retry_budget,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_ns": self.breaker_cooldown_ns,
            "breaker_probes": self.breaker_probes,
            "breaker_derate_trip": self.breaker_derate_trip,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "OverloadSpec":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise LoadError(f"malformed overload spec: {exc}") from exc


class AdmissionPolicy:
    """Base: decide whether one arrival enters the system.

    The engine calls :meth:`admit` once per arrival, *before* the
    request is priced or routed, with the source node's current NIC
    backlog and the request's content-derived identity; and
    :meth:`observe` once per completion, feeding the closed loop the
    adaptive policy needs.  Both run on simulated time only.
    """

    name = "none"

    def __init__(self, spec: OverloadSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed

    def admit(
        self, now_ns: float, nic_backlog: int, identity: Tuple[Any, ...]
    ) -> bool:
        return True

    def observe(self, now_ns: float, latency_ns: float) -> None:
        pass

    def describe(self) -> Dict[str, Any]:
        return {"policy": self.name}


class BoundedQueueAdmission(AdmissionPolicy):
    """Admit while the source NIC's backlog is under ``queue_limit``.

    The simplest useful gate: offered load beyond service capacity
    turns into rejections instead of unbounded queue growth, so queue
    wait — and therefore p99 — is bounded by roughly
    ``queue_limit x service time``.
    """

    name = "bounded-queue"

    def admit(self, now_ns, nic_backlog, identity) -> bool:
        return nic_backlog < self.spec.queue_limit

    def describe(self) -> Dict[str, Any]:
        return {"policy": self.name, "queue_limit": self.spec.queue_limit}


class TokenBucketAdmission(AdmissionPolicy):
    """Admit while the bucket has a token; refill on simulated time.

    Tokens accrue at ``token_rate_per_s`` up to ``token_burst``.  The
    bucket state is a pure function of the admitted-arrival history,
    so replays are exact.
    """

    name = "token-bucket"

    def __init__(self, spec: OverloadSpec, seed: int) -> None:
        super().__init__(spec, seed)
        self._tokens = float(spec.token_burst)
        self._clock_ns = 0.0

    def admit(self, now_ns, nic_backlog, identity) -> bool:
        rate = self.spec.token_rate_per_s
        self._tokens = min(
            float(self.spec.token_burst),
            self._tokens + (now_ns - self._clock_ns) * rate / 1e9,
        )
        self._clock_ns = now_ns
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def describe(self) -> Dict[str, Any]:
        return {
            "policy": self.name,
            "token_rate_per_s": self.spec.token_rate_per_s,
            "token_burst": self.spec.token_burst,
        }


class AdaptiveAdmission(AdmissionPolicy):
    """AIMD on the observed p99: shed harder as the tail grows.

    Keeps a sliding window of completion latencies; every
    ``_PERIOD`` completions it compares the window's nearest-rank p99
    against ``target_p99_ns`` and applies the classic congestion-
    control move — multiplicative decrease (x0.7) of the admit
    fraction when over target, additive increase (+0.02) when under.
    Arrivals are gated by a pure-hash draw against the fraction, so
    the probabilistic shedding replays bit-identically.
    """

    name = "adaptive"

    _WINDOW = 128
    _PERIOD = 32
    _FLOOR = 0.05
    _DECREASE = 0.7
    _INCREASE = 0.02

    def __init__(self, spec: OverloadSpec, seed: int) -> None:
        super().__init__(spec, seed)
        self._fraction = 1.0
        self._window: List[float] = []
        self._observed = 0
        self._adjustments = 0

    def admit(self, now_ns, nic_backlog, identity) -> bool:
        if self._fraction >= 1.0:
            return True
        from .workload import uniform

        return (
            uniform(self.seed, "admit", *identity) < self._fraction
        )

    def observe(self, now_ns: float, latency_ns: float) -> None:
        window = self._window
        window.append(latency_ns)
        if len(window) > self._WINDOW:
            del window[0]
        self._observed += 1
        if self._observed % self._PERIOD:
            return
        ordered = sorted(window)
        rank = max(0, min(len(ordered) - 1, round(0.99 * (len(ordered) - 1))))
        self._adjustments += 1
        if ordered[rank] > self.spec.target_p99_ns:
            self._fraction = max(self._FLOOR, self._fraction * self._DECREASE)
        else:
            self._fraction = min(1.0, self._fraction + self._INCREASE)

    def describe(self) -> Dict[str, Any]:
        return {
            "policy": self.name,
            "target_p99_ns": self.spec.target_p99_ns,
            "final_fraction": self._fraction,
            "adjustments": self._adjustments,
        }


_POLICIES = {
    "none": AdmissionPolicy,
    "bounded-queue": BoundedQueueAdmission,
    "token-bucket": TokenBucketAdmission,
    "adaptive": AdaptiveAdmission,
}


def admission_by_name(spec: OverloadSpec, seed: int) -> AdmissionPolicy:
    """Instantiate the spec's admission policy (validated by the spec)."""
    return _POLICIES[spec.admission](spec, seed)
