"""Workload descriptions for the traffic engine.

A :class:`LoadProfile` says *who* sends *what* at the machine:

* :class:`RequestTemplate` — one request shape (an ``xQy`` transfer of
  a given size and strategy, with a queueing priority);
* :class:`OpenLoopSpec` — an open-loop generator: arrivals follow a
  seeded Poisson process at ``rate_per_s``, optionally in bursts of
  ``burst`` back-to-back requests (a bursty source), regardless of how
  the system keeps up;
* :class:`ClosedLoopSpec` — a closed-loop generator: ``clients``
  simulated clients that each issue one request, wait for it to
  complete, think for ``think_ns``, and reissue.

All randomness (arrival gaps, template picks) is drawn through the
pure-hash :func:`uniform` below — a function of ``(seed, key)`` only,
exactly like :meth:`repro.faults.FaultPlan.uniform` — so a profile
replays bit-identically for a given seed no matter how generators are
sharded across workers or interleaved in the event loop.
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.errors import ModelError
from .overload import OverloadSpec

__all__ = [
    "RequestTemplate",
    "OpenLoopSpec",
    "ClosedLoopSpec",
    "LoadProfile",
    "PROFILES",
    "profile_by_name",
    "uniform",
]


def uniform(seed: int, *key: Any) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for ``(seed, key)``.

    A pure function with no RNG state: call order, worker sharding and
    event interleaving cannot perturb replay (the ``repro.faults``
    idiom).
    """
    payload = json.dumps(
        [seed, [repr(part) for part in key]], separators=(",", ":")
    )
    digest = hashlib.sha256(payload.encode()).digest()
    (word,) = struct.unpack(">Q", digest[:8])
    return word / float(1 << 64)


def exponential(mean: float, seed: int, *key: Any) -> float:
    """A reproducible exponential draw with the given mean."""
    # 1 - u is in (0, 1], so the log never sees zero.
    return -mean * math.log(1.0 - uniform(seed, *key))


@dataclass(frozen=True)
class RequestTemplate:
    """One request shape a generator can issue.

    Attributes:
        name: Label for reporting and affinity hashing.
        x / y: Source / destination access patterns (``AccessPattern``
            strings, e.g. ``"1"`` or ``"64"``).
        nbytes: Payload size.
        style: Operation style (``"chained"`` / ``"buffer-packing"``).
        priority: Queueing priority — lower runs first under the
            ``priority`` discipline; ties fall back to arrival order.
        deadline_ns: Maximum *queue wait* a request of this shape will
            tolerate at any one station before the protected engine
            sheds it at pop time (0 = no deadline).  Ignored — at zero
            cost — by the unprotected engine.
    """

    name: str
    x: str = "1"
    y: str = "1"
    nbytes: int = 8192
    style: str = "chained"
    priority: int = 0
    deadline_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ModelError(
                f"template {self.name!r}: nbytes must be positive"
            )
        if self.deadline_ns < 0.0:
            raise ModelError(
                f"template {self.name!r}: deadline cannot be negative"
            )

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "x": self.x,
            "y": self.y,
            "nbytes": self.nbytes,
            "style": self.style,
            "priority": self.priority,
        }
        # Omitted at the default so PR-8 profile payloads (and their
        # report digests) are byte-identical when no deadline is set.
        if self.deadline_ns > 0.0:
            payload["deadline_ns"] = self.deadline_ns
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RequestTemplate":
        return cls(**payload)


def _pick_template(
    templates: Sequence[RequestTemplate], seed: int, *key: Any
) -> RequestTemplate:
    """Deterministically pick a template (uniform over the tuple)."""
    if len(templates) == 1:
        return templates[0]
    draw = uniform(seed, "template", *key)
    return templates[min(len(templates) - 1, int(draw * len(templates)))]


@dataclass(frozen=True)
class OpenLoopSpec:
    """An open-loop (arrival-rate driven) request generator.

    Attributes:
        name: Generator label (also the randomness stream key).
        rate_per_s: Mean *burst* arrival rate (Poisson).
        burst: Requests issued back-to-back per arrival; 1 is a plain
            Poisson source, larger values model bursty traffic.
        templates: Request shapes; each request picks one uniformly
            (deterministic in the seed).
    """

    name: str
    rate_per_s: float
    burst: int = 1
    templates: Tuple[RequestTemplate, ...] = field(
        default_factory=lambda: (RequestTemplate("default"),)
    )

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0.0:
            raise ModelError(f"generator {self.name!r}: rate must be positive")
        if self.burst < 1:
            raise ModelError(f"generator {self.name!r}: burst must be >= 1")
        if not self.templates:
            raise ModelError(f"generator {self.name!r}: needs a template")

    def arrivals(self, seed: int, horizon_ns: float):
        """Yield ``(time_ns, template)`` arrivals up to ``horizon_ns``.

        The gap before burst *i* is a pure function of
        ``(seed, name, i)``, so the stream is identical however many
        workers pre-generate it.
        """
        mean_gap_ns = 1e9 / self.rate_per_s
        time_ns = 0.0
        index = 0
        while True:
            time_ns += exponential(mean_gap_ns, seed, "gap", self.name, index)
            if time_ns >= horizon_ns:
                return
            for flight in range(self.burst):
                yield time_ns, _pick_template(
                    self.templates, seed, self.name, index, flight
                )
            index += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "templates": [template.to_dict() for template in self.templates],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "OpenLoopSpec":
        data = dict(payload)
        data["templates"] = tuple(
            RequestTemplate.from_dict(template)
            for template in data.get("templates", [])
        )
        return cls(**data)


@dataclass(frozen=True)
class ClosedLoopSpec:
    """A closed-loop (think-time driven) request generator.

    Attributes:
        name: Generator label (also the randomness stream key).
        clients: Number of simulated clients.
        think_ns: Mean think time between a completion and the client's
            next request (exponential; 0 means back-to-back reissue).
        templates: Request shapes, picked per issue like
            :class:`OpenLoopSpec`.
    """

    name: str
    clients: int
    think_ns: float = 0.0
    templates: Tuple[RequestTemplate, ...] = field(
        default_factory=lambda: (RequestTemplate("default"),)
    )

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ModelError(
                f"generator {self.name!r}: needs at least one client"
            )
        if self.think_ns < 0.0:
            raise ModelError(
                f"generator {self.name!r}: think time cannot be negative"
            )
        if not self.templates:
            raise ModelError(f"generator {self.name!r}: needs a template")

    def think(self, seed: int, client: int, issue: int) -> float:
        """The think gap before ``client``'s ``issue``-th request."""
        if self.think_ns <= 0.0:
            return 0.0
        return exponential(
            self.think_ns, seed, "think", self.name, client, issue
        )

    def pick(self, seed: int, client: int, issue: int) -> RequestTemplate:
        return _pick_template(
            self.templates, seed, self.name, client, issue
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "clients": self.clients,
            "think_ns": self.think_ns,
            "templates": [template.to_dict() for template in self.templates],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClosedLoopSpec":
        data = dict(payload)
        data["templates"] = tuple(
            RequestTemplate.from_dict(template)
            for template in data.get("templates", [])
        )
        return cls(**data)


@dataclass(frozen=True)
class LoadProfile:
    """A complete traffic description for one machine.

    Attributes:
        name: Profile label.
        machine: Machine to drive (``"t3d"`` / ``"paragon"``).
        nodes: Partition size requests are dispatched over.
        open_loops / closed_loops: The generators.
        dispatch: Dispatch policy name (see :mod:`repro.load.dispatch`).
        discipline: Station queue discipline, ``"fifo"`` or
            ``"priority"``.
        congestion: Network congestion the pricing transfers assume.
        overload: Optional overload-protection configuration
            (:class:`~repro.load.overload.OverloadSpec`).  ``None`` —
            and a spec whose :meth:`~OverloadSpec.is_noop` is true —
            leaves the engine on the exact unprotected code path.
    """

    name: str
    machine: str = "t3d"
    nodes: int = 8
    open_loops: Tuple[OpenLoopSpec, ...] = ()
    closed_loops: Tuple[ClosedLoopSpec, ...] = ()
    dispatch: str = "round-robin"
    discipline: str = "fifo"
    congestion: float = 1.0
    overload: Optional[OverloadSpec] = None

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ModelError("a load profile needs at least 2 nodes")
        if not self.open_loops and not self.closed_loops:
            raise ModelError(
                f"profile {self.name!r} has no generators"
            )
        if self.discipline not in ("fifo", "priority"):
            raise ModelError(
                f"unknown queue discipline {self.discipline!r} "
                "(choose fifo or priority)"
            )
        names = [spec.name for spec in self.generators]
        if len(set(names)) != len(names):
            # Streams, home nodes and event identities are all keyed on
            # the generator *name* (so listing order cannot matter); a
            # duplicate name would silently merge two streams.
            raise ModelError(
                f"profile {self.name!r} has duplicate generator names"
            )

    @property
    def generators(self) -> Tuple[Any, ...]:
        """All generators, open loops first — the *generator index*
        order every randomness stream and event tiebreak is keyed on."""
        return (*self.open_loops, *self.closed_loops)

    def scaled(self, multiplier: float) -> "LoadProfile":
        """This profile with offered load scaled by ``multiplier``.

        Open loops scale their arrival rate; closed loops scale their
        client population (rounded up, never below one client).  The
        latency-curve sweep uses this to walk a profile through
        arrival-rate multipliers without hand-editing generators.
        """
        if multiplier <= 0.0:
            raise ModelError(
                f"load multiplier must be positive, got {multiplier}"
            )
        if multiplier == 1.0:
            return self
        return replace(
            self,
            open_loops=tuple(
                replace(spec, rate_per_s=spec.rate_per_s * multiplier)
                for spec in self.open_loops
            ),
            closed_loops=tuple(
                replace(
                    spec,
                    clients=max(1, math.ceil(spec.clients * multiplier)),
                )
                for spec in self.closed_loops
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "machine": self.machine,
            "nodes": self.nodes,
            "open_loops": [spec.to_dict() for spec in self.open_loops],
            "closed_loops": [spec.to_dict() for spec in self.closed_loops],
            "dispatch": self.dispatch,
            "discipline": self.discipline,
            "congestion": self.congestion,
        }
        # Omitted when absent — or a no-op, which the engine treats
        # identically — so unprotected payloads stay byte-identical to
        # the pre-protection format.
        if self.overload is not None and not self.overload.is_noop():
            payload["overload"] = self.overload.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LoadProfile":
        data = dict(payload)
        data["open_loops"] = tuple(
            OpenLoopSpec.from_dict(spec)
            for spec in data.get("open_loops", [])
        )
        data["closed_loops"] = tuple(
            ClosedLoopSpec.from_dict(spec)
            for spec in data.get("closed_loops", [])
        )
        overload = data.get("overload")
        if isinstance(overload, dict):
            data["overload"] = OverloadSpec.from_dict(overload)
        return cls(**data)


def _steady() -> LoadProfile:
    """Plain Poisson open-loop traffic, mixed small/large requests."""
    return LoadProfile(
        name="steady",
        open_loops=(
            OpenLoopSpec(
                name="poisson",
                rate_per_s=4000.0,
                templates=(
                    RequestTemplate("small", nbytes=2048),
                    RequestTemplate("large", y="64", nbytes=65536),
                ),
            ),
        ),
    )


def _bursty() -> LoadProfile:
    """Bursts of 8 requests at a lower arrival rate, priority queues."""
    return LoadProfile(
        name="bursty",
        discipline="priority",
        dispatch="least-loaded",
        open_loops=(
            OpenLoopSpec(
                name="bursts",
                rate_per_s=600.0,
                burst=8,
                templates=(
                    RequestTemplate("urgent", nbytes=1024, priority=0),
                    RequestTemplate("bulk", y="64", nbytes=131072,
                                    priority=1),
                ),
            ),
        ),
    )


def _closed() -> LoadProfile:
    """Closed-loop clients with think time, affinity dispatch."""
    return LoadProfile(
        name="closed",
        dispatch="affinity",
        closed_loops=(
            ClosedLoopSpec(
                name="clients",
                clients=64,
                think_ns=2_000_000.0,
                templates=(
                    RequestTemplate("rpc", nbytes=4096),
                    RequestTemplate("scan", y="64", nbytes=32768),
                ),
            ),
        ),
    )


PROFILES = {
    "steady": _steady,
    "bursty": _bursty,
    "closed": _closed,
}


def profile_by_name(name: str) -> LoadProfile:
    """A built-in profile by name; raises :class:`ModelError` otherwise."""
    try:
        return PROFILES[name]()
    except KeyError:
        raise ModelError(
            f"unknown load profile {name!r}; choose from {sorted(PROFILES)}"
        )
