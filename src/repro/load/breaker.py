"""Per-link circuit breakers for the traffic engine.

A transfer that keeps failing on one (src, dst) link — because the
fault plan aborts it, or because the link is derated below a configured
floor — should stop being attempted for a while instead of burning NIC
time on work that cannot complete.  :class:`CircuitBreaker` is the
classic three-state machine, run entirely on *simulated* time:

::

              failures >= threshold
    CLOSED ──────────────────────────► OPEN
      ▲                                  │
      │ probes consecutive               │ cooldown_ns elapsed
      │ successes                        ▼
      └─────────────────────────── HALF-OPEN
              (one probe failure reopens, restarting the cooldown)

While OPEN, every arrival for the link is rejected without pricing.
After ``cooldown_ns`` of simulated time the breaker turns HALF-OPEN
and admits probe arrivals; probe selection is deterministic — the
first arrivals to reach :meth:`allow` after the cooldown, an order
fixed by the event heap's content-derived keys — so replays are
bit-identical.  ``probes`` consecutive successes close the breaker;
any failure reopens it.

:class:`BreakerBoard` lazily keeps one breaker per (src, dst) pair and
summarizes only the pairs that saw at least one failure or rejection,
keeping reports small on large machines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Breaker for one directed link.

    Args:
        threshold: Consecutive failures that trip CLOSED → OPEN.
        cooldown_ns: Simulated time OPEN waits before HALF-OPEN.
        probes: Consecutive HALF-OPEN successes required to close.
    """

    __slots__ = (
        "threshold",
        "cooldown_ns",
        "probes",
        "state",
        "failures",
        "probe_successes",
        "probe_inflight",
        "opened_at_ns",
        "opened",
        "rejected",
        "transitions",
    )

    def __init__(
        self, threshold: int, cooldown_ns: float, probes: int
    ) -> None:
        self.threshold = threshold
        self.cooldown_ns = cooldown_ns
        self.probes = probes
        self.state = CLOSED
        self.failures = 0
        self.probe_successes = 0
        self.probe_inflight = 0
        self.opened_at_ns = 0.0
        self.opened = 0
        self.rejected = 0
        self.transitions: List[Tuple[float, str]] = []

    def _transition(self, now_ns: float, state: str) -> None:
        self.state = state
        self.transitions.append((now_ns, state))

    def allow(self, now_ns: float) -> bool:
        """May an arrival for this link proceed to pricing?

        OPEN turns HALF-OPEN here once the cooldown has elapsed; in
        HALF-OPEN only ``probes`` arrivals may be in flight at once —
        the first to ask after the cooldown, which the event heap's
        deterministic ordering fixes across replays.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_ns - self.opened_at_ns < self.cooldown_ns:
                self.rejected += 1
                return False
            self._transition(now_ns, HALF_OPEN)
            self.probe_successes = 0
            self.probe_inflight = 0
        # HALF_OPEN: admit up to `probes` concurrent probe arrivals.
        if self.probe_inflight >= self.probes:
            self.rejected += 1
            return False
        self.probe_inflight += 1
        return True

    def record_success(self, now_ns: float) -> None:
        if self.state == HALF_OPEN:
            self.probe_inflight -= 1
            self.probe_successes += 1
            if self.probe_successes >= self.probes:
                self._transition(now_ns, CLOSED)
                self.failures = 0
        else:
            self.failures = 0

    def record_failure(self, now_ns: float) -> None:
        if self.state == HALF_OPEN:
            self.probe_inflight -= 1
            self._open(now_ns)
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self._open(now_ns)

    def _open(self, now_ns: float) -> None:
        self._transition(now_ns, OPEN)
        self.opened_at_ns = now_ns
        self.opened += 1
        self.failures = 0

    def interesting(self) -> bool:
        """Did this breaker ever see a failure or reject anything?"""
        return bool(self.opened or self.rejected or self.failures)

    def summary(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "opened": self.opened,
            "rejected": self.rejected,
            "failures": self.failures,
            "transitions": [
                {"at_ns": at_ns, "state": state}
                for at_ns, state in self.transitions
            ],
        }


class BreakerBoard:
    """All per-link breakers for one run, created on first use."""

    def __init__(
        self, threshold: int, cooldown_ns: float, probes: int
    ) -> None:
        self.threshold = threshold
        self.cooldown_ns = cooldown_ns
        self.probes = probes
        self._breakers: Dict[Tuple[int, int], CircuitBreaker] = {}

    def get(self, src: int, dst: int) -> CircuitBreaker:
        breaker = self._breakers.get((src, dst))
        if breaker is None:
            breaker = CircuitBreaker(
                self.threshold, self.cooldown_ns, self.probes
            )
            self._breakers[(src, dst)] = breaker
        return breaker

    def summary(self) -> Dict[str, Any]:
        """``{"src->dst": breaker summary}`` for links that saw trouble."""
        return {
            f"{src}->{dst}": breaker.summary()
            for (src, dst), breaker in sorted(self._breakers.items())
            if breaker.interesting()
        }
