"""The discrete-event traffic engine.

:class:`LoadEngine` drives a :class:`~repro.load.workload.LoadProfile`
— thousands to millions of simulated requests — through an existing
machine model.  Per-request service times are not re-modelled: each
distinct request shape is priced once through
:meth:`repro.runtime.engine.CommRuntime.transfer` and its measured
``resource_busy_ns`` decomposition becomes the station service times:

* sender CPU + DMA busy  -> the source node's ``nic`` station;
* receiver deposit busy  -> the destination's ``deposit`` station;
* receiver CPU + coproc  -> the destination's ``coproc`` station;
* whatever end-to-end time remains -> pure network transit (a delay
  between the sender-side and receiver-side stations, not a queueing
  resource — the wire is pipelined).

Determinism is structural, not incidental:

* all randomness is the pure-hash :func:`repro.load.workload.uniform`
  of ``(seed, stream key)`` — no RNG state anywhere;
* every event's heap key is content-derived —
  ``(time, kind, request identity, leg)`` where identity is the
  ``(generator, sequence)`` pair — so push order (and therefore
  generator interleaving or pre-generation sharding) cannot change
  the service order;
* ``workers`` only shards open-loop *pre-generation*; the per-
  generator streams are independent of the sharding, and the merged
  event list is heapified from a canonical sort.

The result: ``run()`` is bit-identical for a given ``(profile, seed,
horizon)`` across worker counts — the property suite holds this as an
invariant.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ModelError, TransferAbortedError
from ..core.operations import OperationStyle
from ..core.patterns import AccessPattern
from ..faults.spec import FaultPlan
from ..machines.registry import MACHINE_FACTORIES
from ..runtime.engine import CommRuntime
from ..trace.tracer import current_tracer
from .breaker import BreakerBoard
from .dispatch import policy_by_name
from .latency import LatencyStore
from .overload import OverloadSpec, admission_by_name
from .queues import Station
from .workload import ClosedLoopSpec, LoadProfile, RequestTemplate, uniform

__all__ = ["LoadEngine", "LoadResult"]

_MACHINES = MACHINE_FACTORIES

#: Event kinds, in same-timestamp processing order: completions free
#: servers before new arrivals claim them; transit landings last.
_DONE, _ARRIVE, _ENQUEUE = 0, 1, 2

#: Station legs a request walks, in order.
_NIC, _DEPOSIT, _COPROC = "nic", "deposit", "coproc"


class _Request:
    """One in-flight request (identity + route)."""

    __slots__ = (
        "identity", "generator", "client", "issue", "template",
        "arrival_ns", "legs", "transit_ns", "wire_at", "leg", "attempt",
    )

    def __init__(
        self,
        identity: Tuple[Any, ...],
        generator: str,
        client: int,
        issue: int,
        template: RequestTemplate,
        arrival_ns: float,
    ) -> None:
        self.identity = identity
        self.generator = generator
        self.client = client
        self.issue = issue
        self.template = template
        self.arrival_ns = arrival_ns
        self.legs: Tuple[Tuple[Tuple[int, str], float], ...] = ()
        self.transit_ns = 0.0
        self.wire_at = 0
        self.leg = 0
        self.attempt = 0


@dataclass
class LoadResult:
    """Outcome of one traffic run.

    ``to_dict()`` is the canonical (replay-comparable) payload;
    ``stats`` carries nondeterministic run facts — wall seconds,
    events/sec — and is deliberately *excluded* from it, mirroring the
    sweep engine's canonical/stats split.
    """

    profile: LoadProfile
    seed: int
    horizon_ns: float
    end_ns: float
    offered: int
    completed: int
    latency: Dict[str, Any]
    stations: Dict[str, Dict[str, Any]]
    faults: Optional[FaultPlan] = None
    overload: Optional[Dict[str, Any]] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        throughput = (
            self.completed / self.end_ns * 1e9 if self.end_ns > 0.0 else 0.0
        )
        payload = {
            "schema": "repro-load-report/1",
            "machine": self.profile.machine,
            "profile": self.profile.to_dict(),
            "seed": self.seed,
            "duration_ns": self.horizon_ns,
            "end_ns": self.end_ns,
            "offered": self.offered,
            "completed": self.completed,
            "latency_ns": self.latency,
            "throughput": {
                "completed": self.completed,
                "requests_per_s": throughput,
            },
            "stations": self.stations,
            "faults": self.faults.to_dict() if self.faults else None,
        }
        # Only protected runs carry the overload section; unprotected
        # reports stay byte-identical to the pre-protection engine.
        if self.overload is not None:
            payload["overload"] = self.overload
        return payload

    def canonical_json(self) -> str:
        from .report import canonical_json

        return canonical_json(self.to_dict())

    def digest(self) -> str:
        from .report import digest

        return digest(self.to_dict())


class LoadEngine:
    """Drive one load profile through the model.

    Args:
        profile: The traffic description.
        seed: Replay seed; every random stream hangs off it.
        faults: Optional fault plan — service times are then priced
            per (src, dst) pair through the degraded runtime, so link
            derates and node slowdowns show up in the tail.
        rates: Pricing source for the runtime (``simulated`` is the
            cheap deterministic default).
    """

    def __init__(
        self,
        profile: LoadProfile,
        seed: int = 7,
        faults: Optional[FaultPlan] = None,
        rates: str = "simulated",
    ) -> None:
        if seed < 0:
            raise ModelError("load seed must be non-negative")
        try:
            machine = _MACHINES[profile.machine]()
        except KeyError:
            raise ModelError(
                f"unknown machine {profile.machine!r}; "
                f"choose from {sorted(_MACHINES)}"
            )
        self.profile = profile
        self.seed = seed
        self.faults = (
            faults if faults is not None and not faults.is_empty() else None
        )
        self.runtime = CommRuntime(machine, rates=rates, faults=self.faults)
        self._patterns: Dict[str, AccessPattern] = {}
        self._prices: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        self._homes: Dict[str, int] = {}

    def _home(self, generator: str) -> int:
        """The source node a generator's requests depart from.

        A pure hash of ``(seed, name)`` — like every other stream key —
        so a profile's generator *listing order* cannot change where
        traffic originates (the interleaving-invariance property).
        """
        node = self._homes.get(generator)
        if node is None:
            from .workload import uniform

            node = int(
                uniform(self.seed, "home", generator) * self.profile.nodes
            ) % self.profile.nodes
            self._homes[generator] = node
        return node

    # -- pricing -------------------------------------------------------------

    def _pattern(self, text: str) -> AccessPattern:
        pattern = self._patterns.get(text)
        if pattern is None:
            pattern = self._patterns[text] = AccessPattern.parse(text)
        return pattern

    def _price(
        self, template: RequestTemplate, src: int, dst: int
    ) -> Tuple[Tuple[Tuple[str, float], ...], float, int]:
        """``(station legs, transit delay, wire index)`` for one shape.

        Healthy runs price each shape once (every (src, dst) pair sees
        the same machine); under a fault plan the pair matters (link
        derates, per-node slowdowns), so it joins the memo key.  The
        wire index is the leg before which the transit delay is paid —
        the first receiver-side station (or one past the last leg when
        the route is sender-only).
        """
        key: Tuple[Any, ...] = (
            template.x, template.y, template.nbytes, template.style,
        )
        if self.faults is not None:
            key = key + (src, dst)
        cached = self._prices.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        sample = self.runtime.transfer(
            self._pattern(template.x),
            self._pattern(template.y),
            template.nbytes,
            style=OperationStyle(template.style),
            congestion=self.profile.congestion,
            src=src if self.faults is not None else None,
            dst=dst if self.faults is not None else None,
        )
        busy = dict(sample.resource_busy_ns)
        nic_ns = busy.get("sender_cpu", 0.0) + busy.get("sender_dma", 0.0)
        deposit_ns = busy.get("receiver_deposit", 0.0)
        coproc_ns = (
            busy.get("receiver_cpu", 0.0) + busy.get("receiver_coproc", 0.0)
        )
        transit_ns = max(sample.ns - nic_ns - deposit_ns - coproc_ns, 0.0)
        legs = tuple(
            (kind, service_ns)
            for kind, service_ns in (
                (_NIC, nic_ns), (_DEPOSIT, deposit_ns), (_COPROC, coproc_ns),
            )
            if service_ns > 0.0
        )
        wire_at = len(legs)
        for index, (kind, __) in enumerate(legs):
            if kind != _NIC:
                wire_at = index
                break
        priced = (legs, transit_ns, wire_at)
        self._prices[key] = priced
        return priced

    # -- arrival pre-generation ----------------------------------------------

    def _open_arrivals(self, horizon_ns: float, workers: int) -> List[Any]:
        """Every open-loop arrival event, canonically ordered.

        ``workers`` shards the generators; each generator's stream is a
        pure function of ``(seed, name)``, so the shard assignment (and
        thread scheduling, when threaded) cannot change the result.
        """
        specs = list(enumerate(self.profile.open_loops))

        def generate(shard: List[Any]) -> List[Any]:
            events = []
            for __, spec in shard:
                for seq, (time_ns, template) in enumerate(
                    spec.arrivals(self.seed, horizon_ns)
                ):
                    events.append((
                        time_ns, _ARRIVE, (spec.name, seq), 0,
                        (spec.name, -1, seq, template),
                    ))
            return events

        if workers <= 1 or len(specs) <= 1:
            shards = [generate(specs)]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                shards = list(pool.map(
                    generate, [specs[i::workers] for i in range(workers)]
                ))
        events = [event for shard in shards for event in shard]
        events.sort(key=lambda event: event[:4])
        return events

    # -- the event loop ------------------------------------------------------

    def run(self, horizon_ns: float, workers: int = 1) -> LoadResult:
        """Simulate ``horizon_ns`` of traffic (draining in-flight work).

        New arrivals stop at the horizon; queued and in-service
        requests complete, so the latency distribution is never
        censored by the cut-off.

        When the profile carries a non-noop
        :class:`~repro.load.overload.OverloadSpec` (or any template
        sets a deadline), the run switches to the *protected* event
        path: admission control before pricing, bounded stations,
        deadline shedding at pop time, and per-link circuit breakers.
        The unprotected path executes exactly the pre-protection code —
        same calls, same accounting — so protection-off reports are
        byte-identical and pay no hot-path cost.
        """
        if horizon_ns <= 0.0:
            raise ModelError("load duration must be positive")
        profile = self.profile
        policy = policy_by_name(profile.dispatch, profile.nodes, self.seed)
        heappush, heappop = heapq.heappush, heapq.heappop

        ospec = profile.overload
        protected = (ospec is not None and not ospec.is_noop()) or any(
            template.deadline_ns > 0.0
            for spec in profile.generators
            for template in spec.templates
        )
        if protected and ospec is None:
            ospec = OverloadSpec()
        admission = admission_by_name(ospec, self.seed) if protected else None
        board: Optional[BreakerBoard] = None
        derate_trip = 0.0
        retry_mode = False
        retry_budget = 1.0
        capacity: Optional[int] = None
        if protected:
            if ospec.breakers_enabled():
                board = BreakerBoard(
                    ospec.breaker_threshold,
                    ospec.breaker_cooldown_ns,
                    ospec.breaker_probes,
                )
                derate_trip = ospec.breaker_derate_trip
            retry_mode = (
                ospec.reject_retry == "backoff" and ospec.max_retries > 0
            )
            retry_budget = ospec.retry_budget
            if self.faults is not None:
                # The stricter of the load spec's and the fault plan's
                # budgets wins: neither layer can retry-storm the other.
                retry_budget = min(
                    retry_budget, self.faults.retry.retry_budget
                )
            if ospec.station_capacity > 0:
                capacity = ospec.station_capacity

        stations: Dict[Tuple[int, str], Station] = {}
        for node in range(profile.nodes):
            for kind in (_NIC, _DEPOSIT, _COPROC):
                stations[(node, kind)] = Station(
                    f"node{node}/{kind}", profile.discipline, capacity
                )
        node_backlog = [0] * profile.nodes

        heap: List[Any] = self._open_arrivals(horizon_ns, workers)
        heapq.heapify(heap)

        for spec in profile.closed_loops:
            for client in range(spec.clients):
                heappush(heap, (
                    0.0, _ARRIVE, (spec.name, client, 0), 0,
                    (spec.name, client, 0, spec.pick(self.seed, client, 0)),
                ))
        spec_by_name = {spec.name: spec for spec in profile.generators}

        tracer = current_tracer()
        latencies = LatencyStore()
        offered = 0
        completed = 0
        events = 0
        end_ns = 0.0
        # Protected-path accounting (untouched on the unprotected path).
        gen_counts: Dict[str, Dict[str, int]] = {
            spec.name: {
                "offered": 0, "accepted": 0, "completed": 0,
                "rejected": 0, "evicted": 0, "shed": 0, "broken": 0,
                "retried": 0,
            }
            for spec in profile.generators
        } if protected else {}
        inflight = 0
        retries_pending = 0

        def enter_leg(now_ns: float, request: _Request) -> None:
            """Request reaches leg ``request.leg`` (transit already paid)."""
            if request.leg >= len(request.legs):
                complete(now_ns, request)
                return
            (node, kind), service_ns = request.legs[request.leg]
            station = stations[(node, kind)]
            if not protected:
                node_backlog[node] += 1
                if station.idle:
                    done_ns = station.start(now_ns, service_ns)
                    heappush(heap, (
                        done_ns, _DONE, request.identity, request.leg,
                        request,
                    ))
                else:
                    station.enqueue(
                        now_ns, request.template.priority,
                        request.identity, request,
                    )
                    if tracer is not None:
                        tracer.observe(
                            f"load.depth/{station.name}",
                            float(station.depth()),
                        )
                return
            if station.idle:
                node_backlog[node] += 1
                done_ns = station.start(now_ns, service_ns)
                heappush(heap, (
                    done_ns, _DONE, request.identity, request.leg, request,
                ))
                return
            accepted, evicted = station.offer(
                now_ns, request.template.priority, request.identity,
                request, request.template.deadline_ns,
            )
            if evicted is not None:
                node_backlog[node] -= 1
                drop_midroute(now_ns, evicted)
            if accepted:
                node_backlog[node] += 1
                if tracer is not None:
                    tracer.observe(
                        f"load.depth/{station.name}", float(station.depth())
                    )
            else:
                drop_midroute(now_ns, request)

        def advance(now_ns: float, request: _Request) -> None:
            """Move to leg ``request.leg``, paying transit at the wire."""
            if request.leg == request.wire_at and request.transit_ns > 0.0:
                heappush(heap, (
                    now_ns + request.transit_ns, _ENQUEUE,
                    request.identity, request.leg, request,
                ))
            else:
                enter_leg(now_ns, request)

        def complete(now_ns: float, request: _Request) -> None:
            nonlocal completed, inflight
            completed += 1
            latency_ns = now_ns - request.arrival_ns
            latencies.record(latency_ns)
            if protected:
                inflight -= 1
                gen_counts[request.generator]["completed"] += 1
                admission.observe(now_ns, latency_ns)
            if tracer is not None:
                tracer.count("load.completed")
                tracer.observe("load.latency_ns", latency_ns)
            spec = spec_by_name[request.generator]
            if isinstance(spec, ClosedLoopSpec):
                issue = request.issue + 1
                next_ns = now_ns + spec.think(
                    self.seed, request.client, issue
                )
                if next_ns < horizon_ns:
                    heappush(heap, (
                        next_ns, _ARRIVE,
                        (request.generator, request.client, issue), 0,
                        (
                            request.generator, request.client, issue,
                            spec.pick(self.seed, request.client, issue),
                        ),
                    ))

        # -- protected-path helpers (never called unprotected) ----------

        def continue_closed(
            now_ns: float, generator: str, client: int, issue: int
        ) -> None:
            """Keep a closed-loop client alive past a dropped request.

            A closed loop reissues on completion; a request that is
            rejected or shed never completes, so without this the
            client would silently die and the loop would starve.
            """
            spec = spec_by_name[generator]
            if not isinstance(spec, ClosedLoopSpec):
                return
            nxt = issue + 1
            next_ns = now_ns + spec.think(self.seed, client, nxt)
            if next_ns < horizon_ns:
                heappush(heap, (
                    next_ns, _ARRIVE, (generator, client, nxt), 0,
                    (
                        generator, client, nxt,
                        spec.pick(self.seed, client, nxt),
                    ),
                ))

        def retry_or_drop(
            now_ns: float,
            base_identity: Tuple[Any, ...],
            generator: str,
            client: int,
            issue: int,
            template: RequestTemplate,
            attempt: int,
        ) -> None:
            """Schedule a seeded backoff re-arrival, or drop terminally.

            A retry re-enters as a fresh arrival (identity extended
            with the attempt number, so heap keys stay unique) after an
            exponential backoff with pure-hash jitter.  The retry
            budget bounds retries as a fraction of in-flight work —
            with the fault plan's budget composed in above — so a storm
            of rejections cannot amplify the overload it reacts to.
            """
            nonlocal retries_pending
            if (
                retry_mode
                and attempt < ospec.max_retries
                and (
                    retry_budget >= 1.0
                    or retries_pending + 1
                    <= retry_budget * (inflight + retries_pending + 1)
                )
            ):
                gen_counts[generator]["retried"] += 1
                retries_pending += 1
                delay_ns = (
                    ospec.retry_backoff_ns
                    * (2.0 ** attempt)
                    * (0.5 + uniform(
                        self.seed, "reject-backoff", *base_identity, attempt
                    ))
                )
                heappush(heap, (
                    now_ns + delay_ns, _ARRIVE,
                    base_identity + (attempt + 1,), 0,
                    (generator, client, issue, template, attempt + 1),
                ))
                if tracer is not None:
                    tracer.count("load.retried")
            else:
                continue_closed(now_ns, generator, client, issue)

        def drop_midroute(now_ns: float, request: _Request) -> None:
            """A queued request lost its slot (bounded-station reject).

            Counted as ``evicted`` — distinct from arrival-level
            ``rejected`` — so the conservation laws stay exact:
            offered + retried == accepted + rejected + broken, and
            accepted == completed + shed + evicted after the drain.
            """
            nonlocal inflight
            inflight -= 1
            gen_counts[request.generator]["evicted"] += 1
            if tracer is not None:
                tracer.count("load.evicted")
            retry_or_drop(
                now_ns, request.identity, request.generator,
                request.client, request.issue, request.template,
                request.attempt,
            )

        def shed_request(now_ns: float, request: _Request) -> None:
            """A queued request outwaited its deadline: terminal drop."""
            nonlocal inflight
            inflight -= 1
            gen_counts[request.generator]["shed"] += 1
            if tracer is not None:
                tracer.count("load.shed")
            continue_closed(
                now_ns, request.generator, request.client, request.issue
            )

        while heap:
            time_ns, kind, identity, leg, payload = heappop(heap)
            events += 1
            end_ns = time_ns

            if kind == _ARRIVE:
                if not protected:
                    generator, client, issue, template = payload
                    offered += 1
                    src = self._home(generator)
                    dst = policy.pick(
                        src, generator, client, template.name, node_backlog,
                    )
                    request = _Request(
                        identity, generator, client, issue, template,
                        time_ns,
                    )
                    request.legs, request.transit_ns, wire_at = (
                        self._fill_route(template, src, dst)
                    )
                    request.wire_at = wire_at
                    advance(time_ns, request)
                    continue

                generator, client, issue, template = payload[:4]
                attempt = payload[4] if len(payload) > 4 else 0
                counts = gen_counts[generator]
                if attempt:
                    retries_pending -= 1
                    base_identity = identity[:-1]
                else:
                    offered += 1
                    counts["offered"] += 1
                    base_identity = identity
                src = self._home(generator)
                verdict = None
                route = None
                if not admission.admit(
                    time_ns, stations[(src, _NIC)].backlog(), base_identity
                ):
                    verdict = "rejected"
                else:
                    dst = policy.pick(
                        src, generator, client, template.name, node_backlog,
                    )
                    breaker = (
                        board.get(src, dst) if board is not None else None
                    )
                    if breaker is not None and not breaker.allow(time_ns):
                        verdict = "rejected"
                    elif (
                        breaker is not None
                        and derate_trip > 0.0
                        and self.faults is not None
                        and self.faults.link_derate(src, dst) <= derate_trip
                    ):
                        breaker.record_failure(time_ns)
                        verdict = "broken"
                    else:
                        try:
                            route = self._fill_route(template, src, dst)
                        except TransferAbortedError:
                            verdict = "broken"
                            if breaker is not None:
                                breaker.record_failure(time_ns)
                        else:
                            if breaker is not None:
                                breaker.record_success(time_ns)
                if verdict is None:
                    counts["accepted"] += 1
                    inflight += 1
                    request = _Request(
                        base_identity, generator, client, issue, template,
                        time_ns,
                    )
                    request.attempt = attempt
                    request.legs, request.transit_ns, request.wire_at = (
                        route
                    )
                    advance(time_ns, request)
                else:
                    counts[verdict] += 1
                    if tracer is not None:
                        tracer.count(f"load.{verdict}")
                    retry_or_drop(
                        time_ns, base_identity, generator, client, issue,
                        template, attempt,
                    )
                continue

            if kind == _ENQUEUE:
                enter_leg(time_ns, payload)
                continue

            # _DONE: free the station, pull the next waiter, advance.
            request = payload
            (node, station_kind), __ = request.legs[request.leg]
            station = stations[(node, station_kind)]
            station.release()
            node_backlog[node] -= 1
            if protected:
                expired, waiter = station.pop_live(time_ns)
                for dead in expired:
                    node_backlog[node] -= 1
                    shed_request(time_ns, dead)
            else:
                waiter = station.pop(time_ns)
            if waiter is not None:
                enqueued_ns, next_request = waiter
                wait_service = next_request.legs[next_request.leg][1]
                done_ns = station.start(time_ns, wait_service)
                heappush(heap, (
                    done_ns, _DONE, next_request.identity,
                    next_request.leg, next_request,
                ))
                if tracer is not None:
                    tracer.observe(
                        "load.queue_wait_ns", time_ns - enqueued_ns
                    )
            request.leg += 1
            advance(time_ns, request)

        overload_summary: Optional[Dict[str, Any]] = None
        if protected:
            totals = {
                key: sum(counts[key] for counts in gen_counts.values())
                for key in (
                    "accepted", "rejected", "evicted", "shed", "broken",
                    "retried",
                )
            }
            goodput = (
                completed / end_ns * 1e9 if end_ns > 0.0 else 0.0
            )
            overload_summary = {
                "schema": "repro-load-overload/1",
                "spec": ospec.to_dict(),
                "admission": admission.describe(),
                "generators": gen_counts,
                "totals": totals,
                "goodput": {
                    "offered": offered,
                    "accepted": totals["accepted"],
                    "completed": completed,
                    "goodput_per_s": goodput,
                },
                "breakers": board.summary() if board is not None else {},
            }

        return LoadResult(
            profile=profile,
            seed=self.seed,
            horizon_ns=horizon_ns,
            end_ns=end_ns,
            offered=offered,
            completed=completed,
            latency=latencies.summary(),
            stations={
                station.name: station.summary(end_ns, overload=protected)
                for station in stations.values()
            },
            faults=self.faults,
            overload=overload_summary,
            stats={"events": events},
        )

    def _fill_route(
        self, template: RequestTemplate, src: int, dst: int
    ) -> Tuple[Tuple[Tuple[Tuple[int, str], float], ...], float, int]:
        """The priced route with station keys bound to (src, dst)."""
        station_legs, transit_ns, wire_at = self._price(template, src, dst)
        legs = tuple(
            ((src if kind == _NIC else dst, kind), service_ns)
            for kind, service_ns in station_legs
        )
        return legs, transit_ns, wire_at
