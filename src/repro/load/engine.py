"""The discrete-event traffic engine.

:class:`LoadEngine` drives a :class:`~repro.load.workload.LoadProfile`
— thousands to millions of simulated requests — through an existing
machine model.  Per-request service times are not re-modelled: each
distinct request shape is priced once through
:meth:`repro.runtime.engine.CommRuntime.transfer` and its measured
``resource_busy_ns`` decomposition becomes the station service times:

* sender CPU + DMA busy  -> the source node's ``nic`` station;
* receiver deposit busy  -> the destination's ``deposit`` station;
* receiver CPU + coproc  -> the destination's ``coproc`` station;
* whatever end-to-end time remains -> pure network transit (a delay
  between the sender-side and receiver-side stations, not a queueing
  resource — the wire is pipelined).

Determinism is structural, not incidental:

* all randomness is the pure-hash :func:`repro.load.workload.uniform`
  of ``(seed, stream key)`` — no RNG state anywhere;
* every event's heap key is content-derived —
  ``(time, kind, request identity, leg)`` where identity is the
  ``(generator, sequence)`` pair — so push order (and therefore
  generator interleaving or pre-generation sharding) cannot change
  the service order;
* ``workers`` only shards open-loop *pre-generation*; the per-
  generator streams are independent of the sharding, and the merged
  event list is heapified from a canonical sort.

The result: ``run()`` is bit-identical for a given ``(profile, seed,
horizon)`` across worker counts — the property suite holds this as an
invariant.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ModelError
from ..core.operations import OperationStyle
from ..core.patterns import AccessPattern
from ..faults.spec import FaultPlan
from ..machines import paragon, t3d
from ..runtime.engine import CommRuntime
from ..trace.tracer import current_tracer
from .dispatch import policy_by_name
from .latency import LatencyStore
from .queues import Station
from .workload import ClosedLoopSpec, LoadProfile, RequestTemplate

__all__ = ["LoadEngine", "LoadResult"]

_MACHINES = {"t3d": t3d, "paragon": paragon}

#: Event kinds, in same-timestamp processing order: completions free
#: servers before new arrivals claim them; transit landings last.
_DONE, _ARRIVE, _ENQUEUE = 0, 1, 2

#: Station legs a request walks, in order.
_NIC, _DEPOSIT, _COPROC = "nic", "deposit", "coproc"


class _Request:
    """One in-flight request (identity + route)."""

    __slots__ = (
        "identity", "generator", "client", "issue", "template",
        "arrival_ns", "legs", "transit_ns", "wire_at", "leg",
    )

    def __init__(
        self,
        identity: Tuple[Any, ...],
        generator: str,
        client: int,
        issue: int,
        template: RequestTemplate,
        arrival_ns: float,
    ) -> None:
        self.identity = identity
        self.generator = generator
        self.client = client
        self.issue = issue
        self.template = template
        self.arrival_ns = arrival_ns
        self.legs: Tuple[Tuple[Tuple[int, str], float], ...] = ()
        self.transit_ns = 0.0
        self.wire_at = 0
        self.leg = 0


@dataclass
class LoadResult:
    """Outcome of one traffic run.

    ``to_dict()`` is the canonical (replay-comparable) payload;
    ``stats`` carries nondeterministic run facts — wall seconds,
    events/sec — and is deliberately *excluded* from it, mirroring the
    sweep engine's canonical/stats split.
    """

    profile: LoadProfile
    seed: int
    horizon_ns: float
    end_ns: float
    offered: int
    completed: int
    latency: Dict[str, Any]
    stations: Dict[str, Dict[str, Any]]
    faults: Optional[FaultPlan] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        throughput = (
            self.completed / self.end_ns * 1e9 if self.end_ns > 0.0 else 0.0
        )
        return {
            "schema": "repro-load-report/1",
            "machine": self.profile.machine,
            "profile": self.profile.to_dict(),
            "seed": self.seed,
            "duration_ns": self.horizon_ns,
            "end_ns": self.end_ns,
            "offered": self.offered,
            "completed": self.completed,
            "latency_ns": self.latency,
            "throughput": {
                "completed": self.completed,
                "requests_per_s": throughput,
            },
            "stations": self.stations,
            "faults": self.faults.to_dict() if self.faults else None,
        }

    def canonical_json(self) -> str:
        from .report import canonical_json

        return canonical_json(self.to_dict())

    def digest(self) -> str:
        from .report import digest

        return digest(self.to_dict())


class LoadEngine:
    """Drive one load profile through the model.

    Args:
        profile: The traffic description.
        seed: Replay seed; every random stream hangs off it.
        faults: Optional fault plan — service times are then priced
            per (src, dst) pair through the degraded runtime, so link
            derates and node slowdowns show up in the tail.
        rates: Pricing source for the runtime (``simulated`` is the
            cheap deterministic default).
    """

    def __init__(
        self,
        profile: LoadProfile,
        seed: int = 7,
        faults: Optional[FaultPlan] = None,
        rates: str = "simulated",
    ) -> None:
        if seed < 0:
            raise ModelError("load seed must be non-negative")
        try:
            machine = _MACHINES[profile.machine]()
        except KeyError:
            raise ModelError(
                f"unknown machine {profile.machine!r}; "
                f"choose from {sorted(_MACHINES)}"
            )
        self.profile = profile
        self.seed = seed
        self.faults = (
            faults if faults is not None and not faults.is_empty() else None
        )
        self.runtime = CommRuntime(machine, rates=rates, faults=self.faults)
        self._patterns: Dict[str, AccessPattern] = {}
        self._prices: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        self._homes: Dict[str, int] = {}

    def _home(self, generator: str) -> int:
        """The source node a generator's requests depart from.

        A pure hash of ``(seed, name)`` — like every other stream key —
        so a profile's generator *listing order* cannot change where
        traffic originates (the interleaving-invariance property).
        """
        node = self._homes.get(generator)
        if node is None:
            from .workload import uniform

            node = int(
                uniform(self.seed, "home", generator) * self.profile.nodes
            ) % self.profile.nodes
            self._homes[generator] = node
        return node

    # -- pricing -------------------------------------------------------------

    def _pattern(self, text: str) -> AccessPattern:
        pattern = self._patterns.get(text)
        if pattern is None:
            pattern = self._patterns[text] = AccessPattern.parse(text)
        return pattern

    def _price(
        self, template: RequestTemplate, src: int, dst: int
    ) -> Tuple[Tuple[Tuple[str, float], ...], float, int]:
        """``(station legs, transit delay, wire index)`` for one shape.

        Healthy runs price each shape once (every (src, dst) pair sees
        the same machine); under a fault plan the pair matters (link
        derates, per-node slowdowns), so it joins the memo key.  The
        wire index is the leg before which the transit delay is paid —
        the first receiver-side station (or one past the last leg when
        the route is sender-only).
        """
        key: Tuple[Any, ...] = (
            template.x, template.y, template.nbytes, template.style,
        )
        if self.faults is not None:
            key = key + (src, dst)
        cached = self._prices.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        sample = self.runtime.transfer(
            self._pattern(template.x),
            self._pattern(template.y),
            template.nbytes,
            style=OperationStyle(template.style),
            congestion=self.profile.congestion,
            src=src if self.faults is not None else None,
            dst=dst if self.faults is not None else None,
        )
        busy = dict(sample.resource_busy_ns)
        nic_ns = busy.get("sender_cpu", 0.0) + busy.get("sender_dma", 0.0)
        deposit_ns = busy.get("receiver_deposit", 0.0)
        coproc_ns = (
            busy.get("receiver_cpu", 0.0) + busy.get("receiver_coproc", 0.0)
        )
        transit_ns = max(sample.ns - nic_ns - deposit_ns - coproc_ns, 0.0)
        legs = tuple(
            (kind, service_ns)
            for kind, service_ns in (
                (_NIC, nic_ns), (_DEPOSIT, deposit_ns), (_COPROC, coproc_ns),
            )
            if service_ns > 0.0
        )
        wire_at = len(legs)
        for index, (kind, __) in enumerate(legs):
            if kind != _NIC:
                wire_at = index
                break
        priced = (legs, transit_ns, wire_at)
        self._prices[key] = priced
        return priced

    # -- arrival pre-generation ----------------------------------------------

    def _open_arrivals(self, horizon_ns: float, workers: int) -> List[Any]:
        """Every open-loop arrival event, canonically ordered.

        ``workers`` shards the generators; each generator's stream is a
        pure function of ``(seed, name)``, so the shard assignment (and
        thread scheduling, when threaded) cannot change the result.
        """
        specs = list(enumerate(self.profile.open_loops))

        def generate(shard: List[Any]) -> List[Any]:
            events = []
            for __, spec in shard:
                for seq, (time_ns, template) in enumerate(
                    spec.arrivals(self.seed, horizon_ns)
                ):
                    events.append((
                        time_ns, _ARRIVE, (spec.name, seq), 0,
                        (spec.name, -1, seq, template),
                    ))
            return events

        if workers <= 1 or len(specs) <= 1:
            shards = [generate(specs)]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                shards = list(pool.map(
                    generate, [specs[i::workers] for i in range(workers)]
                ))
        events = [event for shard in shards for event in shard]
        events.sort(key=lambda event: event[:4])
        return events

    # -- the event loop ------------------------------------------------------

    def run(self, horizon_ns: float, workers: int = 1) -> LoadResult:
        """Simulate ``horizon_ns`` of traffic (draining in-flight work).

        New arrivals stop at the horizon; queued and in-service
        requests complete, so the latency distribution is never
        censored by the cut-off.
        """
        if horizon_ns <= 0.0:
            raise ModelError("load duration must be positive")
        profile = self.profile
        policy = policy_by_name(profile.dispatch, profile.nodes, self.seed)
        stations: Dict[Tuple[int, str], Station] = {}
        for node in range(profile.nodes):
            for kind in (_NIC, _DEPOSIT, _COPROC):
                stations[(node, kind)] = Station(
                    f"node{node}/{kind}", profile.discipline
                )
        node_backlog = [0] * profile.nodes

        heap: List[Any] = self._open_arrivals(horizon_ns, workers)
        heapq.heapify(heap)

        for spec in profile.closed_loops:
            for client in range(spec.clients):
                heapq.heappush(heap, (
                    0.0, _ARRIVE, (spec.name, client, 0), 0,
                    (spec.name, client, 0, spec.pick(self.seed, client, 0)),
                ))
        spec_by_name = {spec.name: spec for spec in profile.generators}

        tracer = current_tracer()
        latencies = LatencyStore()
        offered = 0
        completed = 0
        events = 0
        end_ns = 0.0

        def enter_leg(now_ns: float, request: _Request) -> None:
            """Request reaches leg ``request.leg`` (transit already paid)."""
            if request.leg >= len(request.legs):
                complete(now_ns, request)
                return
            (node, kind), service_ns = request.legs[request.leg]
            station = stations[(node, kind)]
            node_backlog[node] += 1
            if station.idle:
                done_ns = station.start(now_ns, service_ns)
                heapq.heappush(heap, (
                    done_ns, _DONE, request.identity, request.leg, request,
                ))
            else:
                station.enqueue(
                    now_ns, request.template.priority,
                    request.identity, request,
                )
                if tracer is not None:
                    tracer.observe(
                        f"load.depth/{station.name}", float(station.depth())
                    )

        def advance(now_ns: float, request: _Request) -> None:
            """Move to leg ``request.leg``, paying transit at the wire."""
            if request.leg == request.wire_at and request.transit_ns > 0.0:
                heapq.heappush(heap, (
                    now_ns + request.transit_ns, _ENQUEUE,
                    request.identity, request.leg, request,
                ))
            else:
                enter_leg(now_ns, request)

        def complete(now_ns: float, request: _Request) -> None:
            nonlocal completed
            completed += 1
            latency_ns = now_ns - request.arrival_ns
            latencies.record(latency_ns)
            if tracer is not None:
                tracer.count("load.completed")
                tracer.observe("load.latency_ns", latency_ns)
            spec = spec_by_name[request.generator]
            if isinstance(spec, ClosedLoopSpec):
                issue = request.issue + 1
                next_ns = now_ns + spec.think(
                    self.seed, request.client, issue
                )
                if next_ns < horizon_ns:
                    heapq.heappush(heap, (
                        next_ns, _ARRIVE,
                        (request.generator, request.client, issue), 0,
                        (
                            request.generator, request.client, issue,
                            spec.pick(self.seed, request.client, issue),
                        ),
                    ))

        while heap:
            time_ns, kind, identity, leg, payload = heapq.heappop(heap)
            events += 1
            end_ns = time_ns

            if kind == _ARRIVE:
                generator, client, issue, template = payload
                offered += 1
                src = self._home(generator)
                dst = policy.pick(
                    src, generator, client, template.name, node_backlog,
                )
                request = _Request(
                    identity, generator, client, issue, template, time_ns
                )
                request.legs, request.transit_ns, wire_at = (
                    self._fill_route(template, src, dst)
                )
                request.wire_at = wire_at
                advance(time_ns, request)
                continue

            if kind == _ENQUEUE:
                enter_leg(time_ns, payload)
                continue

            # _DONE: free the station, pull the next waiter, advance.
            request = payload
            (node, station_kind), __ = request.legs[request.leg]
            station = stations[(node, station_kind)]
            station.release()
            node_backlog[node] -= 1
            waiter = station.pop(time_ns)
            if waiter is not None:
                enqueued_ns, next_request = waiter
                wait_service = next_request.legs[next_request.leg][1]
                done_ns = station.start(time_ns, wait_service)
                heapq.heappush(heap, (
                    done_ns, _DONE, next_request.identity,
                    next_request.leg, next_request,
                ))
                if tracer is not None:
                    tracer.observe(
                        "load.queue_wait_ns", time_ns - enqueued_ns
                    )
            request.leg += 1
            advance(time_ns, request)

        return LoadResult(
            profile=profile,
            seed=self.seed,
            horizon_ns=horizon_ns,
            end_ns=end_ns,
            offered=offered,
            completed=completed,
            latency=latencies.summary(),
            stations={
                station.name: station.summary(end_ns)
                for station in stations.values()
            },
            faults=self.faults,
            stats={"events": events},
        )

    def _fill_route(
        self, template: RequestTemplate, src: int, dst: int
    ) -> Tuple[Tuple[Tuple[Tuple[int, str], float], ...], float, int]:
        """The priced route with station keys bound to (src, dst)."""
        station_legs, transit_ns, wire_at = self._price(template, src, dst)
        legs = tuple(
            ((src if kind == _NIC else dst, kind), service_ns)
            for kind, service_ns in station_legs
        )
        return legs, transit_ns, wire_at
