"""The ``python -m repro load`` report format and its validator.

The load CLI emits one JSON object per run.  The CI load job replays
``--seed 7`` and validates the payload with
:func:`validate_load_report`, so the schema is load-bearing:

* ``schema`` — format tag, currently ``"repro-load-report/1"``;
* ``machine`` / ``profile`` / ``seed`` / ``duration_ns`` — what ran;
  ``profile`` is the full workload description, replayable verbatim;
* ``end_ns`` — when the last drained request finished;
* ``offered`` / ``completed`` — request counts;
* ``latency_ns`` — ``{count, mean, min, max, p50, p99, p999}``
  (nearest-rank percentiles over completed requests);
* ``throughput`` — ``{completed, requests_per_s}``;
* ``stations`` — per-station ``{served, busy_ns, utilization,
  mean_depth, max_depth}``; protected runs add ``rejected`` / ``shed``
  / ``shed_wait_ns``;
* ``faults`` — the composed fault plan, or ``null`` when healthy;
* ``overload`` — *only* on protected runs: the versioned
  ``repro-load-overload/1`` section with the protection spec, the
  admission policy's self-description, per-generator accept / reject /
  shed / broken / retry tallies, goodput, and per-link breaker states.
  Unprotected reports omit the key entirely, keeping them
  byte-identical to the pre-protection format.

Wall-clock facts (events/sec, elapsed seconds) are *not* part of the
payload: the canonical JSON below must be bit-identical across
replays, worker counts and host machines.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, List

__all__ = [
    "OVERLOAD_SCHEMA",
    "SCHEMA",
    "canonical_json",
    "digest",
    "validate_load_report",
]

SCHEMA = "repro-load-report/1"

OVERLOAD_SCHEMA = "repro-load-overload/1"

_LATENCY_KEYS = ("count", "mean", "min", "max", "p50", "p99", "p999")

_STATION_KEYS = ("served", "busy_ns", "utilization", "mean_depth", "max_depth")

_GENERATOR_KEYS = (
    "offered", "accepted", "completed", "rejected", "evicted", "shed",
    "broken", "retried",
)

_BREAKER_STATES = ("closed", "open", "half-open")


def canonical_json(payload: Any) -> str:
    """Key-sorted, separator-pinned JSON — the replay-equality witness."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: Any) -> str:
    """SHA-256 of :func:`canonical_json` (cheap bit-identity check)."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def validate_load_report(payload: Any) -> List[str]:
    """Structural errors in a load report (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(
            f"schema: expected {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("machine"), str) or not payload.get("machine"):
        errors.append("machine: missing or not a string")
    if not isinstance(payload.get("seed"), int) or payload.get("seed", -1) < 0:
        errors.append("seed: must be a non-negative integer")
    for key in ("duration_ns", "end_ns"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{key}: must be a non-negative number")
    for key in ("offered", "completed"):
        value = payload.get(key)
        if not isinstance(value, int) or value < 0:
            errors.append(f"{key}: must be a non-negative integer")
    profile = payload.get("profile")
    if not isinstance(profile, dict):
        errors.append("profile: not an object")
    else:
        from .workload import LoadProfile

        try:
            LoadProfile.from_dict(profile)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            errors.append(f"profile: not replayable ({exc})")
    latency = payload.get("latency_ns")
    if not isinstance(latency, dict):
        errors.append("latency_ns: not an object")
    else:
        for key in _LATENCY_KEYS:
            value = latency.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"latency_ns.{key}: must be a non-negative number")
        if not errors and latency["count"] > 0:
            if not (
                latency["min"] <= latency["p50"]
                <= latency["p99"] <= latency["p999"] <= latency["max"]
            ):
                errors.append("latency_ns: percentiles out of order")
    throughput = payload.get("throughput")
    if not isinstance(throughput, dict):
        errors.append("throughput: not an object")
    elif "requests_per_s" not in throughput:
        errors.append("throughput.requests_per_s: missing")
    stations = payload.get("stations")
    if not isinstance(stations, dict):
        errors.append("stations: not an object")
    else:
        for name, summary in stations.items():
            if not isinstance(summary, dict):
                errors.append(f"stations[{name!r}]: not an object")
                continue
            for key in _STATION_KEYS:
                value = summary.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"stations[{name!r}].{key}: "
                        "must be a non-negative number"
                    )
    faults = payload.get("faults")
    if faults is not None:
        if not isinstance(faults, dict):
            errors.append("faults: not an object or null")
        else:
            from ..faults.spec import FaultPlan

            try:
                FaultPlan.from_dict(faults)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(f"faults: not replayable ({exc})")
    if "overload" in payload:
        errors.extend(_validate_overload(payload["overload"]))
    return errors


def _validate_overload(section: Any) -> List[str]:
    """Structural errors in a report's ``overload`` section."""
    errors: List[str] = []
    if not isinstance(section, dict):
        return ["overload: not an object"]
    if section.get("schema") != OVERLOAD_SCHEMA:
        errors.append(
            f"overload.schema: expected {OVERLOAD_SCHEMA!r}, "
            f"got {section.get('schema')!r}"
        )
    spec = section.get("spec")
    if not isinstance(spec, dict):
        errors.append("overload.spec: not an object")
    else:
        from .overload import OverloadSpec

        try:
            OverloadSpec.from_dict(spec)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            errors.append(f"overload.spec: not replayable ({exc})")
    admission = section.get("admission")
    if not isinstance(admission, dict) or "policy" not in admission:
        errors.append("overload.admission: missing policy description")
    generators = section.get("generators")
    if not isinstance(generators, dict):
        errors.append("overload.generators: not an object")
    else:
        for name, counts in generators.items():
            if not isinstance(counts, dict):
                errors.append(f"overload.generators[{name!r}]: not an object")
                continue
            for key in _GENERATOR_KEYS:
                value = counts.get(key)
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"overload.generators[{name!r}].{key}: "
                        "must be a non-negative integer"
                    )
    totals = section.get("totals")
    if not isinstance(totals, dict):
        errors.append("overload.totals: not an object")
    goodput = section.get("goodput")
    if not isinstance(goodput, dict) or "goodput_per_s" not in goodput:
        errors.append("overload.goodput: missing goodput_per_s")
    breakers = section.get("breakers")
    if not isinstance(breakers, dict):
        errors.append("overload.breakers: not an object")
    else:
        for link, state in breakers.items():
            if (
                not isinstance(state, dict)
                or state.get("state") not in _BREAKER_STATES
            ):
                errors.append(
                    f"overload.breakers[{link!r}]: missing or bad state"
                )
    return errors
