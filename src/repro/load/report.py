"""The ``python -m repro load`` report format and its validator.

The load CLI emits one JSON object per run.  The CI load job replays
``--seed 7`` and validates the payload with
:func:`validate_load_report`, so the schema is load-bearing:

* ``schema`` — format tag, currently ``"repro-load-report/1"``;
* ``machine`` / ``profile`` / ``seed`` / ``duration_ns`` — what ran;
  ``profile`` is the full workload description, replayable verbatim;
* ``end_ns`` — when the last drained request finished;
* ``offered`` / ``completed`` — request counts;
* ``latency_ns`` — ``{count, mean, min, max, p50, p99, p999}``
  (nearest-rank percentiles over completed requests);
* ``throughput`` — ``{completed, requests_per_s}``;
* ``stations`` — per-station ``{served, busy_ns, utilization,
  mean_depth, max_depth}``;
* ``faults`` — the composed fault plan, or ``null`` when healthy.

Wall-clock facts (events/sec, elapsed seconds) are *not* part of the
payload: the canonical JSON below must be bit-identical across
replays, worker counts and host machines.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, List

__all__ = [
    "SCHEMA",
    "canonical_json",
    "digest",
    "validate_load_report",
]

SCHEMA = "repro-load-report/1"

_LATENCY_KEYS = ("count", "mean", "min", "max", "p50", "p99", "p999")

_STATION_KEYS = ("served", "busy_ns", "utilization", "mean_depth", "max_depth")


def canonical_json(payload: Any) -> str:
    """Key-sorted, separator-pinned JSON — the replay-equality witness."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: Any) -> str:
    """SHA-256 of :func:`canonical_json` (cheap bit-identity check)."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def validate_load_report(payload: Any) -> List[str]:
    """Structural errors in a load report (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(
            f"schema: expected {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("machine"), str) or not payload.get("machine"):
        errors.append("machine: missing or not a string")
    if not isinstance(payload.get("seed"), int) or payload.get("seed", -1) < 0:
        errors.append("seed: must be a non-negative integer")
    for key in ("duration_ns", "end_ns"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{key}: must be a non-negative number")
    for key in ("offered", "completed"):
        value = payload.get(key)
        if not isinstance(value, int) or value < 0:
            errors.append(f"{key}: must be a non-negative integer")
    profile = payload.get("profile")
    if not isinstance(profile, dict):
        errors.append("profile: not an object")
    else:
        from .workload import LoadProfile

        try:
            LoadProfile.from_dict(profile)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            errors.append(f"profile: not replayable ({exc})")
    latency = payload.get("latency_ns")
    if not isinstance(latency, dict):
        errors.append("latency_ns: not an object")
    else:
        for key in _LATENCY_KEYS:
            value = latency.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"latency_ns.{key}: must be a non-negative number")
        if not errors and latency["count"] > 0:
            if not (
                latency["min"] <= latency["p50"]
                <= latency["p99"] <= latency["p999"] <= latency["max"]
            ):
                errors.append("latency_ns: percentiles out of order")
    throughput = payload.get("throughput")
    if not isinstance(throughput, dict):
        errors.append("throughput: not an object")
    elif "requests_per_s" not in throughput:
        errors.append("throughput.requests_per_s: missing")
    stations = payload.get("stations")
    if not isinstance(stations, dict):
        errors.append("stations: not an object")
    else:
        for name, summary in stations.items():
            if not isinstance(summary, dict):
                errors.append(f"stations[{name!r}]: not an object")
                continue
            for key in _STATION_KEYS:
                value = summary.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"stations[{name!r}].{key}: "
                        "must be a non-negative number"
                    )
    faults = payload.get("faults")
    if faults is not None:
        if not isinstance(faults, dict):
            errors.append("faults: not an object or null")
        else:
            from ..faults.spec import FaultPlan

            try:
                FaultPlan.from_dict(faults)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(f"faults: not replayable ({exc})")
    return errors
