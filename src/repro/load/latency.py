"""End-to-end latency accounting for the traffic engine.

A :class:`LatencyStore` records one value per completed request and
summarizes the distribution with nearest-rank percentiles — the same
convention as :meth:`repro.trace.metrics.MetricsRegistry.percentile`,
so ``p50`` of a single sample is that sample, and percentiles are
always actual observed values (no interpolation, no surprises in the
tail).

Percentile queries on an empty store raise
:class:`~repro.core.errors.LoadError` — there is no honest answer, and
silently returning a sentinel hid real bugs (an engine that recorded
nothing looked like an engine with zero latency).  :meth:`summary`
still reports an explicit all-zero distribution for the empty case,
because the report schema needs a well-formed object either way.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.errors import LoadError

__all__ = ["LatencyStore"]


class LatencyStore:
    """Latency samples and their tail summary."""

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted = True

    def record(self, latency_ns: float) -> None:
        self._values.append(latency_ns)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._values)

    def _ordered(self) -> List[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100, nearest-rank).

        Raises:
            ValueError: ``q`` outside [0, 100].
            LoadError: The store is empty — an empty distribution has
                no percentiles; check ``len(store)`` (or read
                :meth:`summary`, which reports zeros) instead.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        values = self._ordered()
        if not values:
            raise LoadError(
                "percentile of an empty latency store is undefined "
                "(no samples recorded)"
            )
        rank = max(
            0, min(len(values) - 1, round(q / 100.0 * (len(values) - 1)))
        )
        return values[rank]

    def summary(self) -> Dict[str, Any]:
        """The report's ``latency_ns`` object (zeros when empty)."""
        values = self._ordered()
        if not values:
            return {
                "count": 0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p99": 0.0,
                "p999": 0.0,
            }
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": values[0],
            "max": values[-1],
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }
