"""Open/closed-loop traffic generation with per-node queueing.

The paper prices one transfer at a time; this package asks the next
question — what happens to latency when thousands of clients keep the
machine busy?  A seeded, replay-deterministic discrete-event engine
(:class:`LoadEngine`) drives request generators (:class:`OpenLoopSpec`
Poisson/bursty arrivals, :class:`ClosedLoopSpec` think-time clients)
through per-node NIC / deposit-engine / co-processor queueing
stations whose service times come from the calibrated runtime, and
reports p50/p99/p999 latency plus per-station utilization.

Past saturation the engine can also *protect itself*: an
:class:`OverloadSpec` on the profile turns on admission control,
bounded stations, request deadlines with load shedding, and per-link
circuit breakers (:mod:`repro.load.overload`,
:mod:`repro.load.breaker`) — all on the same seeded, bit-identical
replay discipline.

See ``docs/LOAD.md`` for the full tour and
``python -m repro load --help`` for the CLI.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .dispatch import POLICIES, DispatchPolicy, policy_by_name
from .engine import LoadEngine, LoadResult
from .latency import LatencyStore
from .overload import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    OverloadSpec,
    admission_by_name,
)
from .queues import Station
from .report import (
    OVERLOAD_SCHEMA,
    SCHEMA,
    canonical_json,
    digest,
    validate_load_report,
)
from .workload import (
    PROFILES,
    ClosedLoopSpec,
    LoadProfile,
    OpenLoopSpec,
    RequestTemplate,
    profile_by_name,
    uniform,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "BreakerBoard",
    "CircuitBreaker",
    "ClosedLoopSpec",
    "DispatchPolicy",
    "LatencyStore",
    "LoadEngine",
    "LoadProfile",
    "LoadResult",
    "OVERLOAD_SCHEMA",
    "OpenLoopSpec",
    "OverloadSpec",
    "POLICIES",
    "PROFILES",
    "RequestTemplate",
    "SCHEMA",
    "Station",
    "admission_by_name",
    "canonical_json",
    "digest",
    "policy_by_name",
    "profile_by_name",
    "uniform",
    "validate_load_report",
]
