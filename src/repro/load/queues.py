"""Single-server queueing stations at each node's message hardware.

Each simulated node exposes three stations matching the runtime's
resource decomposition (:attr:`MeasuredTransfer.resource_busy_ns`):

* ``nic`` — the sender-side processor + DMA engines;
* ``deposit`` — the receiver's deposit engine;
* ``coproc`` — the receiver's processor / communication co-processor.

A :class:`Station` serves one request at a time.  Waiting requests
queue under a discipline — ``fifo`` (arrival order) or ``priority``
(lower :attr:`RequestTemplate.priority` first, arrival order within a
priority) — with fully deterministic ordering: ties break on the
request's content-derived identity, never on insertion order.

Accounting is exact, not sampled: busy time integrates utilization and
the queue-depth integral yields the time-averaged depth.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Station"]

#: Queue entry: (priority, enqueue_ns, request identity, payload).
_Entry = Tuple[int, float, Tuple[int, int], Any]


class Station:
    """One single-server queueing station.

    Args:
        name: Reporting label, e.g. ``"node3/nic"``.
        discipline: ``"fifo"`` or ``"priority"``.
    """

    def __init__(self, name: str, discipline: str = "fifo") -> None:
        self.name = name
        self.discipline = discipline
        self._queue: List[_Entry] = []
        self._busy_until: float = 0.0
        self._idle = True
        # Exact accounting.
        self.busy_ns = 0.0
        self.served = 0
        self.max_depth = 0
        self._depth_integral = 0.0
        self._depth_clock = 0.0

    # -- queue ---------------------------------------------------------------

    def _account_depth(self, now_ns: float) -> None:
        self._depth_integral += len(self._queue) * (now_ns - self._depth_clock)
        self._depth_clock = now_ns

    def enqueue(
        self,
        now_ns: float,
        priority: int,
        identity: Tuple[int, int],
        payload: Any,
    ) -> None:
        """Add a request to the waiting line.

        ``identity`` is the request's ``(generator, sequence)`` pair —
        a content-derived key, so two stations fed the same requests in
        different orders still serve them identically.
        """
        self._account_depth(now_ns)
        rank = priority if self.discipline == "priority" else 0
        heapq.heappush(self._queue, (rank, now_ns, identity, payload))
        if len(self._queue) > self.max_depth:
            self.max_depth = len(self._queue)

    def pop(self, now_ns: float) -> Optional[Tuple[float, Any]]:
        """``(enqueue time, request)`` next in line, ``None`` when empty."""
        if not self._queue:
            return None
        self._account_depth(now_ns)
        entry = heapq.heappop(self._queue)
        return entry[1], entry[3]

    def depth(self) -> int:
        return len(self._queue)

    # -- server --------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return self._idle

    def start(self, now_ns: float, service_ns: float) -> float:
        """Occupy the server; returns the completion time."""
        self._idle = False
        self._busy_until = now_ns + service_ns
        self.busy_ns += service_ns
        self.served += 1
        return self._busy_until

    def release(self) -> None:
        self._idle = True

    def backlog(self) -> int:
        """Requests at the station: queued plus any one in service."""
        return len(self._queue) + (0 if self._idle else 1)

    # -- reporting -----------------------------------------------------------

    def summary(self, duration_ns: float) -> Dict[str, Any]:
        """Exact utilization / depth statistics over ``duration_ns``."""
        self._account_depth(duration_ns)
        span = duration_ns if duration_ns > 0.0 else 1.0
        return {
            "served": self.served,
            "busy_ns": self.busy_ns,
            "utilization": self.busy_ns / span,
            "mean_depth": self._depth_integral / span,
            "max_depth": self.max_depth,
        }
