"""Single-server queueing stations at each node's message hardware.

Each simulated node exposes three stations matching the runtime's
resource decomposition (:attr:`MeasuredTransfer.resource_busy_ns`):

* ``nic`` — the sender-side processor + DMA engines;
* ``deposit`` — the receiver's deposit engine;
* ``coproc`` — the receiver's processor / communication co-processor.

A :class:`Station` serves one request at a time.  Waiting requests
queue under a discipline — ``fifo`` (arrival order) or ``priority``
(lower :attr:`RequestTemplate.priority` first, arrival order within a
priority) — with fully deterministic ordering: ties break on the
request's content-derived identity, never on insertion order.

Stations are unbounded by default — exactly the PR-8 behavior, on
exactly the PR-8 code path (:meth:`enqueue` / :meth:`pop`).  The
overload-protection layer (``docs/LOAD.md``) instead drives the
bounded API:

* ``capacity`` bounds the *waiting line* (the request in service does
  not count); :meth:`offer` makes the deterministic reject-vs-accept
  decision at enqueue time, evicting the worst waiter on a full
  ``priority`` station when the newcomer outranks it;
* :meth:`pop_live` sheds expired waiters — queue wait beyond the
  entry's deadline — at pop time, with exact accounting (``shed``,
  ``shed_wait_ns``).

Accounting is exact, not sampled: busy time integrates utilization and
the queue-depth integral yields the time-averaged depth; reject and
shed counts are exact tallies of every bounded-path decision.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Station"]

#: Queue entry: (priority, enqueue_ns, request identity, payload) on
#: the unbounded path; the bounded path appends a fifth element, the
#: entry's deadline_ns (0.0 = none).  Both shapes share indices 0-3.
_Entry = Tuple[Any, ...]


class Station:
    """One single-server queueing station.

    Args:
        name: Reporting label, e.g. ``"node3/nic"``.
        discipline: ``"fifo"`` or ``"priority"``.
        capacity: Waiting-line bound consulted by :meth:`offer`
            (``None`` = unbounded; the plain :meth:`enqueue` path
            never checks it).
    """

    def __init__(
        self,
        name: str,
        discipline: str = "fifo",
        capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.discipline = discipline
        self.capacity = capacity
        self._queue: List[_Entry] = []
        self._busy_until: float = 0.0
        self._idle = True
        # Exact accounting.
        self.busy_ns = 0.0
        self.served = 0
        self.max_depth = 0
        self.rejected = 0
        self.shed = 0
        self.shed_wait_ns = 0.0
        self._depth_integral = 0.0
        self._depth_clock = 0.0

    # -- queue ---------------------------------------------------------------

    def _account_depth(self, now_ns: float) -> None:
        self._depth_integral += len(self._queue) * (now_ns - self._depth_clock)
        self._depth_clock = now_ns

    def enqueue(
        self,
        now_ns: float,
        priority: int,
        identity: Tuple[int, int],
        payload: Any,
    ) -> None:
        """Add a request to the waiting line (unbounded fast path).

        ``identity`` is the request's ``(generator, sequence)`` pair —
        a content-derived key, so two stations fed the same requests in
        different orders still serve them identically.
        """
        self._account_depth(now_ns)
        rank = priority if self.discipline == "priority" else 0
        heapq.heappush(self._queue, (rank, now_ns, identity, payload))
        if len(self._queue) > self.max_depth:
            self.max_depth = len(self._queue)

    def offer(
        self,
        now_ns: float,
        priority: int,
        identity: Tuple[Any, ...],
        payload: Any,
        deadline_ns: float = 0.0,
    ) -> Tuple[bool, Optional[Any]]:
        """Bounded enqueue: ``(accepted, evicted payload)``.

        At capacity, a ``fifo`` station rejects the newcomer outright.
        A ``priority`` station compares the newcomer against the worst
        waiter — highest ``(rank, enqueue time, identity)``, the exact
        inverse of service order — and evicts that waiter when the
        newcomer strictly outranks it (sheds lowest-priority first),
        rejecting the newcomer otherwise.  Both outcomes bump
        ``rejected``; the decision depends only on queue content, so
        replays are bit-identical.
        """
        self._account_depth(now_ns)
        rank = priority if self.discipline == "priority" else 0
        entry = (rank, now_ns, identity, payload, deadline_ns)
        if self.capacity is not None and len(self._queue) >= self.capacity:
            if self.discipline != "priority":
                self.rejected += 1
                return False, None
            worst = max(self._queue, key=lambda e: e[:3])
            if entry[:3] >= worst[:3]:
                self.rejected += 1
                return False, None
            self._queue.remove(worst)
            heapq.heapify(self._queue)
            self.rejected += 1
            heapq.heappush(self._queue, entry)
            return True, worst[3]
        heapq.heappush(self._queue, entry)
        if len(self._queue) > self.max_depth:
            self.max_depth = len(self._queue)
        return True, None

    def pop(self, now_ns: float) -> Optional[Tuple[float, Any]]:
        """``(enqueue time, request)`` next in line, ``None`` when empty."""
        if not self._queue:
            return None
        self._account_depth(now_ns)
        entry = heapq.heappop(self._queue)
        return entry[1], entry[3]

    def pop_live(
        self, now_ns: float
    ) -> Tuple[List[Any], Optional[Tuple[float, Any]]]:
        """Shed expired waiters, then pop: ``(shed payloads, next)``.

        Entries whose queue wait exceeds their deadline are shed in
        service order until a live entry (or an empty queue) is found;
        each shed bumps ``shed`` and adds its wait to ``shed_wait_ns``.
        ``next`` is the ``(enqueue time, request)`` pair of the first
        live waiter, ``None`` when every waiter expired.
        """
        shed: List[Any] = []
        if not self._queue:
            return shed, None
        self._account_depth(now_ns)
        while self._queue:
            entry = heapq.heappop(self._queue)
            deadline_ns = entry[4] if len(entry) > 4 else 0.0
            wait_ns = now_ns - entry[1]
            if deadline_ns > 0.0 and wait_ns > deadline_ns:
                self.shed += 1
                self.shed_wait_ns += wait_ns
                shed.append(entry[3])
                continue
            return shed, (entry[1], entry[3])
        return shed, None

    def depth(self) -> int:
        return len(self._queue)

    # -- server --------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return self._idle

    def start(self, now_ns: float, service_ns: float) -> float:
        """Occupy the server; returns the completion time."""
        self._idle = False
        self._busy_until = now_ns + service_ns
        self.busy_ns += service_ns
        self.served += 1
        return self._busy_until

    def release(self) -> None:
        self._idle = True

    def backlog(self) -> int:
        """Requests at the station: queued plus any one in service."""
        return len(self._queue) + (0 if self._idle else 1)

    # -- reporting -----------------------------------------------------------

    def summary(
        self, duration_ns: float, overload: bool = False
    ) -> Dict[str, Any]:
        """Exact utilization / depth statistics over ``duration_ns``.

        ``overload=True`` (the protected engine) adds the bounded-path
        tallies — ``rejected`` / ``shed`` / ``shed_wait_ns`` — keeping
        the unprotected report byte-identical to PR 8.
        """
        self._account_depth(duration_ns)
        span = duration_ns if duration_ns > 0.0 else 1.0
        payload: Dict[str, Any] = {
            "served": self.served,
            "busy_ns": self.busy_ns,
            "utilization": self.busy_ns / span,
            "mean_depth": self._depth_integral / span,
            "max_depth": self.max_depth,
        }
        if overload:
            payload["rejected"] = self.rejected
            payload["shed"] = self.shed
            payload["shed_wait_ns"] = self.shed_wait_ns
        return payload
