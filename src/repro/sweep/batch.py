"""Batched sweep execution: whole grids as vectorized numpy passes.

The scalar strategy (:func:`repro.sweep.worker.run_cell`) answers one
cell at a time; even with memoized tables the per-cell orchestration —
model walk, pipeline simulation chunk by chunk in Python — dominates a
grid run.  This module evaluates a list of cells **as a batch**:

* nominal transfer cells are grouped by ``(machine, model source)``
  for the model estimates — distinct ``(x, y, style)`` queries are
  classified once and folded through
  :func:`repro.core.batch.estimate_many`'s vectorized evaluator — and
  by **pipeline structure** (payload size, per-phase chunking and
  resource-sharing topology) for the measured side, which advances
  every same-structure transfer through the chunk recurrence as
  elementwise array math (:func:`repro.core.batch.solve_pipeline_group`);
* calibrate cells are grouped per ``(machine, stream length,
  congestion)`` and measured against one shared
  :class:`~repro.memsim.node.NodeMemorySystem` harness through
  :func:`repro.machines.measure.measure_entries`, so the engine-keyed
  kernel memo deduplicates repeated entries;
* everything else — fault-seeded cells, runs under an ambient
  :func:`repro.faults.injecting` plan, and any shape the vector path
  cannot express (a composition the runtime rejects, a missing
  calibration entry) — **falls back per cell to the scalar oracle**,
  in canonical order, so errors and results are exactly those of the
  scalar path.  Same envelope discipline as the memsim fastpath.

Rows are bit-identical to the scalar strategy's (asserted by
``tests/properties/test_batch_parity.py`` and gated by
``scripts/bench_speed.py`` on the figure7 grid): every floating-point
operation in the vectorized fold replicates the scalar code's IEEE-754
operation order, and the fallback path *is* the scalar code.

With a tracer installed the batch engine counts ``batch.cells`` (cells
it executed), ``batch.groups`` (vectorized/memo-shared groups formed)
and ``batch.fallbacks`` (cells routed to the scalar oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import batch as core_batch
from ..core.operations import OperationStyle
from ..core.patterns import CONTIGUOUS, AccessPattern
from ..core.transfers import TransferKind
from ..faults.spec import current_fault_plan
from ..trace.tracer import current_tracer
from . import worker
from .spec import NOMINAL_SEED, SweepCell, SweepError

__all__ = ["BatchReport", "run_cells_batched"]

#: Sentinel marking a model-estimate combo the batch path must not
#: serve (the scalar oracle will raise the canonical error).
_BAD = object()


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one batched execution.

    ``rows`` aligns index-for-index with the input cells; ``groups``
    counts vectorized/memo-shared groups formed; ``fallbacks`` counts
    cells that ran through the scalar oracle instead of a group.
    """

    rows: Tuple[Dict[str, Any], ...]
    groups: int
    fallbacks: int

    @property
    def cells(self) -> int:
        return len(self.rows)


@dataclass
class _Lane:
    """One vectorizable transfer cell, fully prepared."""

    index: int
    cell: SweepCell
    runtime: Any
    phases: List[Any]
    style: OperationStyle
    duplex: bool
    estimate: float


def _run_cell_checked(cell: SweepCell) -> Dict[str, Any]:
    """The scalar oracle with the shard loop's canonical error wrap."""
    try:
        return worker.run_cell(cell)
    except SweepError:
        raise
    except Exception as exc:
        raise SweepError(f"cell {cell.cell_id!r} failed: {exc}") from exc


def _resource_slots(phase) -> Tuple[int, ...]:
    """Dense first-occurrence resource indices for one phase's stages."""
    order: Dict[str, int] = {}
    slots = []
    for stage in phase.stages:
        if stage.resource not in order:
            order[stage.resource] = len(order)
        slots.append(order[stage.resource])
    return tuple(slots)


def _estimates(
    vector: List[Tuple[int, SweepCell]],
) -> Dict[Tuple[str, str, str, str, str], Any]:
    """Model estimates for every distinct transfer combo, batched.

    Combos whose estimate raises are marked :data:`_BAD`; their lanes
    fall back to the scalar oracle, which raises the canonical error.
    """
    by_model: Dict[Tuple[str, str], List[Tuple[str, str, str]]] = {}
    for __, cell in vector:
        key = (cell.machine, cell.model_source)
        combo = (cell.x, cell.y, cell.style)
        combos = by_model.setdefault(key, [])
        if combo not in combos:
            combos.append(combo)

    estimates: Dict[Tuple[str, str, str, str, str], Any] = {}
    for (machine_name, source), combos in by_model.items():
        # Any failure here — unknown machine, unparsable pattern,
        # estimate error — marks the combo _BAD so its lanes take the
        # scalar fallback in cell order, raising the canonical error.
        parsed: List[Any] = []
        try:
            model = worker._model(machine_name, source)
        except Exception:
            model = None
        for x, y, style in combos:
            if model is None:
                parsed.append(_BAD)
                continue
            try:
                parsed.append(
                    (
                        AccessPattern.parse(x),
                        AccessPattern.parse(y),
                        OperationStyle(style),
                    )
                )
            except Exception:
                parsed.append(_BAD)
        queries = [combo for combo in parsed if combo is not _BAD]
        try:
            good: List[Any] = core_batch.estimate_many(model, queries)
        except Exception:
            # Localize: rerun each combo through the scalar facade so
            # only the genuinely failing ones fall back.
            good = []
            for x, y, style in queries:
                try:
                    good.append(model.estimate(x, y, style).mbps)
                except Exception:
                    good.append(_BAD)
        good_values = iter(good)
        values = [
            combo if combo is _BAD else next(good_values)
            for combo in parsed
        ]
        for (x, y, style), value in zip(combos, values):
            estimates[(machine_name, source, x, y, style)] = value
    return estimates


def _prepare_lane(
    index: int,
    cell: SweepCell,
    estimates: Dict[Tuple[str, str, str, str, str], Any],
) -> _Lane:
    """Build a transfer cell's runtime view; raises -> scalar fallback."""
    estimate = estimates.get(
        (cell.machine, cell.model_source, cell.x, cell.y, cell.style), _BAD
    )
    if estimate is _BAD:
        raise core_batch.BatchUnsupported("model estimate unsupported")
    machine = worker.machine_by_key(cell.machine)
    x = AccessPattern.parse(cell.x)
    y = AccessPattern.parse(cell.y)
    style = OperationStyle(cell.style)
    runtime = worker._runtime(cell.machine, cell.style, cell.rates)
    congestion = None if cell.congestion < 0 else cell.congestion
    if cell.duplex == "auto":
        duplex = not machine.quirks.measures_simplex
    else:
        duplex = cell.duplex == "on"
    phases = runtime.phases(x, y, cell.size, style, congestion=congestion)
    if duplex:
        phases = [runtime._derate_for_duplex(phase) for phase in phases]
    return _Lane(index, cell, runtime, phases, style, duplex, estimate)


def _solve_group(nbytes: int, lanes: List[_Lane]) -> List[Dict[str, Any]]:
    """Rows for one structure group, replicating the scalar runtime math.

    Follows ``CommRuntime._execute`` operation for operation on the
    nominal (fault-free) path: pipeline phases in order, library
    overhead, the efficiency derate, the duplex memory cap, and the
    final ``ns`` recomputation from the capped rate.
    """
    n = len(lanes)
    n_phases = len(lanes[0].phases)
    structures = []
    rates: List[np.ndarray] = []
    overheads: List[np.ndarray] = []
    startups: List[np.ndarray] = []
    for phase_index in range(n_phases):
        first = lanes[0].phases[phase_index]
        slots = _resource_slots(first)
        structures.append((first.chunk_bytes, slots))
        n_stages = len(first.stages)
        rate = np.empty((n_stages, n), dtype=np.float64)
        overhead = np.empty((n_stages, n), dtype=np.float64)
        startup = np.empty((n_stages, n), dtype=np.float64)
        for lane_index, lane in enumerate(lanes):
            for stage_index, stage in enumerate(
                lane.phases[phase_index].stages
            ):
                rate[stage_index, lane_index] = stage.rate_mbps
                overhead[stage_index, lane_index] = stage.chunk_overhead_ns
                startup[stage_index, lane_index] = stage.startup_ns
        rates.append(rate)
        overheads.append(overhead)
        startups.append(startup)

    pipeline_ns = core_batch.solve_pipeline_group(
        nbytes, structures, rates, overheads, startups
    )

    library_ns = np.empty(n, dtype=np.float64)
    efficiency = np.empty(n, dtype=np.float64)
    cap = np.full(n, np.inf, dtype=np.float64)
    for lane_index, lane in enumerate(lanes):
        library = lane.runtime.library
        fragments = -(-nbytes // library.fragment_bytes)
        library_ns[lane_index] = (
            library.per_message_ns + fragments * library.per_fragment_ns
        )
        efficiency[lane_index] = (
            lane.runtime.machine.quirks.runtime_efficiency
        )
        if lane.duplex:
            cap[lane_index] = (
                lane.runtime.table.lookup_kind(
                    TransferKind.COPY, CONTIGUOUS, CONTIGUOUS
                )
                / lane.runtime.machine.quirks.duplex_penalty
            )

    total_ns = pipeline_ns + library_ns
    mbps = nbytes / total_ns * 1000.0
    mbps = mbps * efficiency
    mbps = np.where(mbps > cap, cap, mbps)
    ns = nbytes / mbps * 1000.0

    rows = []
    for lane_index, lane in enumerate(lanes):
        rows.append(
            {
                "id": lane.cell.cell_id,
                "model_mbps": lane.estimate,
                "mbps": float(mbps[lane_index]),
                "ns": float(ns[lane_index]),
                "style": lane.style.value,
                "retries": 0,
            }
        )
    return rows


def _structure_signature(lane: _Lane) -> Tuple:
    """What two lanes must share to advance through one vector group."""
    return (
        lane.cell.size,
        tuple(
            (phase.chunk_bytes, len(phase.stages), _resource_slots(phase))
            for phase in lane.phases
        ),
    )


def run_cells_batched(cells: Sequence[SweepCell]) -> BatchReport:
    """Execute a list of sweep cells through the batch engine.

    Returns rows aligned index-for-index with ``cells``, bit-identical
    to ``[run_cell(c) for c in cells]`` — including raising the
    canonical :class:`~repro.sweep.spec.SweepError` of the first cell
    the scalar loop would have failed on.
    """
    rows: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    fallback: List[int] = []
    groups = 0

    plan = current_fault_plan()
    ambient_faults = plan is not None and not plan.is_empty()

    vector: List[Tuple[int, SweepCell]] = []
    calibrate: List[Tuple[int, SweepCell]] = []
    for index, cell in enumerate(cells):
        if ambient_faults:
            # An ambient plan charges faults the vector path does not
            # model; the scalar oracle handles every cell.
            fallback.append(index)
        elif cell.kind == "calibrate":
            calibrate.append((index, cell))
        elif cell.kind == "transfer" and cell.seed == NOMINAL_SEED:
            vector.append((index, cell))
        else:
            fallback.append(index)

    # -- calibrate cells: one shared node harness per group ---------------
    cal_groups: Dict[Tuple[str, int, int], List[Tuple[int, SweepCell]]] = {}
    for index, cell in calibrate:
        key = (cell.machine, cell.size, cell.congestion)
        cal_groups.setdefault(key, []).append((index, cell))
    for (machine_name, nwords, congestion), members in cal_groups.items():
        from ..machines.measure import measure_entries

        try:
            machine = worker.machine_by_key(machine_name)
            node = worker._node(machine_name, nwords)
            values = measure_entries(
                machine,
                node,
                [(cell.style, cell.x, cell.y) for __, cell in members],
                congestion=None if congestion < 0 else congestion,
            )
        except Exception:
            fallback.extend(index for index, __ in members)
            continue
        groups += 1
        for (index, cell), value in zip(members, values):
            rows[index] = {"id": cell.cell_id, "mbps": value}

    # -- transfer cells: vectorized estimates + pipeline groups -----------
    estimates = _estimates(vector)
    groups += len({(cell.machine, cell.model_source) for __, cell in vector})

    structure_groups: Dict[Tuple, List[_Lane]] = {}
    for index, cell in vector:
        try:
            lane = _prepare_lane(index, cell, estimates)
        except Exception:
            fallback.append(index)
            continue
        structure_groups.setdefault(
            _structure_signature(lane), []
        ).append(lane)

    for signature, lanes in structure_groups.items():
        try:
            group_rows = _solve_group(signature[0], lanes)
        except Exception:
            fallback.extend(lane.index for lane in lanes)
            continue
        groups += 1
        for lane, row in zip(lanes, group_rows):
            rows[lane.index] = row

    # -- scalar oracle for everything else, in canonical order ------------
    for index in sorted(fallback):
        rows[index] = _run_cell_checked(cells[index])

    missing = [cells[i].cell_id for i, row in enumerate(rows) if row is None]
    if missing:
        raise SweepError(
            f"batch engine produced no row for {len(missing)} cell(s) "
            f"(first: {missing[0]!r})"
        )

    tracer = current_tracer()
    if tracer is not None:
        tracer.count("batch.cells", len(cells))
        tracer.count("batch.groups", groups)
        tracer.count("batch.fallbacks", len(fallback))

    return BatchReport(
        rows=tuple(rows),  # type: ignore[arg-type]
        groups=groups,
        fallbacks=len(fallback),
    )
