"""Sweep execution: serial reference, in-process batched, and pooled.

Three execution strategies, all producing bit-identical
:class:`~repro.sweep.merge.SweepResult` payloads for the same spec:

* :func:`run_serial` — the *reference implementation*: a plain loop
  over the grid in canonical order, one fresh runtime per cell,
  exactly what the pre-sweep consumers did.  Slowest, simplest,
  obviously correct; the determinism tests compare everything else
  against it.
* :func:`run_sweep` with ``workers <= 1`` — in-process execution of
  the planned shards through the worker module's batched memos.
* :func:`run_sweep` with ``workers > 1`` — a
  :class:`~concurrent.futures.ProcessPoolExecutor` executing shards,
  each worker batching its own shards and all workers sharing the
  on-disk calibration cache; results are merged by canonical cell
  index, never by completion order.

Shard lifecycle is observable through the trace layer: with a tracer
installed (:func:`repro.trace.tracing`) the runner emits
``sweep.cells`` / ``sweep.shards`` / ``sweep.workers`` counters and
one span per shard on the ``"sweep"`` track.  Sweep spans record
**wall-clock** nanoseconds (the sweep engine runs in real time), not
the simulated nanoseconds the runtime's phase spans use; they share an
export format, not a clock domain.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Tuple

from ..trace.tracer import current_tracer
from . import worker as worker_module
from .merge import SweepResult, merge_rows
from .plan import Shard, plan_shards
from .spec import SweepError, SweepSpec
from .worker import init_worker, pinned_environment, run_shard

__all__ = ["run_serial", "run_sweep"]


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back gracefully."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


#: Execution engines ``run_sweep`` accepts: the scalar per-cell loop
#: and the vectorized batch engine (:mod:`repro.sweep.batch`).
ENGINES = ("cell", "batch")


def _shard_payload(shard: Shard, engine: str = "cell"):
    payload = (
        shard.index,
        tuple(
            (cell_index, cell.to_dict())
            for cell_index, cell in shard.cells
        ),
    )
    # The two-element form stays the wire format for the default
    # engine, so payloads round-trip to older consumers unchanged.
    return payload if engine == "cell" else payload + (engine,)


def run_serial(spec: SweepSpec, batched: bool = False) -> SweepResult:
    """Execute the grid with a plain in-order loop (no shards, no pool).

    With ``batched=False`` every cell rebuilds its state from scratch
    (a fresh memo universe per cell) — the honest pre-sweep baseline
    the speed benchmark compares against, and the reference the
    determinism properties hold every other strategy to.  With
    ``batched=True`` the worker memos persist across cells, which must
    not change a single bit of the result.
    """
    cells = spec.expand()
    started = time.perf_counter()
    rows: List[Dict[str, Any]] = []
    for cell in cells:
        if not batched:
            worker_module.reset_memos()
        rows.append(worker_module.run_cell(cell))
    if not batched:
        worker_module.reset_memos()
    elapsed = time.perf_counter() - started
    return SweepResult(
        spec=spec,
        rows=tuple(rows),
        stats={
            "strategy": "serial" if not batched else "serial-batched",
            "workers": 1,
            "shards": 0,
            "cells": len(cells),
            "elapsed_s": elapsed,
        },
    )


def _preflight_verify(cells) -> int:
    """Statically verify every distinct transfer shape in the grid.

    Each distinct ``(machine, model source, x, y, style, size)`` among
    the transfer cells is lowered through the semantic verifier
    (:func:`repro.analysis.verify_expr`) before any cell executes.
    A shape whose requested style the model cannot build is skipped —
    that is the linter's CT403 domain and the worker will raise its
    own error.  Any blocking finding (CT21x or an error diagnostic)
    aborts the sweep with a :class:`SweepError`.

    Returns the number of shapes verified.
    """
    from ..analysis.verify import verify_expr
    from ..core.errors import CompositionError
    from ..core.patterns import AccessPattern
    from ..memsim.config import WORD_BYTES
    from .worker import machine_by_key

    shapes = sorted(
        {
            (c.machine, c.model_source, c.x, c.y, c.style, c.size)
            for c in cells
            if c.kind == "transfer"
        }
    )
    models: Dict[Tuple[str, str], Any] = {}
    verified = 0
    for machine, source, x, y, style, size in shapes:
        key = (machine, source)
        if key not in models:
            models[key] = machine_by_key(machine).model(source=source)
        model = models[key]
        try:
            expr = model.build(
                AccessPattern.parse(x), AccessPattern.parse(y), style
            )
        except CompositionError:
            continue
        result = verify_expr(
            expr,
            model=model,
            nbytes=size * WORD_BYTES,
            style=style,
            name=f"{machine}:{x}Q{y}:{style}",
        )
        if not result.ok:
            findings = "; ".join(
                f"{d.rule}: {d.message}" for d in result.diagnostics
            )
            raise SweepError(
                f"preflight verify failed for {machine}:{x}Q{y}:{style}"
                f"@{size}w: {findings}"
            )
        verified += 1
    return verified


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    shuffle_seed: Optional[int] = None,
    preflight_verify: bool = False,
    engine: str = "cell",
) -> SweepResult:
    """Plan, execute and deterministically merge one sweep.

    Args:
        spec: The grid to sweep.
        workers: Process count; ``None``, 0 or 1 run the shards
            in-process (no pool) through the same batched worker code.
        shard_size: Cells per shard (default: a few shards per worker).
        shuffle_seed: Deterministically permute shard submission order
            — a test knob proving completion order cannot leak into
            results.
        preflight_verify: Run the semantic verifier over every distinct
            transfer shape before executing the grid; blocking findings
            raise :class:`SweepError` and nothing executes.
        engine: ``"cell"`` (default) executes one cell at a time
            through the scalar oracle; ``"batch"`` evaluates the grid
            as vectorized numpy passes (:mod:`repro.sweep.batch`) —
            in-process over the whole grid when ``workers <= 1``, per
            shard inside each pool worker otherwise.  The merged
            payload and digest are bit-identical either way.

    Returns:
        A :class:`~repro.sweep.merge.SweepResult` whose canonical
        payload is bit-identical for any ``workers``/``shard_size``/
        ``shuffle_seed``/``engine`` combination.
    """
    if engine not in ENGINES:
        raise SweepError(
            f"unknown sweep engine {engine!r}; choose from {ENGINES}"
        )
    cells = spec.expand()
    n_verified = _preflight_verify(cells) if preflight_verify else None
    n_workers = max(1, workers or 1)
    shards = plan_shards(
        cells,
        shard_size=shard_size,
        workers=n_workers,
        shuffle_seed=shuffle_seed,
    )
    tracer = current_tracer()
    if tracer is not None:
        tracer.count("sweep.cells", len(cells))
        tracer.count("sweep.shards", len(shards))
        tracer.count("sweep.workers", n_workers)

    started = time.perf_counter()
    batch_stats: Dict[str, Any] = {}
    if engine == "batch" and n_workers == 1:
        # Whole grid through one batched pass: maximal group sizes.
        from .batch import run_cells_batched

        report = run_cells_batched(cells)
        indexed_rows = list(enumerate(report.rows))
        batch_stats = {
            "batch_groups": report.groups,
            "batch_fallbacks": report.fallbacks,
        }
    elif n_workers == 1:
        indexed_rows = _run_shards_inline(shards, tracer, started)
    else:
        indexed_rows = _run_shards_pooled(
            shards, n_workers, tracer, started, engine
        )
    rows = merge_rows(cells, indexed_rows)
    elapsed = time.perf_counter() - started

    if tracer is not None:
        tracer.span(
            "sweep",
            track="sweep",
            start_ns=0.0,
            duration_ns=elapsed * 1e9,
            category="sweep",
            cells=len(cells),
            shards=len(shards),
            workers=n_workers,
        )
    stats: Dict[str, Any] = {
        "strategy": "pool" if n_workers > 1 else "inline",
        "engine": engine,
        "workers": n_workers,
        "shards": len(shards),
        "shard_size": max((len(s) for s in shards), default=0),
        "cells": len(cells),
        "elapsed_s": elapsed,
    }
    stats.update(batch_stats)
    if n_verified is not None:
        stats["preflight_verified"] = n_verified
    return SweepResult(spec=spec, rows=rows, stats=stats)


def _trace_shard(
    tracer, shard: Shard, t0: float, started: float, finished: float
) -> None:
    tracer.span(
        f"shard:{shard.index}",
        track="sweep",
        start_ns=(started - t0) * 1e9,
        duration_ns=(finished - started) * 1e9,
        category="shard",
        cells=len(shard),
        machines=list(shard.machines),
    )


def _run_shards_inline(
    shards: Tuple[Shard, ...], tracer, t0: float
) -> List[Tuple[int, Dict[str, Any]]]:
    indexed_rows: List[Tuple[int, Dict[str, Any]]] = []
    for shard in shards:
        shard_started = time.perf_counter()
        __, rows = run_shard(_shard_payload(shard))
        indexed_rows.extend(rows)
        if tracer is not None:
            _trace_shard(
                tracer, shard, t0, shard_started, time.perf_counter()
            )
    return indexed_rows


def _run_shards_pooled(
    shards: Tuple[Shard, ...],
    n_workers: int,
    tracer,
    t0: float,
    engine: str = "cell",
) -> List[Tuple[int, Dict[str, Any]]]:
    indexed_rows: List[Tuple[int, Dict[str, Any]]] = []
    by_shard_index = {shard.index: shard for shard in shards}
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, max(1, len(shards))),
            mp_context=_pool_context(),
            initializer=init_worker,
            initargs=(pinned_environment(),),
        ) as pool:
            pending = {}
            for shard in shards:
                future = pool.submit(
                    run_shard, _shard_payload(shard, engine)
                )
                pending[future] = (shard, time.perf_counter())
            while pending:
                done, __ = wait(
                    list(pending), return_when=FIRST_COMPLETED
                )
                for future in done:
                    shard, submitted = pending.pop(future)
                    shard_index, rows = future.result()
                    if shard_index != shard.index:
                        raise SweepError(
                            f"shard {shard.index} returned as "
                            f"{shard_index}; executor mixed results"
                        )
                    indexed_rows.extend(rows)
                    if tracer is not None:
                        _trace_shard(
                            tracer,
                            by_shard_index[shard_index],
                            t0,
                            submitted,
                            time.perf_counter(),
                        )
                        tracer.count("sweep.shards_completed")
    except SweepError:
        raise
    except Exception as exc:  # pool/pickling/worker-crash failures
        raise SweepError(f"sweep worker pool failed: {exc}") from exc
    return indexed_rows
