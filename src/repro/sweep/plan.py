"""Shard planning: split a cell grid into work units.

The planner optimizes for the worker-side memos
(:mod:`repro.sweep.worker`): cells are grouped by the expensive shared
state they need — machine and calibration source — before being cut
into shards, so a worker that executes one shard start-to-finish
derives at most one calibration table.  Shard contents and order are a
pure function of the cell list and the two knobs (``shard_size``,
``workers``); nothing about planning may influence merged *values*,
only wall-clock time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .spec import SweepCell, SweepError

__all__ = ["Shard", "plan_shards", "default_shard_size"]

#: Target shards per worker: enough slack for load balancing without
#: drowning the pool in tiny round trips.
_SHARDS_PER_WORKER = 3


@dataclass(frozen=True)
class Shard:
    """One work unit: a slice of the grid with its canonical indices.

    ``cells`` pair each :class:`~repro.sweep.spec.SweepCell` with its
    index in the spec's expansion — the merge key that makes results
    independent of completion order.
    """

    index: int
    cells: Tuple[Tuple[int, SweepCell], ...]

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def machines(self) -> Tuple[str, ...]:
        seen = {}
        for __, cell in self.cells:
            seen.setdefault(cell.machine, None)
        return tuple(seen)


def default_shard_size(n_cells: int, workers: int) -> int:
    """Shard size giving every worker a few shards to load-balance."""
    if n_cells <= 0:
        return 1
    return max(1, -(-n_cells // (max(1, workers) * _SHARDS_PER_WORKER)))


def plan_shards(
    cells: Sequence[SweepCell],
    shard_size: Optional[int] = None,
    workers: int = 1,
    shuffle_seed: Optional[int] = None,
) -> Tuple[Shard, ...]:
    """Cut ``cells`` into shards, grouped for worker-memo affinity.

    Args:
        cells: The grid in canonical (spec-expansion) order.
        shard_size: Cells per shard; defaults to
            :func:`default_shard_size`.
        workers: Intended worker count (sizes the default shard).
        shuffle_seed: When given, deterministically permute shard
            *submission order*.  Results must not change — the
            determinism property tests sweep this knob.
    """
    if shard_size is not None and shard_size <= 0:
        raise SweepError(f"shard size must be positive, got {shard_size}")
    size = shard_size or default_shard_size(len(cells), workers)

    # Stable grouping: cells that share a machine and calibration
    # source land in contiguous shards (one table per worker instead
    # of one per cell).  sorted() is stable, so within a group the
    # canonical order survives.
    indexed = list(enumerate(cells))
    indexed.sort(key=lambda pair: (pair[1].machine, pair[1].rates))

    shards: List[Shard] = []
    for start in range(0, len(indexed), size):
        shards.append(
            Shard(
                index=len(shards),
                cells=tuple(indexed[start:start + size]),
            )
        )
    if shuffle_seed is not None:
        order = list(range(len(shards)))
        random.Random(shuffle_seed).shuffle(order)
        shards = [shards[i] for i in order]
    return tuple(shards)
