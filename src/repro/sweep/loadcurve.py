"""Latency-vs-offered-load curves: where the hockey stick bends.

The load engine answers "what is p99 at this arrival rate?"; this
module sweeps the question across arrival-rate multipliers and reports
the whole curve — the canonical way to find a configuration's
capacity and to demonstrate that overload protection keeps the tail
bounded where the unprotected engine's p99 takes off.

Each point scales the base profile with
:meth:`~repro.load.workload.LoadProfile.scaled` (open-loop rates
multiplied, closed-loop populations rounded up) and runs one full
simulation.  Points are independent, so ``workers > 1`` fans them out
over a process pool — with the sweep engine's merge discipline: the
result is assembled in multiplier order, never completion order, and
is bit-identical to the serial run.

The payload (schema ``repro-load-curve/1``) carries, per point, the
offered / completed / goodput counts and the latency tail, plus a
*knee* estimate: the first multiplier whose p99 exceeds
``knee_factor`` times the first point's p99 — the classic operational
definition of "the curve went vertical here".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import LoadError
from ..faults.spec import FaultPlan
from ..load.engine import LoadEngine
from ..load.workload import LoadProfile
from .runner import _pool_context

__all__ = ["CURVE_SCHEMA", "run_load_curve"]

CURVE_SCHEMA = "repro-load-curve/1"

#: Default sweep: half capacity through deep saturation.
DEFAULT_MULTIPLIERS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


def _check_multipliers(multipliers: Sequence[float]) -> Tuple[float, ...]:
    values = tuple(float(m) for m in multipliers)
    if not values:
        raise LoadError("latency curve needs at least one multiplier")
    previous = 0.0
    for value in values:
        if value <= 0.0:
            raise LoadError(
                f"load multipliers must be positive, got {value}"
            )
        if value <= previous:
            raise LoadError(
                "load multipliers must be strictly increasing, got "
                f"{value} after {previous}"
            )
        previous = value
    return values


def _run_point(
    payload: Tuple[Dict[str, Any], int, float, float, Optional[Dict[str, Any]]]
) -> Dict[str, Any]:
    """One curve point (top-level so process pools can pickle it)."""
    profile_dict, seed, horizon_ns, multiplier, faults_dict = payload
    profile = LoadProfile.from_dict(profile_dict).scaled(multiplier)
    faults = (
        FaultPlan.from_dict(faults_dict) if faults_dict is not None else None
    )
    result = LoadEngine(profile, seed=seed, faults=faults).run(horizon_ns)
    report = result.to_dict()
    latency = report["latency_ns"]
    point: Dict[str, Any] = {
        "multiplier": multiplier,
        "offered": report["offered"],
        "completed": report["completed"],
        "goodput_per_s": report["throughput"]["requests_per_s"],
        "p50_ns": latency["p50"],
        "p99_ns": latency["p99"],
        "p999_ns": latency["p999"],
        "mean_ns": latency["mean"],
    }
    overload = report.get("overload")
    if overload is not None:
        totals = overload["totals"]
        point["rejected"] = totals["rejected"]
        point["evicted"] = totals["evicted"]
        point["shed"] = totals["shed"]
        point["broken"] = totals["broken"]
        point["retried"] = totals["retried"]
    return point


def _find_knee(
    points: Sequence[Dict[str, Any]], knee_factor: float
) -> Optional[float]:
    """First multiplier whose p99 blows past ``knee_factor`` x baseline.

    The baseline is the first point with a non-zero p99 (the lowest
    offered load swept).  ``None`` means the curve never bent — the
    sweep stayed under capacity, or protection held the tail flat.
    """
    baseline = next(
        (p["p99_ns"] for p in points if p["p99_ns"] > 0.0), None
    )
    if baseline is None:
        return None
    for point in points:
        if point["p99_ns"] > knee_factor * baseline:
            return point["multiplier"]
    return None


def run_load_curve(
    profile: LoadProfile,
    seed: int,
    horizon_ns: float,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    workers: int = 1,
    faults: Optional[FaultPlan] = None,
    knee_factor: float = 3.0,
) -> Dict[str, Any]:
    """Sweep ``profile`` across arrival-rate multipliers.

    Args:
        profile: Base traffic description (multiplier 1.0).
        seed: Replay seed shared by every point.
        horizon_ns: Simulated duration per point.
        multipliers: Strictly increasing positive rate multipliers.
        workers: Process count; points fan out but merge in multiplier
            order, so the payload is identical for any value.
        faults: Optional fault plan applied to every point.
        knee_factor: p99 blow-up ratio that marks the knee.

    Returns:
        The ``repro-load-curve/1`` payload (canonical-JSON friendly).

    Raises:
        LoadError: Bad multipliers or a non-positive knee factor.
    """
    values = _check_multipliers(multipliers)
    if knee_factor <= 1.0:
        raise LoadError(
            f"knee factor must be > 1, got {knee_factor}"
        )
    if horizon_ns <= 0.0:
        raise LoadError("curve duration must be positive")
    faults_dict = faults.to_dict() if faults is not None else None
    jobs = [
        (profile.to_dict(), seed, horizon_ns, multiplier, faults_dict)
        for multiplier in values
    ]
    if workers <= 1 or len(jobs) <= 1:
        points = [_run_point(job) for job in jobs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(workers, len(jobs)),
            mp_context=_pool_context(),
        ) as pool:
            # Deterministic merge: map() preserves job order, so the
            # curve is in multiplier order whatever finishes first.
            points = list(pool.map(_run_point, jobs))
    return {
        "schema": CURVE_SCHEMA,
        "profile": profile.to_dict(),
        "seed": seed,
        "duration_ns": horizon_ns,
        "multipliers": list(values),
        "knee_factor": knee_factor,
        "points": points,
        "knee_multiplier": _find_knee(points, knee_factor),
    }
