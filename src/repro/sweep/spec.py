"""Sweep specifications: declarative parameter grids.

The paper's headline results are grids — machine x pattern x strategy
x size (Tables 1-6, Figures 4/7/8) — and regenerating them is
embarrassingly parallel: every cell is an independent, deterministic
simulation.  A :class:`SweepSpec` declares such a grid once; the
planner (:mod:`repro.sweep.plan`) shards its cells into work units and
the runner (:mod:`repro.sweep.runner`) executes them on any number of
worker processes with a deterministic merge.

Three cell kinds cover the library's sweep-shaped workloads:

* ``"transfer"`` — end-to-end runtime measurements under the paper's
  measurement conventions (one :func:`~repro.runtime.engine.measure_q`
  per cell, plus the model estimate), optionally under seeded fault
  plans.  This is the Figure 7/8 grid and the faults report.
* ``"calibrate"`` — single basic-transfer measurements on the
  memory-system simulator (one table entry per cell).  This is the
  Table 1-3 calibration grid behind
  :func:`~repro.machines.measure.measure_table`.
* ``"collective"`` — whole collective operations (broadcast,
  allreduce, alltoall) run round by round through
  :func:`~repro.runtime.collectives.run_collective`, optionally with
  the model-driven algorithm selector ("auto").

Specs and cells are plain frozen dataclasses of JSON-serializable
fields, so they cross process boundaries and survive a JSON round
trip bit-exactly.  Machines are referenced by registry key ("t3d",
"paragon"), never by object, for the same reason.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.errors import ModelError
from ..core.operations import OperationStyle

__all__ = [
    "SweepError",
    "SweepCell",
    "SweepSpec",
    "MACHINE_KEYS",
    "NOMINAL_SEED",
    "figure7_spec",
    "figure8_spec",
    "calibration_spec",
    "collectives_spec",
]


def _registry_keys() -> Tuple[str, ...]:
    from ..machines.registry import machine_names

    return machine_names()


#: Registry keys accepted by ``SweepSpec.machines`` (resolved to
#: factories inside workers; see :mod:`repro.sweep.worker`).  Sourced
#: from the machine registry so a newly registered machine is
#: immediately sweepable.
MACHINE_KEYS: Tuple[str, ...] = _registry_keys()

#: Seed value meaning "no fault plan" (cells run nominal).
NOMINAL_SEED = -1

_KINDS = ("transfer", "calibrate", "collective")
_RATES = ("simulated", "paper")
_DUPLEX = ("auto", "on", "off")

#: Calibration entry letters a calibrate cell's ``style`` may carry
#: (paper notation: C copy, S load-send, F fetch-send/DMA, R
#: receive-store, D deposit, plus the two network framing modes).
CALIBRATION_LETTERS = ("C", "S", "F", "R", "D", "Nd", "Nadp")


class SweepError(ModelError):
    """A sweep failed: bad spec, a worker died, or the merge found
    missing/duplicate cells."""


@dataclass(frozen=True, order=True)
class SweepCell:
    """One unit of sweep work, fully self-describing and picklable.

    For ``kind="transfer"`` the fields read like an ``xQy`` operation:
    ``x``/``y`` are pattern notations ("1", "64", "w"), ``style`` an
    :class:`~repro.core.operations.OperationStyle` value, ``size`` the
    payload bytes and ``seed`` a fault-plan seed (:data:`NOMINAL_SEED`
    for a healthy run).  For ``kind="calibrate"`` the ``style`` field
    carries the table-entry letter ("C", "S", ..., "Nd"), ``x``/``y``
    the entry's read/write keys ("0", "1", "w" or a stride) and
    ``size`` the stream length in words.  For ``kind="collective"``
    the ``op`` field names the operation, ``style`` the algorithm
    ("auto" defers to the model-driven selector), ``size`` the
    per-node payload bytes and ``nodes`` the partition size.

    The dataclass ordering (field by field) is the canonical total
    order used by the deterministic merge; it never depends on which
    worker produced a result.
    """

    kind: str
    machine: str
    x: str
    y: str
    style: str
    size: int
    seed: int = NOMINAL_SEED
    congestion: int = -1  # -1: the machine's default operating point
    rates: str = "simulated"
    model_source: str = "paper"
    duplex: str = "auto"
    op: str = ""  # collective cells only
    nodes: int = 0  # collective cells only

    @property
    def cell_id(self) -> str:
        """Stable human-readable identifier (also used in reports)."""
        if self.kind == "calibrate":
            entry = (
                self.style
                if self.style in ("Nd", "Nadp")
                else f"{self.x}{self.style}{self.y}"
            )
            return f"{self.machine}:cal:{entry}@{self.size}w"
        tail = "" if self.seed == NOMINAL_SEED else f":seed{self.seed}"
        if self.kind == "collective":
            return (
                f"{self.machine}:{self.op}:{self.style}:"
                f"{self.size}x{self.nodes}{tail}"
            )
        return (
            f"{self.machine}:{self.x}Q{self.y}:{self.style}:{self.size}{tail}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepCell":
        return cls(**_checked_fields(cls, payload))


def _checked_fields(cls, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Reject unknown fields so stale/foreign JSON fails loudly."""
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise SweepError(
            f"{cls.__name__} payload has unknown fields {unknown}"
        )
    return payload


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid of sweep cells.

    Axes multiply: ``machines x (pairs | x*y) x styles x sizes x
    seeds``.  ``pairs`` — explicit (x, y) pattern pairs — overrides
    the ``x``/``y`` cross product when non-empty, because the paper's
    grids (Figure 7/8) enumerate named pairs rather than a full
    product.  An empty ``seeds`` tuple means every cell runs nominal;
    listing seeds adds one grid layer per seed (include
    :data:`NOMINAL_SEED` to keep a healthy baseline in the same
    sweep).

    ``kind="calibrate"`` ignores the pattern/style/size axes and
    instead expands each machine's full calibration-entry list (the
    exact set :func:`~repro.machines.measure.measure_table` measures)
    at ``nwords`` / ``strides``.

    ``kind="collective"`` multiplies ``machines x ops x algorithms x
    sizes x nodes x seeds``; algorithms not defined for an op are
    skipped during expansion (so one spec can mix ops cleanly), and
    ``"auto"`` defers each cell to the model-driven selector.
    """

    kind: str = "transfer"
    machines: Tuple[str, ...] = ("t3d",)
    x: Tuple[str, ...] = ("1",)
    y: Tuple[str, ...] = ("64",)
    pairs: Tuple[Tuple[str, str], ...] = ()
    styles: Tuple[str, ...] = ("buffer-packing", "chained")
    sizes: Tuple[int, ...] = (131072,)
    seeds: Tuple[int, ...] = ()
    congestion: int = -1
    rates: str = "simulated"
    model_source: str = "paper"
    duplex: str = "auto"
    nwords: int = 32768
    strides: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)
    ops: Tuple[str, ...] = ()  # collective sweeps only
    algorithms: Tuple[str, ...] = ("auto",)  # collective sweeps only
    nodes: Tuple[int, ...] = (16,)  # collective sweeps only

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SweepError` on the first structural problem."""
        if self.kind not in _KINDS:
            raise SweepError(
                f"unknown sweep kind {self.kind!r}; choose from {_KINDS}"
            )
        if not self.machines:
            raise SweepError("a sweep needs at least one machine")
        for name in self.machines:
            if name not in MACHINE_KEYS:
                raise SweepError(
                    f"unknown machine {name!r}; choose from "
                    f"{sorted(MACHINE_KEYS)}"
                )
        if self.rates not in _RATES:
            raise SweepError(f"unknown rate source {self.rates!r}")
        if self.model_source not in _RATES:
            raise SweepError(
                f"unknown model source {self.model_source!r}"
            )
        if self.duplex not in _DUPLEX:
            raise SweepError(
                f"duplex must be one of {_DUPLEX}, got {self.duplex!r}"
            )
        if self.kind == "calibrate":
            if self.nwords <= 0:
                raise SweepError("calibrate sweeps need nwords > 0")
            return
        if self.kind == "collective":
            self._validate_collective()
            return
        for style in self.styles:
            try:
                OperationStyle(style)
            except ValueError:
                raise SweepError(f"unknown operation style {style!r}")
        if not (self.pairs or (self.x and self.y)):
            raise SweepError("a transfer sweep needs pairs or x/y axes")
        for size in self.sizes:
            if size <= 0:
                raise SweepError(f"transfer sizes must be > 0, got {size}")
        if not self.sizes:
            raise SweepError("a transfer sweep needs at least one size")

    def _validate_collective(self) -> None:
        from ..runtime.collectives import ALGORITHMS, COLLECTIVE_OPS

        if not self.ops:
            raise SweepError("a collective sweep needs at least one op")
        for op in self.ops:
            if op not in COLLECTIVE_OPS:
                raise SweepError(
                    f"unknown collective op {op!r}; choose from "
                    f"{sorted(COLLECTIVE_OPS)}"
                )
        known = {"auto"}
        for algorithms in ALGORITHMS.values():
            known.update(algorithms)
        for algorithm in self.algorithms:
            if algorithm not in known:
                raise SweepError(
                    f"unknown collective algorithm {algorithm!r}; choose "
                    f"from {sorted(known)}"
                )
        if not self.algorithms:
            raise SweepError(
                "a collective sweep needs at least one algorithm"
            )
        if not self.sizes:
            raise SweepError("a collective sweep needs at least one size")
        for size in self.sizes:
            if size <= 0:
                raise SweepError(
                    f"collective sizes must be > 0, got {size}"
                )
        if not self.nodes:
            raise SweepError(
                "a collective sweep needs at least one node count"
            )
        for count in self.nodes:
            if count < 2:
                raise SweepError(
                    f"collective node counts must be >= 2, got {count}"
                )

    # -- expansion ----------------------------------------------------------

    def _pattern_pairs(self) -> Tuple[Tuple[str, str], ...]:
        if self.pairs:
            return self.pairs
        return tuple((x, y) for x in self.x for y in self.y)

    def expand(self) -> Tuple[SweepCell, ...]:
        """All cells of the grid, in canonical (declaration) order.

        This order — not worker count, shard size or completion order —
        defines the layout of the merged result.
        """
        self.validate()
        if self.kind == "calibrate":
            return self._expand_calibrate()
        if self.kind == "collective":
            return self._expand_collective()
        seeds = self.seeds if self.seeds else (NOMINAL_SEED,)
        cells = []
        for machine in self.machines:
            for x, y in self._pattern_pairs():
                for style in self.styles:
                    for size in self.sizes:
                        for seed in seeds:
                            cells.append(
                                SweepCell(
                                    kind="transfer",
                                    machine=machine,
                                    x=x,
                                    y=y,
                                    style=style,
                                    size=size,
                                    seed=seed,
                                    congestion=self.congestion,
                                    rates=self.rates,
                                    model_source=self.model_source,
                                    duplex=self.duplex,
                                )
                            )
        return tuple(cells)

    def _expand_collective(self) -> Tuple[SweepCell, ...]:
        from ..runtime.collectives import ALGORITHMS

        seeds = self.seeds if self.seeds else (NOMINAL_SEED,)
        cells = []
        for machine in self.machines:
            for op in self.ops:
                for algorithm in self.algorithms:
                    if algorithm != "auto" and algorithm not in ALGORITHMS[op]:
                        continue
                    for size in self.sizes:
                        for count in self.nodes:
                            for seed in seeds:
                                cells.append(
                                    SweepCell(
                                        kind="collective",
                                        machine=machine,
                                        x="1",
                                        y="1",
                                        style=algorithm,
                                        size=size,
                                        seed=seed,
                                        congestion=self.congestion,
                                        rates=self.rates,
                                        model_source=self.model_source,
                                        op=op,
                                        nodes=count,
                                    )
                                )
        return tuple(cells)

    def _expand_calibrate(self) -> Tuple[SweepCell, ...]:
        from ..machines.measure import calibration_entries

        from .worker import machine_by_key

        cells = []
        for name in self.machines:
            machine = machine_by_key(name)
            for letter, read, write in calibration_entries(
                machine, tuple(self.strides)
            ):
                cells.append(
                    SweepCell(
                        kind="calibrate",
                        machine=name,
                        x=str(read),
                        y=str(write),
                        style=letter,
                        size=self.nwords,
                        congestion=self.congestion,
                        rates=self.rates,
                        model_source=self.model_source,
                    )
                )
        return tuple(cells)

    @property
    def cell_count(self) -> int:
        return len(self.expand())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["pairs"] = [list(pair) for pair in self.pairs]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        fields = dict(_checked_fields(cls, payload))
        for name in ("machines", "x", "y", "styles", "strides", "ops",
                     "algorithms"):
            if name in fields:
                fields[name] = tuple(fields[name])
        for name in ("sizes", "seeds", "nodes"):
            if name in fields:
                fields[name] = tuple(int(v) for v in fields[name])
        if "pairs" in fields:
            fields["pairs"] = tuple(
                (str(x), str(y)) for x, y in fields["pairs"]
            )
        spec = cls(**fields)
        spec.validate()
        return spec


# -- presets -----------------------------------------------------------------

#: The Figure 7/8 pattern grid, in the paper's order.
GRID_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("1", "1"),
    ("1", "64"),
    ("64", "1"),
    ("1", "w"),
    ("w", "1"),
    ("w", "w"),
)

#: Message size of the paper's "measured" points (128 KiB).
GRID_BYTES = 131072


def figure7_spec() -> SweepSpec:
    """The T3D packing-vs-chained grid behind Figure 7."""
    return SweepSpec(
        kind="transfer",
        machines=("t3d",),
        pairs=GRID_PAIRS,
        styles=tuple(style.value for style in OperationStyle),
        sizes=(GRID_BYTES,),
    )


def figure8_spec() -> SweepSpec:
    """The Paragon packing-vs-chained grid behind Figure 8."""
    return dataclasses.replace(figure7_spec(), machines=("paragon",))


def calibration_spec(
    machine: str,
    nwords: int = 32768,
    strides: Tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    congestion: int = -1,
) -> SweepSpec:
    """The full Section-4 calibration grid for one machine."""
    return SweepSpec(
        kind="calibrate",
        machines=(machine,),
        congestion=congestion,
        nwords=nwords,
        strides=tuple(strides),
    )


def collectives_spec(
    machines: Tuple[str, ...] = ("cluster", "xe"),
    nodes: Tuple[int, ...] = (16,),
    seeds: Tuple[int, ...] = (),
) -> SweepSpec:
    """A collective grid on the post-1994 machines.

    Every op at a latency-bound and a bandwidth-bound payload, both
    with the model-driven selector ("auto") and with every concrete
    algorithm, so the sweep records the selector's choice *and* the
    ground it stood on.  Paper rates keep the grid fast enough for the
    CI smoke job.
    """
    from ..runtime.collectives import ALGORITHMS, COLLECTIVE_OPS

    algorithms = ["auto"]
    for per_op in ALGORITHMS.values():
        for algorithm in per_op:
            if algorithm not in algorithms:
                algorithms.append(algorithm)
    return SweepSpec(
        kind="collective",
        machines=tuple(machines),
        ops=COLLECTIVE_OPS,
        algorithms=tuple(algorithms),
        sizes=(1024, 1048576),
        nodes=tuple(nodes),
        seeds=tuple(seeds),
        rates="paper",
    )
