"""Per-process sweep execution: batched, memoized, deterministic.

Each worker process executes whole shards.  The win over the naive
per-cell loop is **batching**: cells of one shard (and of later shards
the same process picks up) share a worker-local memo of machines,
calibration tables, runtimes and node harnesses, so the expensive
shared work — deriving a machine's simulated calibration table — is
paid once per process instead of once per cell.  On top of that the
workers share the on-disk calibration cache (:mod:`repro.caching`),
so across processes each distinct table is simulated at most once per
cache-cold run.

Nothing here may affect *values*: every memoized object is a pure
function of its key, so batched, unbatched, in-process and pooled
execution produce bit-identical rows (asserted by
``tests/properties/test_sweep_properties.py``).

The module is import-safe for both ``fork`` and ``spawn`` start
methods: all state lives in module-level dictionaries rebuilt lazily,
and :func:`init_worker` (the pool initializer) clears them and pins
the relevant environment so a spawned worker matches its parent.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..caching import CACHE_DIR_ENV, CACHE_ENV
from ..core.operations import OperationStyle
from ..core.patterns import AccessPattern
from ..memsim.node import ENGINE_ENV
from .spec import NOMINAL_SEED, SweepCell, SweepError

__all__ = [
    "init_worker",
    "machine_by_key",
    "pinned_environment",
    "reset_memos",
    "run_shard",
]

#: Environment variables a worker must share with its parent for the
#: run to be reproducible (engine selection and cache configuration).
_PINNED_ENV = (ENGINE_ENV, CACHE_ENV, CACHE_DIR_ENV)

#: Set when :func:`init_worker` failed in this process.  The
#: initializer itself must never raise: ``concurrent.futures`` would
#: mark the pool broken and every child would dump a raw traceback to
#: the parent's stderr.  Instead the failure is recorded here and
#: :func:`run_shard` surfaces it as a picklable :class:`SweepError`,
#: which the runner and CLI report as the standard one-line error.
_INIT_ERROR: Optional[str] = None

# Worker-local memos (pure caches; see module docstring).
_machines: Dict[str, Any] = {}
_models: Dict[Tuple[str, str], Any] = {}
_runtimes: Dict[Tuple[str, str, str], Any] = {}
_tables: Dict[Tuple[str, str], Any] = {}
_nodes: Dict[Tuple[str, int], Any] = {}


def machine_by_key(name: str):
    """Resolve a registry key ("t3d") to a memoized Machine."""
    if name not in _machines:
        from ..machines.registry import MACHINE_FACTORIES

        if name not in MACHINE_FACTORIES:
            raise SweepError(f"unknown machine {name!r}")
        _machines[name] = MACHINE_FACTORIES[name]()
    return _machines[name]


def reset_memos() -> None:
    """Drop every worker-local memo (benchmarks call this for honesty:
    a forked worker must not inherit tables its parent already built)."""
    _machines.clear()
    _models.clear()
    _runtimes.clear()
    _tables.clear()
    _nodes.clear()


def pinned_environment() -> Dict[str, str]:
    """The parent-side environment snapshot shipped to workers."""
    return {
        name: os.environ[name] for name in _PINNED_ENV if name in os.environ
    }


def init_worker(environment: Dict[str, str]) -> None:
    """Pool initializer: pin the environment, start from cold memos.

    Never raises — a raising pool initializer breaks the whole pool
    and spews per-child tracebacks.  A failure is recorded in
    :data:`_INIT_ERROR` and reported by the first :func:`run_shard`
    call as a one-line :class:`SweepError` instead.
    """
    global _INIT_ERROR
    _INIT_ERROR = None
    try:
        for name in _PINNED_ENV:
            os.environ.pop(name, None)
        os.environ.update(environment)
        reset_memos()
    except Exception as exc:
        _INIT_ERROR = f"{type(exc).__name__}: {exc}"


# -- shared building blocks ---------------------------------------------------


def _pattern(key: str) -> AccessPattern:
    return AccessPattern.parse(key)


def _table(machine_name: str, rates: str):
    key = (machine_name, rates)
    if key not in _tables:
        machine = machine_by_key(machine_name)
        if rates == "paper":
            _tables[key] = machine.paper_table()
        else:
            _tables[key] = machine.simulated_table()
    return _tables[key]


def _runtime(machine_name: str, style: str, rates: str):
    """A memoized CommRuntime under measure_q's library conventions."""
    key = (machine_name, style, rates)
    if key not in _runtimes:
        from ..runtime.engine import CommRuntime
        from ..runtime.libraries import lowlevel_profile, packing_profile

        machine = machine_by_key(machine_name)
        library = (
            packing_profile()
            if OperationStyle(style) is OperationStyle.BUFFER_PACKING
            else lowlevel_profile()
        )
        _runtimes[key] = CommRuntime(
            machine,
            library=library,
            rates=rates,
            table=_table(machine_name, rates),
        )
    return _runtimes[key]


def _model(machine_name: str, source: str):
    key = (machine_name, source)
    if key not in _models:
        _models[key] = machine_by_key(machine_name).model(source=source)
    return _models[key]


def _node(machine_name: str, nwords: int):
    key = (machine_name, nwords)
    if key not in _nodes:
        _nodes[key] = machine_by_key(machine_name).node_memory(nwords=nwords)
    return _nodes[key]


# -- cell execution -----------------------------------------------------------


def run_cell(cell: SweepCell) -> Dict[str, Any]:
    """Execute one cell and return its JSON-plain result row."""
    if cell.kind == "calibrate":
        return _run_calibrate_cell(cell)
    if cell.kind == "transfer":
        return _run_transfer_cell(cell)
    if cell.kind == "collective":
        return _run_collective_cell(cell)
    raise SweepError(f"unknown cell kind {cell.kind!r}")


def _run_transfer_cell(cell: SweepCell) -> Dict[str, Any]:
    machine = machine_by_key(cell.machine)
    x = _pattern(cell.x)
    y = _pattern(cell.y)
    style = OperationStyle(cell.style)
    model_mbps = _model(cell.machine, cell.model_source).estimate(
        x, y, style
    ).mbps
    runtime = _runtime(cell.machine, cell.style, cell.rates)
    congestion = None if cell.congestion < 0 else cell.congestion
    if cell.duplex == "auto":
        duplex = not machine.quirks.measures_simplex
    else:
        duplex = cell.duplex == "on"

    if cell.seed == NOMINAL_SEED:
        sample = runtime.transfer(
            x, y, cell.size, style=style, congestion=congestion,
            duplex=duplex,
        )
    else:
        from ..faults import FaultPlan, injecting

        with injecting(FaultPlan.chaos(cell.seed)):
            sample = runtime.transfer(
                x, y, cell.size, style=style, congestion=congestion,
                duplex=duplex,
            )
    row: Dict[str, Any] = {
        "id": cell.cell_id,
        "model_mbps": model_mbps,
        "mbps": sample.mbps,
        "ns": sample.ns,
        "style": sample.style.value,
        "retries": sample.retries,
    }
    if sample.degraded is not None:
        row["degraded"] = sample.degraded.to_dict()
    return row


def _run_collective_cell(cell: SweepCell) -> Dict[str, Any]:
    from ..runtime.collectives import run_collective

    machine = machine_by_key(cell.machine)
    if cell.style == "auto":
        from ..compiler.advisor import choose_algorithm

        advice = choose_algorithm(cell.op, machine, cell.size, cell.nodes)
        algorithm = advice.algorithm
    else:
        algorithm = cell.style
    runtime = _runtime(cell.machine, "chained", cell.rates)

    def execute():
        return run_collective(
            runtime, cell.op, algorithm, cell.nodes, cell.size,
            x=cell.x, y=cell.y,
        )

    if cell.seed == NOMINAL_SEED:
        result = execute()
    else:
        from ..faults import FaultPlan, injecting

        with injecting(FaultPlan.chaos(cell.seed)):
            result = execute()
    return {
        "id": cell.cell_id,
        "op": cell.op,
        "algorithm": result.algorithm,
        "nodes": result.nodes,
        "rounds": len(result.rounds),
        "ns": result.total_ns,
        "mbps": result.per_node_mbps,
        "hierarchical": result.hierarchical,
    }


def _run_calibrate_cell(cell: SweepCell) -> Dict[str, Any]:
    from ..machines.measure import measure_entry

    machine = machine_by_key(cell.machine)
    congestion = None if cell.congestion < 0 else cell.congestion
    rate = measure_entry(
        machine,
        _node(cell.machine, cell.size),
        (cell.style, cell.x, cell.y),
        congestion=congestion,
    )
    return {"id": cell.cell_id, "mbps": rate}


def run_shard(
    payload: Tuple[Any, ...],
) -> Tuple[int, List[Tuple[int, Dict[str, Any]]]]:
    """Execute one shard: ``(shard_index, ((cell_index, cell_dict), ...))``.

    An optional third payload element selects the execution engine:
    ``"cell"`` (default) runs the scalar per-cell loop, ``"batch"``
    routes the shard through the vectorized engine
    (:func:`repro.sweep.batch.run_cells_batched`) — bit-identical rows
    either way.

    Returns ``(shard_index, [(cell_index, row), ...])``.  Cell dicts
    (not :class:`SweepCell` objects) cross the process boundary so a
    spawned worker never depends on pickling implementation details.
    A failing cell aborts the whole shard with a :class:`SweepError`
    naming it — a silently absent cell must never reach the merge.
    """
    shard_index, indexed_cells = payload[0], payload[1]
    engine = payload[2] if len(payload) > 2 else "cell"
    if _INIT_ERROR is not None:
        raise SweepError(
            f"sweep worker initialization failed: {_INIT_ERROR}"
        )
    if engine == "batch":
        from .batch import run_cells_batched

        cells = [
            SweepCell.from_dict(cell_dict)
            for __, cell_dict in indexed_cells
        ]
        report = run_cells_batched(cells)
        return shard_index, [
            (cell_index, row)
            for (cell_index, __), row in zip(indexed_cells, report.rows)
        ]
    if engine != "cell":
        raise SweepError(f"unknown sweep engine {engine!r}")
    rows: List[Tuple[int, Dict[str, Any]]] = []
    for cell_index, cell_dict in indexed_cells:
        cell = SweepCell.from_dict(cell_dict)
        try:
            rows.append((cell_index, run_cell(cell)))
        except SweepError:
            raise
        except Exception as exc:
            raise SweepError(
                f"cell {cell.cell_id!r} failed: {exc}"
            ) from exc
    return shard_index, rows
