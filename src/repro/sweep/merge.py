"""Deterministic merge of sharded sweep results.

The reproducibility obligation: a sweep's merged result must be
**bit-identical** regardless of worker count, shard size and shard
completion order.  The merge therefore never appends in arrival
order — every row is placed at its cell's canonical index (the
position in ``spec.expand()``), and the merge fails loudly on missing
or duplicated cells instead of papering over a broken shard.

Wall-clock facts about a run (worker count, elapsed time, shard
sizes) are interesting but nondeterministic, so they live in
``SweepResult.stats`` which is deliberately excluded from the
canonical payload (:meth:`SweepResult.to_dict`) and the digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spec import SweepCell, SweepError, SweepSpec

__all__ = ["SweepResult", "merge_rows", "RESULT_SCHEMA"]

#: Schema tag embedded in every serialized sweep result.
RESULT_SCHEMA = "repro-sweep-result/1"


@dataclass(frozen=True)
class SweepResult:
    """A fully merged sweep: one row per cell, in canonical order.

    Attributes:
        spec: The grid that was swept.
        rows: One JSON-plain mapping per cell, aligned index-for-index
            with ``spec.expand()``.
        stats: Nondeterministic run facts (workers, wall seconds,
            shard count); never part of the canonical payload.
    """

    spec: SweepSpec
    rows: Tuple[Dict[str, Any], ...]
    stats: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def cells(self) -> Tuple[SweepCell, ...]:
        return self.spec.expand()

    def __len__(self) -> int:
        return len(self.rows)

    def row(self, cell_id: str) -> Dict[str, Any]:
        """The row for one cell id (:class:`KeyError` if absent)."""
        for cell, row in zip(self.cells, self.rows):
            if cell.cell_id == cell_id:
                return row
        raise KeyError(cell_id)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical payload: spec + rows, nothing run-dependent."""
        return {
            "schema": RESULT_SCHEMA,
            "spec": self.spec.to_dict(),
            "results": list(self.rows),
        }

    def canonical_json(self) -> str:
        """Key-sorted, separator-pinned JSON of the canonical payload.

        Two runs of the same spec are *bit-identical* exactly when
        these strings are equal — this is the representation the
        determinism tests and the digest are defined over.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical_json` (cheap equality witness)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepResult":
        if payload.get("schema") != RESULT_SCHEMA:
            raise SweepError(
                f"expected schema {RESULT_SCHEMA!r}, "
                f"got {payload.get('schema')!r}"
            )
        spec = SweepSpec.from_dict(payload["spec"])
        rows = tuple(payload["results"])
        if len(rows) != spec.cell_count:
            raise SweepError(
                f"payload has {len(rows)} rows for {spec.cell_count} cells"
            )
        return cls(spec=spec, rows=rows)


def merge_rows(
    cells: Sequence[SweepCell],
    indexed_rows: Iterable[Tuple[int, Dict[str, Any]]],
) -> Tuple[Dict[str, Any], ...]:
    """Place ``(cell_index, row)`` pairs into canonical cell order.

    Raises :class:`SweepError` on an out-of-range index, a duplicated
    cell, or a cell no shard reported — any of which means the planner
    or a worker misbehaved and the merged grid would be silently wrong.
    """
    slots: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    for index, row in indexed_rows:
        if not 0 <= index < len(slots):
            raise SweepError(
                f"shard reported cell index {index} outside the "
                f"{len(slots)}-cell grid"
            )
        if slots[index] is not None:
            raise SweepError(
                f"cell {cells[index].cell_id!r} reported twice; "
                "overlapping shards"
            )
        slots[index] = row
    missing = [
        cells[i].cell_id for i, row in enumerate(slots) if row is None
    ]
    if missing:
        preview = ", ".join(missing[:5])
        raise SweepError(
            f"{len(missing)} cell(s) never reported (first: {preview})"
        )
    return tuple(slots)  # type: ignore[arg-type]
