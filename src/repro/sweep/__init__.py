"""Sharded parallel sweep engine with deterministic merge.

Declare a parameter grid as a :class:`SweepSpec`, execute it with
:func:`run_sweep` on any number of worker processes, and get a
:class:`SweepResult` that is bit-identical regardless of worker count,
shard size or completion order.  See ``docs/SWEEPS.md``.
"""

from .loadcurve import CURVE_SCHEMA, run_load_curve
from .merge import RESULT_SCHEMA, SweepResult, merge_rows
from .plan import Shard, default_shard_size, plan_shards
from .runner import run_serial, run_sweep
from .spec import (
    GRID_BYTES,
    GRID_PAIRS,
    MACHINE_KEYS,
    NOMINAL_SEED,
    SweepCell,
    SweepError,
    SweepSpec,
    calibration_spec,
    collectives_spec,
    figure7_spec,
    figure8_spec,
)

__all__ = [
    "CURVE_SCHEMA",
    "GRID_BYTES",
    "GRID_PAIRS",
    "MACHINE_KEYS",
    "NOMINAL_SEED",
    "RESULT_SCHEMA",
    "Shard",
    "SweepCell",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "calibration_spec",
    "collectives_spec",
    "default_shard_size",
    "figure7_spec",
    "figure8_spec",
    "merge_rows",
    "plan_shards",
    "run_load_curve",
    "run_serial",
    "run_sweep",
]
