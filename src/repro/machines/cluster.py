"""A hierarchical cluster of multi-core nodes (two-rung machine).

The paper's central claim is that memory-system rungs *compose*: a
transfer's throughput is the bottleneck of the rungs it crosses.  A
cluster of k-core SMP nodes is the natural stress test — it has two
qualitatively different paths (PAPERS.md: "A Model for Communication
in Clusters of Multi-core Machines"):

* **intra-node**: two cores share one memory system, so a transfer
  between them is a shared-memory copy — exactly the paper's ``xQy``
  copy rung, with no network stage at all;
* **inter-node**: the familiar ladder (local access, NIC injection,
  wire, NIC ejection, remote access), except that the node's k cores
  share *one* NIC, so when several cores communicate off-node at once
  the endpoint rate divides between them (the *NIC contention
  factor*).

:class:`ClusterMachine` extends :class:`~repro.machines.base.Machine`
with the core count, the NIC port count, and pricing helpers for both
effects; the collective runtime (:mod:`repro.runtime.collectives`)
uses them to run hierarchy-aware algorithms (intra-node leaders, then
an inter-node phase).

The concrete numbers are *synthetic anchors* for a mid-1990s
commodity-SMP cluster (Pentium-class cores on a shared bus, a
Myrinet-class NIC with a DMA engine): self-consistent with the
modelling machinery and pinned by goldens, but not measurements of any
single real machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.calibration import ThroughputTable
from ..core.errors import ModelError
from ..core.operations import CommCapabilities, DepositSupport
from ..core.transfers import TransferKind
from ..memsim.config import (
    CacheConfig,
    DepositConfig,
    DMAConfig,
    DRAMConfig,
    NIConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from ..netsim.network import NetworkConfig
from ..netsim.topology import Mesh
from .base import Machine, RuntimeQuirks

__all__ = ["ClusterMachine", "cluster", "cluster_node_config"]


@dataclass
class ClusterMachine(Machine):
    """A machine whose nodes hold several cores behind one NIC.

    Attributes:
        cores_per_node: Cores sharing each node's memory system + NIC.
        nic_ports: Independent injection ports on the node's NIC; the
            contention factor is active cores per port.
    """

    cores_per_node: int = 4
    nic_ports: int = 1

    # -- hierarchy pricing ---------------------------------------------------

    def nic_contention(self, active_cores: int) -> float:
        """How many ways the NIC divides when ``active_cores`` send off-node.

        1.0 when a single core (per port) drives the NIC; k/ports when
        all k cores push traffic through it at once.
        """
        active = max(1, min(active_cores, self.cores_per_node))
        return max(1.0, active / self.nic_ports)

    def intra_node_mbps(self, concurrent: int = 1) -> float:
        """Shared-memory copy rate between two cores of one node (MB/s).

        The intra-node rung *is* the contiguous copy rung ``|1Q1|``:
        both cores sit on the same memory system, so a core-to-core
        transfer is one memory copy.  ``concurrent`` simultaneous
        copies interleave on the shared bus and split its bandwidth.
        """
        base = self.published.get(TransferKind.COPY, "1", "1")
        assert base is not None, "cluster table must anchor |1Q1|"
        return base / max(1, concurrent)

    def intra_node_ns(self, nbytes: int, concurrent: int = 1) -> float:
        """Time for one intra-node copy of ``nbytes`` (nanoseconds)."""
        if nbytes <= 0:
            return 0.0
        return nbytes * 1000.0 / self.intra_node_mbps(concurrent)


def cluster_node_config() -> NodeConfig:
    """Simulator parameters for one cluster node (a bus-based SMP).

    A faster clock and a merging write buffer give the contiguous copy
    a healthy rate, but the single shared bus makes strided traffic
    expensive (no banked DRAM) — the classic SMP shape.
    """
    return NodeConfig(
        name="cluster-node",
        processor=ProcessorConfig(
            clock_mhz=200.0,
            load_issue_cycles=1.0,
            store_issue_cycles=1.0,
            loop_overhead_cycles=1.0,
            index_extra_cycles=1.0,
            pipelined_load_depth=0,
        ),
        cache=CacheConfig(
            size_bytes=16384,
            line_bytes=32,
            associativity=2,
            hit_ns=5.0,
            write_policy="back",
        ),
        dram=DRAMConfig(
            page_bytes=1024,
            read_hit_ns=110.0,
            read_miss_ns=160.0,
            read_occupancy_hit_ns=60.0,
            read_occupancy_miss_ns=95.0,
            write_hit_ns=60.0,
            write_miss_ns=150.0,
            burst_word_ns=12.0,
        ),
        write_buffer=WriteBufferConfig(depth=4, merge=True),
        read_ahead=ReadAheadConfig(enabled=False),
        ni=NIConfig(store_ns=90.0, load_ns=70.0, fifo_mbps=132.0),
        dma=DMAConfig(
            present=True,
            word_ns=35.0,
            setup_ns=3000.0,
            page_bytes=4096,
            page_kick_ns=400.0,
        ),
        deposit=DepositConfig(
            patterns="contiguous", contiguous_word_ns=30.0, pair_word_ns=120.0
        ),
    )


def cluster_published_table() -> ThroughputTable:
    """Synthetic calibration anchors for the cluster node.

    Same entry shape as the Paragon's published table (both machines
    expose DMA sends, coprocessor receives and contiguous deposits) so
    every operation style the builders emit has a rate to stand on.
    """
    table = ThroughputTable("Commodity cluster (synthetic)")
    copy = TransferKind.COPY
    table.set(copy, "1", "1", 180.0)
    table.set(copy, "1", 64, 58.0)
    table.set(copy, 64, "1", 52.0)
    table.set(copy, "1", "w", 44.0)
    table.set(copy, "w", "1", 47.0)
    table.set(copy, "1", 16, 72.0)
    table.set(copy, 16, "1", 63.0)

    send = TransferKind.LOAD_SEND
    table.set(send, "1", "0", 105.0)
    table.set(send, 64, "0", 44.0)
    table.set(send, "w", "0", 39.0)
    table.set(send, 16, "0", 52.0)

    table.set(TransferKind.FETCH_SEND, "1", "0", 125.0)

    receive = TransferKind.RECEIVE_STORE
    table.set(receive, "0", "1", 92.0)
    table.set(receive, "0", 64, 41.0)
    table.set(receive, "0", "w", 39.0)
    table.set(receive, "0", 16, 45.0)

    table.set(TransferKind.RECEIVE_DEPOSIT, "0", "1", 125.0)
    return table


#: Synthetic network anchors (Myrinet-class): MB/s by congestion.
CLUSTER_PUBLISHED_NETWORK = {
    "data": {1: 120.0, 2: 62.0, 4: 31.0},
    "adp": {1: 60.0, 2: 31.0, 4: 16.0},
}


def _cluster_fabric(n_nodes: int) -> Mesh:
    """A near-square 2-D switch fabric for ``n_nodes`` cluster nodes."""
    best = (n_nodes, (n_nodes, 1))
    for rows in range(1, n_nodes + 1):
        if n_nodes % rows:
            continue
        cols = n_nodes // rows
        spread = abs(rows - cols)
        if spread < best[0]:
            best = (spread, (rows, cols))
    return Mesh(*best[1])


def cluster(cores_per_node: int = 4) -> ClusterMachine:
    """A hierarchical commodity cluster, ready for modelling.

    Args:
        cores_per_node: Cores sharing each node's memory system + NIC.
    """
    if cores_per_node < 1:
        raise ModelError(
            f"a cluster node needs >= 1 core, got {cores_per_node}"
        )
    return ClusterMachine(
        name=f"Commodity cluster ({cores_per_node}-core nodes)",
        node=cluster_node_config(),
        network=NetworkConfig(
            raw_link_mbps=160.0,
            payload_data_mbps=132.0,
            payload_adp_mbps=66.0,
            port_sharing=1,
            default_congestion=2,
        ),
        topology_factory=_cluster_fabric,
        capabilities=CommCapabilities(
            deposit=DepositSupport.CONTIGUOUS,
            dma_send=True,
            coprocessor_receive=True,
            pack_even_contiguous=True,
            overlap_unpack=False,
        ),
        published=cluster_published_table(),
        published_network=CLUSTER_PUBLISHED_NETWORK,
        quirks=RuntimeQuirks(
            bus_interleave_scale=1.6,
            runtime_efficiency=0.85,
        ),
        index_run=2,
        cores_per_node=cores_per_node,
    )
