"""Deriving calibration tables by measurement (Section 4).

The paper obtains its throughput figures by timing simple experiments
on live machines.  :func:`measure_table` is the equivalent here: it
runs every basic transfer the machine supports on the memory-system
simulator, takes the network rates from the network model, and returns
a ready-to-use :class:`~repro.core.calibration.ThroughputTable`.

The measurement grid is exposed as data: :func:`calibration_entries`
enumerates the ``(letter, read, write)`` entries a machine supports and
:func:`measure_entry` evaluates one of them, so the sweep engine
(:mod:`repro.sweep`) can shard a calibration across worker processes.
``measure_table(workers=4)`` routes through that path for built-in
machines; the assembled table is identical to the serial one.

Tables are cached through :mod:`repro.caching` — an in-process LRU
plus an on-disk layer — keyed by a content hash of everything the
measurement depends on, because simulating the full grid of long
streams is the slow part of the library.  Pass ``use_cache=False`` (or
run ``python -m repro calibrate --no-cache``) to force remeasurement.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

from ..caching import default_cache
from ..core.batch import BATCH_VERSION
from ..core.calibration import ThroughputTable
from ..core.errors import CalibrationError
from ..core.operations import DepositSupport
from ..core.patterns import CONTIGUOUS, INDEXED, AccessPattern, strided
from ..core.transfers import TransferKind
from ..memsim.engine import ENGINE_VERSION
from ..memsim.fastpath import FASTPATH_VERSION
from ..memsim.node import (
    DEFAULT_MEASURE_WORDS,
    ENGINE_ENV,
    NodeMemorySystem,
)
from ..netsim.network import FramingMode
from .base import Machine

__all__ = [
    "measure_table",
    "measurement_cache_key",
    "calibration_entries",
    "measure_entry",
    "measure_entries",
    "CalEntry",
    "DEFAULT_STRIDES",
    "MEASURE_VERSION",
]

#: Stride anchors measured by default; enough for log-interpolation to
#: track the Figure 4 curves.
DEFAULT_STRIDES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)

#: Semantic version of the measurement procedure itself.  Bump when
#: the entry grid or per-entry evaluation changes meaning, so sweep
#: workers sharing the disk cache can never mix tables produced by a
#: different measurement schema into one merged result.
MEASURE_VERSION = "2"

#: One calibration entry: (kind letter, read key, write key) in table
#: notation — e.g. ``("C", "1", 64)`` is the strided-store copy 1C64,
#: ``("Nd", "0", "0")`` the data-framed network rate.
CalEntry = Tuple[str, Union[str, int], Union[str, int]]

_KIND_BY_LETTER = {
    "C": TransferKind.COPY,
    "S": TransferKind.LOAD_SEND,
    "F": TransferKind.FETCH_SEND,
    "R": TransferKind.RECEIVE_STORE,
    "D": TransferKind.RECEIVE_DEPOSIT,
    "Nd": TransferKind.NETWORK_DATA,
    "Nadp": TransferKind.NETWORK_ADP,
}


def _pattern(key: Union[str, int]) -> AccessPattern:
    """Table key ("1"/"w"/stride) -> the access pattern it measures."""
    if key == "1":
        return CONTIGUOUS
    if key == "w":
        return INDEXED
    return strided(int(key))


def calibration_entries(
    machine: Machine, strides: Tuple[int, ...] = DEFAULT_STRIDES
) -> Tuple[CalEntry, ...]:
    """Every entry :func:`measure_table` measures for this machine.

    The list is a pure function of the machine's capabilities and the
    stride anchors — the sharded and serial paths measure exactly the
    same grid.
    """
    entries: list = [("C", "1", "1"), ("C", "1", "w"), ("C", "w", "1")]
    for s in strides:
        entries.append(("C", "1", s))
        entries.append(("C", s, "1"))

    entries.append(("S", "1", "0"))
    entries.append(("S", "w", "0"))
    for s in strides:
        entries.append(("S", s, "0"))
    if machine.node.dma.present:
        entries.append(("F", "1", "0"))

    deposit_support = machine.capabilities.deposit
    if deposit_support is not DepositSupport.NONE:
        entries.append(("D", "0", "1"))
        if deposit_support is DepositSupport.ANY:
            entries.append(("D", "0", "w"))
            for s in strides:
                entries.append(("D", "0", s))
    if machine.capabilities.coprocessor_receive:
        entries.append(("R", "0", "1"))
        entries.append(("R", "0", "w"))
        for s in strides:
            entries.append(("R", "0", s))

    entries.append(("Nd", "0", "0"))
    entries.append(("Nadp", "0", "0"))
    return tuple(entries)


def measure_entry(
    machine: Machine,
    node: NodeMemorySystem,
    entry: CalEntry,
    congestion: Optional[int] = None,
) -> float:
    """Measure one calibration entry (MB/s)."""
    letter, read, write = entry
    if letter == "C":
        return node.measure_copy(_pattern(read), _pattern(write))
    if letter == "S":
        return node.measure_load_send(_pattern(read))
    if letter == "F":
        return node.measure_fetch_send()
    if letter == "R":
        return node.measure_receive_store(_pattern(write))
    if letter == "D":
        return node.measure_deposit(_pattern(write))
    if letter in ("Nd", "Nadp"):
        if congestion is None:
            congestion = machine.network.default_congestion
        mode = (
            FramingMode.DATA_ONLY
            if letter == "Nd"
            else FramingMode.ADDRESS_DATA_PAIRS
        )
        return machine.network_model().rate(mode, congestion=congestion)
    raise CalibrationError(f"unknown calibration entry kind {letter!r}")


def measure_entries(
    machine: Machine,
    node: NodeMemorySystem,
    entries: Tuple[CalEntry, ...],
    congestion: Optional[int] = None,
) -> list:
    """Measure a batch of calibration entries against one node harness.

    This is the batched-query form of :func:`measure_entry`: all
    entries share the harness (and therefore its engine-keyed kernel
    memo — see :class:`~repro.memsim.node.NodeMemorySystem`), so
    duplicate entries simulate once.  Values are bit-identical to
    calling :func:`measure_entry` per entry.
    """
    return [
        measure_entry(machine, node, entry, congestion=congestion)
        for entry in entries
    ]


def _table_key(key: Union[str, int]) -> Union[str, int]:
    """Normalize a (possibly stringified) entry key for table storage."""
    if isinstance(key, str) and key not in ("0", "1", "w"):
        return int(key)
    return key


def measurement_cache_key(
    machine: Machine,
    congestion: int,
    nwords: int,
    strides: Tuple[int, ...],
    occupancy_scale: float = 1.0,
) -> str:
    """Content hash identifying one calibration measurement exactly.

    Everything the resulting table depends on participates: the full
    node config, the network config and congestion point, stream
    parameters, the engine selection (a forced scalar oracle may differ
    from the fast path in the last float ulp) and the engines' semantic
    versions, so editing timing rules orphans stale disk entries.

    Two inputs exist specifically so concurrent sweep workers sharing
    the disk cache can never mix stale entries: the machine's
    *capabilities* (they choose which receives get measured — two
    machine variants differing only there must not collide) and
    :data:`MEASURE_VERSION` (bumped whenever the measurement procedure
    itself changes meaning).

    :data:`~repro.core.batch.BATCH_VERSION` participates for the same
    reason: the batched engine and the scalar oracle share this cache
    (their tables are bit-identical by construction), so a change to
    the batching semantics must orphan every entry either of them
    wrote rather than let results produced under different batching
    rules collide.
    """
    from ..caching import content_key

    return content_key(
        "calibration-table",
        MEASURE_VERSION,
        ENGINE_VERSION,
        FASTPATH_VERSION,
        BATCH_VERSION,
        os.environ.get(ENGINE_ENV) or "auto",
        machine.name,
        machine.node,
        machine.network,
        machine.capabilities,
        machine.index_run,
        congestion,
        nwords,
        strides,
        occupancy_scale,
    )


def _measure_serial(
    table: ThroughputTable,
    machine: Machine,
    congestion: int,
    nwords: int,
    strides: Tuple[int, ...],
) -> None:
    node = machine.node_memory(nwords=nwords)
    for entry in calibration_entries(machine, strides):
        letter, read, write = entry
        table.set(
            _KIND_BY_LETTER[letter],
            _table_key(read),
            _table_key(write),
            measure_entry(machine, node, entry, congestion=congestion),
        )


def _measure_sharded(
    table: ThroughputTable,
    machine: Machine,
    congestion: int,
    nwords: int,
    strides: Tuple[int, ...],
    workers: int,
    shard_size: Optional[int],
    engine: str = "cell",
) -> bool:
    """Measure via the sweep engine; False if the machine isn't
    a registry built-in (sweep cells name machines by key)."""
    from ..sweep import MACHINE_KEYS, calibration_spec, run_sweep
    from ..sweep.worker import machine_by_key

    # Workers rebuild machines from registry keys, so the sharded path
    # only applies when `machine` is equivalent to a registry built-in.
    # "Equivalent" is judged by the measurement cache key — the exact
    # set of inputs the resulting table depends on — so renamed or
    # ablated variants fall back to the serial path.
    want = measurement_cache_key(machine, congestion, nwords, strides)
    key = None
    for candidate in MACHINE_KEYS:
        have = measurement_cache_key(
            machine_by_key(candidate), congestion, nwords, strides
        )
        if have == want:
            key = candidate
            break
    if key is None:
        return False
    spec = calibration_spec(
        key, nwords=nwords, strides=strides, congestion=congestion
    )
    result = run_sweep(
        spec, workers=workers, shard_size=shard_size, engine=engine
    )
    for cell, row in zip(result.cells, result.rows):
        table.set(
            _KIND_BY_LETTER[cell.style],
            _table_key(cell.x),
            _table_key(cell.y),
            row["mbps"],
        )
    return True


def measure_table(
    machine: Machine,
    congestion: Optional[int] = None,
    nwords: int = DEFAULT_MEASURE_WORDS,
    strides: Tuple[int, ...] = DEFAULT_STRIDES,
    use_cache: bool = True,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    engine: str = "cell",
) -> ThroughputTable:
    """Measure a full calibration table on the simulators.

    Args:
        machine: The machine to measure.
        congestion: Network operating point for the ``Nd`` / ``Nadp``
            entries; defaults to the machine's typical congestion.
        nwords: Stream length per measurement.
        strides: Stride anchors to measure on both sides of copies,
            sends and receives.
        use_cache: Consult/populate the calibration cache
            (:mod:`repro.caching`).  ``False`` always remeasures and
            leaves the cache untouched.
        workers: With a value > 1, shard the measurement grid across
            worker processes via :mod:`repro.sweep` (built-in machines
            only; variants fall back to the serial path).  The table is
            identical to the serial one either way.
        shard_size: Cells per shard for the parallel path.
        engine: ``"batch"`` routes the grid through the sweep engine's
            batched strategy (:mod:`repro.sweep.batch`) — built-in
            machines only, like ``workers`` — instead of the scalar
            per-entry loop.  The table is bit-identical either way,
            which is why the cache key does not depend on the engine
            (only on :data:`~repro.core.batch.BATCH_VERSION`).
    """
    if congestion is None:
        congestion = machine.network.default_congestion
    strides = tuple(strides)
    key = measurement_cache_key(machine, congestion, nwords, strides)
    if use_cache:
        cached = default_cache().lookup(key)
        if cached is not None:
            return cached
    table = ThroughputTable(
        f"{machine.name} (simulated, congestion {congestion})"
    )
    sharded = False
    if (workers is not None and workers > 1) or engine == "batch":
        sharded = _measure_sharded(
            table,
            machine,
            congestion,
            nwords,
            strides,
            workers or 1,
            shard_size,
            engine,
        )
    if not sharded:
        _measure_serial(table, machine, congestion, nwords, strides)
    if use_cache:
        default_cache().store(key, table)
    return table
