"""Deriving calibration tables by measurement (Section 4).

The paper obtains its throughput figures by timing simple experiments
on live machines.  :func:`measure_table` is the equivalent here: it
runs every basic transfer the machine supports on the memory-system
simulator, takes the network rates from the network model, and returns
a ready-to-use :class:`~repro.core.calibration.ThroughputTable`.

Tables are cached through :mod:`repro.caching` — an in-process LRU
plus an on-disk layer — keyed by a content hash of everything the
measurement depends on, because simulating the full grid of long
streams is the slow part of the library.  Pass ``use_cache=False`` (or
run ``python -m repro calibrate --no-cache``) to force remeasurement.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from ..caching import default_cache
from ..core.calibration import ThroughputTable
from ..core.operations import DepositSupport
from ..core.patterns import CONTIGUOUS, INDEXED, strided
from ..core.transfers import TransferKind
from ..memsim.engine import ENGINE_VERSION
from ..memsim.fastpath import FASTPATH_VERSION
from ..memsim.node import DEFAULT_MEASURE_WORDS, ENGINE_ENV, NodeMemorySystem
from ..netsim.network import FramingMode
from .base import Machine

__all__ = ["measure_table", "measurement_cache_key", "DEFAULT_STRIDES"]

#: Stride anchors measured by default; enough for log-interpolation to
#: track the Figure 4 curves.
DEFAULT_STRIDES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)


def _measure_copies(
    table: ThroughputTable,
    node: NodeMemorySystem,
    strides: Tuple[int, ...],
) -> None:
    copy = TransferKind.COPY
    table.set(copy, "1", "1", node.measure_copy(CONTIGUOUS, CONTIGUOUS))
    table.set(copy, "1", "w", node.measure_copy(CONTIGUOUS, INDEXED))
    table.set(copy, "w", "1", node.measure_copy(INDEXED, CONTIGUOUS))
    for s in strides:
        pattern = strided(s)
        table.set(copy, "1", s, node.measure_copy(CONTIGUOUS, pattern))
        table.set(copy, s, "1", node.measure_copy(pattern, CONTIGUOUS))


def _measure_sends(
    table: ThroughputTable,
    node: NodeMemorySystem,
    machine: Machine,
    strides: Tuple[int, ...],
) -> None:
    send = TransferKind.LOAD_SEND
    table.set(send, "1", "0", node.measure_load_send(CONTIGUOUS))
    table.set(send, "w", "0", node.measure_load_send(INDEXED))
    for s in strides:
        table.set(send, s, "0", node.measure_load_send(strided(s)))
    if node.has_dma:
        table.set(TransferKind.FETCH_SEND, "1", "0", node.measure_fetch_send())


def _measure_receives(
    table: ThroughputTable,
    node: NodeMemorySystem,
    machine: Machine,
    strides: Tuple[int, ...],
) -> None:
    deposit_support = machine.capabilities.deposit
    if deposit_support is not DepositSupport.NONE:
        kind = TransferKind.RECEIVE_DEPOSIT
        table.set(kind, "0", "1", node.measure_deposit(CONTIGUOUS))
        if deposit_support is DepositSupport.ANY:
            table.set(kind, "0", "w", node.measure_deposit(INDEXED))
            for s in strides:
                table.set(kind, "0", s, node.measure_deposit(strided(s)))
    if machine.capabilities.coprocessor_receive:
        kind = TransferKind.RECEIVE_STORE
        table.set(kind, "0", "1", node.measure_receive_store(CONTIGUOUS))
        table.set(kind, "0", "w", node.measure_receive_store(INDEXED))
        for s in strides:
            table.set(kind, "0", s, node.measure_receive_store(strided(s)))


def _measure_network(
    table: ThroughputTable, machine: Machine, congestion: int
) -> None:
    model = machine.network_model()
    table.set(
        TransferKind.NETWORK_DATA,
        "0",
        "0",
        model.rate(FramingMode.DATA_ONLY, congestion=congestion),
    )
    table.set(
        TransferKind.NETWORK_ADP,
        "0",
        "0",
        model.rate(FramingMode.ADDRESS_DATA_PAIRS, congestion=congestion),
    )


def measurement_cache_key(
    machine: Machine,
    congestion: int,
    nwords: int,
    strides: Tuple[int, ...],
    occupancy_scale: float = 1.0,
) -> str:
    """Content hash identifying one calibration measurement exactly.

    Everything the resulting table depends on participates: the full
    node config, the network config and congestion point, stream
    parameters, the engine selection (a forced scalar oracle may differ
    from the fast path in the last float ulp) and the engines' semantic
    versions, so editing timing rules orphans stale disk entries.
    """
    from ..caching import content_key

    return content_key(
        "calibration-table",
        ENGINE_VERSION,
        FASTPATH_VERSION,
        os.environ.get(ENGINE_ENV) or "auto",
        machine.name,
        machine.node,
        machine.network,
        machine.index_run,
        congestion,
        nwords,
        strides,
        occupancy_scale,
    )


def measure_table(
    machine: Machine,
    congestion: Optional[int] = None,
    nwords: int = DEFAULT_MEASURE_WORDS,
    strides: Tuple[int, ...] = DEFAULT_STRIDES,
    use_cache: bool = True,
) -> ThroughputTable:
    """Measure a full calibration table on the simulators.

    Args:
        machine: The machine to measure.
        congestion: Network operating point for the ``Nd`` / ``Nadp``
            entries; defaults to the machine's typical congestion.
        nwords: Stream length per measurement.
        strides: Stride anchors to measure on both sides of copies,
            sends and receives.
        use_cache: Consult/populate the calibration cache
            (:mod:`repro.caching`).  ``False`` always remeasures and
            leaves the cache untouched.
    """
    if congestion is None:
        congestion = machine.network.default_congestion
    strides = tuple(strides)
    key = measurement_cache_key(machine, congestion, nwords, strides)
    if use_cache:
        cached = default_cache().lookup(key)
        if cached is not None:
            return cached
    table = ThroughputTable(
        f"{machine.name} (simulated, congestion {congestion})"
    )
    node = machine.node_memory(nwords=nwords)
    _measure_copies(table, node, strides)
    _measure_sends(table, node, machine, strides)
    _measure_receives(table, node, machine, strides)
    _measure_network(table, machine, congestion)
    if use_cache:
        default_cache().store(key, table)
    return table
