"""Deriving calibration tables by measurement (Section 4).

The paper obtains its throughput figures by timing simple experiments
on live machines.  :func:`measure_table` is the equivalent here: it
runs every basic transfer the machine supports on the memory-system
simulator, takes the network rates from the network model, and returns
a ready-to-use :class:`~repro.core.calibration.ThroughputTable`.

Results are cached per (machine name, parameters) because the word-by-
word simulation of long streams is the slow part of the library.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.calibration import ThroughputTable
from ..core.operations import DepositSupport
from ..core.patterns import CONTIGUOUS, INDEXED, strided
from ..core.transfers import TransferKind
from ..memsim.node import DEFAULT_MEASURE_WORDS, NodeMemorySystem
from ..netsim.network import FramingMode
from .base import Machine

__all__ = ["measure_table", "DEFAULT_STRIDES"]

#: Stride anchors measured by default; enough for log-interpolation to
#: track the Figure 4 curves.
DEFAULT_STRIDES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)


def _measure_copies(
    table: ThroughputTable,
    node: NodeMemorySystem,
    strides: Tuple[int, ...],
) -> None:
    copy = TransferKind.COPY
    table.set(copy, "1", "1", node.measure_copy(CONTIGUOUS, CONTIGUOUS))
    table.set(copy, "1", "w", node.measure_copy(CONTIGUOUS, INDEXED))
    table.set(copy, "w", "1", node.measure_copy(INDEXED, CONTIGUOUS))
    for s in strides:
        pattern = strided(s)
        table.set(copy, "1", s, node.measure_copy(CONTIGUOUS, pattern))
        table.set(copy, s, "1", node.measure_copy(pattern, CONTIGUOUS))


def _measure_sends(
    table: ThroughputTable,
    node: NodeMemorySystem,
    machine: Machine,
    strides: Tuple[int, ...],
) -> None:
    send = TransferKind.LOAD_SEND
    table.set(send, "1", "0", node.measure_load_send(CONTIGUOUS))
    table.set(send, "w", "0", node.measure_load_send(INDEXED))
    for s in strides:
        table.set(send, s, "0", node.measure_load_send(strided(s)))
    if node.has_dma:
        table.set(TransferKind.FETCH_SEND, "1", "0", node.measure_fetch_send())


def _measure_receives(
    table: ThroughputTable,
    node: NodeMemorySystem,
    machine: Machine,
    strides: Tuple[int, ...],
) -> None:
    deposit_support = machine.capabilities.deposit
    if deposit_support is not DepositSupport.NONE:
        kind = TransferKind.RECEIVE_DEPOSIT
        table.set(kind, "0", "1", node.measure_deposit(CONTIGUOUS))
        if deposit_support is DepositSupport.ANY:
            table.set(kind, "0", "w", node.measure_deposit(INDEXED))
            for s in strides:
                table.set(kind, "0", s, node.measure_deposit(strided(s)))
    if machine.capabilities.coprocessor_receive:
        kind = TransferKind.RECEIVE_STORE
        table.set(kind, "0", "1", node.measure_receive_store(CONTIGUOUS))
        table.set(kind, "0", "w", node.measure_receive_store(INDEXED))
        for s in strides:
            table.set(kind, "0", s, node.measure_receive_store(strided(s)))


def _measure_network(
    table: ThroughputTable, machine: Machine, congestion: int
) -> None:
    model = machine.network_model()
    table.set(
        TransferKind.NETWORK_DATA,
        "0",
        "0",
        model.rate(FramingMode.DATA_ONLY, congestion=congestion),
    )
    table.set(
        TransferKind.NETWORK_ADP,
        "0",
        "0",
        model.rate(FramingMode.ADDRESS_DATA_PAIRS, congestion=congestion),
    )


def measure_table(
    machine: Machine,
    congestion: Optional[int] = None,
    nwords: int = DEFAULT_MEASURE_WORDS,
    strides: Tuple[int, ...] = DEFAULT_STRIDES,
) -> ThroughputTable:
    """Measure a full calibration table on the simulators.

    Args:
        machine: The machine to measure.
        congestion: Network operating point for the ``Nd`` / ``Nadp``
            entries; defaults to the machine's typical congestion.
        nwords: Stream length per measurement.
        strides: Stride anchors to measure on both sides of copies,
            sends and receives.
    """
    if congestion is None:
        congestion = machine.network.default_congestion
    return _measure_table_cached(machine, congestion, nwords, tuple(strides))


# The machine objects are rebuilt per call (t3d() returns a fresh one),
# so cache on the stable identity: name + parameters.
_CACHE: dict = {}


def _measure_table_cached(
    machine: Machine,
    congestion: int,
    nwords: int,
    strides: Tuple[int, ...],
) -> ThroughputTable:
    key = (machine.name, machine.node, congestion, nwords, strides, machine.index_run)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    table = ThroughputTable(
        f"{machine.name} (simulated, congestion {congestion})"
    )
    node = machine.node_memory(nwords=nwords)
    _measure_copies(table, node, strides)
    _measure_sends(table, node, machine, strides)
    _measure_receives(table, node, machine, strides)
    _measure_network(table, machine, congestion)
    _CACHE[key] = table
    return table
