"""The Intel Paragon (Section 3.5.2).

Node: two 50 MHz Intel i860XP processors sharing a 400 MB/s bus; each
has a 16 KB 4-way write-through (under SUNMOS) data cache and supports
pipelined loads (``pfld``) that bypass the cache, giving strided loads
an advantage the T3D lacks.  Two DMA / line-transfer controllers can
act as deposit engines for aligned contiguous blocks only, and need
processor kicks at page boundaries.  The second processor can be
dedicated to communication (SUNMOS mode 1) and serve as a deposit
engine for arbitrary patterns via receive-store loops.  Network: 2-D
mesh with sometimes-awkward aspect ratios.
"""

from __future__ import annotations

from ..core.calibration import ThroughputTable
from ..core.operations import CommCapabilities, DepositSupport
from ..core.transfers import TransferKind
from ..memsim.config import (
    CacheConfig,
    DepositConfig,
    DMAConfig,
    DRAMConfig,
    NIConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from ..netsim.network import NetworkConfig
from ..netsim.topology import Mesh
from .base import Machine, RuntimeQuirks

__all__ = ["paragon", "paragon_node_config", "paragon_published_table"]


def paragon_node_config() -> NodeConfig:
    """Simulator parameters for one Paragon node.

    Pipelined loads (depth 3, bypassing the cache) turn load cost into
    DRAM occupancy instead of latency — the reverse of the T3D's
    asymmetry: here strided *loads* are comparatively cheap and strided
    *stores* (write-through, no merging) are the slow path.
    """
    return NodeConfig(
        name="paragon-node",
        processor=ProcessorConfig(
            clock_mhz=50.0,
            load_issue_cycles=0.5,
            store_issue_cycles=0.5,
            loop_overhead_cycles=0.5,
            index_extra_cycles=0.5,
            pipelined_load_depth=3,
            pipelined_loads_bypass_cache=True,
        ),
        cache=CacheConfig(
            size_bytes=16384,
            line_bytes=32,
            associativity=4,
            hit_ns=5.0,
            write_policy="through",
        ),
        dram=DRAMConfig(
            page_bytes=256,
            n_banks=4,
            read_hit_ns=80.0,
            read_miss_ns=250.0,
            read_occupancy_hit_ns=55.0,
            read_occupancy_miss_ns=200.0,
            write_hit_ns=55.0,
            write_miss_ns=210.0,
            burst_word_ns=15.0,
        ),
        write_buffer=WriteBufferConfig(depth=4, merge=False),
        read_ahead=ReadAheadConfig(enabled=False),
        ni=NIConfig(store_ns=135.0, load_ns=75.0, fifo_mbps=160.0),
        dma=DMAConfig(
            present=True,
            word_ns=45.0,
            setup_ns=2000.0,
            page_bytes=4096,
            page_kick_ns=500.0,
        ),
        deposit=DepositConfig(
            patterns="contiguous", contiguous_word_ns=8.0, pair_word_ns=100.0
        ),
    )


def paragon_published_table() -> ThroughputTable:
    """Tables 1-3 of the paper, plus stride anchors.

    The stride-16 anchors are back-derived from the Table 5 estimates
    (``|1Q16| = 18.3``, ``|16Q1| = 20.7`` buffer-packing, 42 / 32
    chained) with the Section 3.4 / 5.1.4 formulas.
    """
    table = ThroughputTable("Intel Paragon (published)")
    copy = TransferKind.COPY
    table.set(copy, "1", "1", 67.6)
    table.set(copy, "1", 64, 27.6)
    table.set(copy, 64, "1", 31.1)
    table.set(copy, "1", "w", 35.2)
    table.set(copy, "w", "1", 45.1)
    table.set(copy, "1", 16, 34.8)  # Table 5 anchor
    table.set(copy, 16, "1", 50.6)  # Table 5 anchor

    send = TransferKind.LOAD_SEND
    table.set(send, "1", "0", 52.0)
    table.set(send, 64, "0", 42.0)
    table.set(send, "w", "0", 36.0)
    table.set(send, 16, "0", 42.0)  # Table 5: |16Q'1| = 42 binds here

    table.set(TransferKind.FETCH_SEND, "1", "0", 160.0)

    receive = TransferKind.RECEIVE_STORE
    table.set(receive, "0", "1", 82.0)
    table.set(receive, "0", 64, 38.0)
    table.set(receive, "0", "w", 42.0)
    table.set(receive, "0", 16, 32.0)  # Table 5: |1Q'16| = 32 binds here

    table.set(TransferKind.RECEIVE_DEPOSIT, "0", "1", 160.0)
    return table


#: Table 4 of the paper: network bandwidth (MB/s) by congestion.
PARAGON_PUBLISHED_NETWORK = {
    "data": {1: 176.0, 2: 90.0, 4: 44.0},
    "adp": {1: 88.0, 2: 45.0, 4: 22.0},
}


def _mesh2d(n_nodes: int) -> Mesh:
    """A 2-D mesh with the elongated aspect ratio of real Paragons."""
    cols = 16
    while cols > 1 and n_nodes % cols:
        cols //= 2
    rows = n_nodes // cols
    if rows * cols != n_nodes:
        rows, cols = n_nodes, 1
    return Mesh(rows, cols)


def paragon() -> Machine:
    """The Intel Paragon (SUNMOS), ready for modelling and simulation.

    ``dma_send`` is on: the paper's buffer-packing formula for the
    Paragon uses the DMA fetch-send ``1F0`` for the contiguous network
    stage (Section 5.1.3).  Chained transfers still use the processor
    load-send, since the DMA cannot follow strided or indexed reads.
    """
    return Machine(
        name="Intel Paragon",
        node=paragon_node_config(),
        network=NetworkConfig(
            raw_link_mbps=200.0,
            payload_data_mbps=176.0,
            payload_adp_mbps=88.0,
            port_sharing=1,
            default_congestion=2,
        ),
        topology_factory=_mesh2d,
        capabilities=CommCapabilities(
            deposit=DepositSupport.CONTIGUOUS,
            dma_send=True,
            coprocessor_receive=True,
            pack_even_contiguous=True,
            overlap_unpack=False,
        ),
        published=paragon_published_table(),
        published_network=PARAGON_PUBLISHED_NETWORK,
        quirks=RuntimeQuirks(
            send_rate_scale=0.75,
            bus_interleave_scale=1.5,
            runtime_efficiency=0.9,
            measures_simplex=True,
        ),
        index_run=2,
    )
