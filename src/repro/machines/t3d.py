"""The Cray T3D (Section 3.5.1).

Node: 150 MHz DEC Alpha 21064, 8 KB direct-mapped on-chip data cache,
write-around stores through the processor's write-back queue, optional
RDAL read-ahead for contiguous load streams, simple non-interleaved
DRAM, no virtual memory.  The *annex* maps remote memory into local
address space; fetch/deposit circuitry handles incoming remote stores
(address-data pairs, any access pattern) without processor
involvement.  Network: 3-D torus, ~300 MB/s raw per link, two nodes
sharing each network access point (so typical congestion is two).

The published throughput figures (Tables 1-4 of the paper) live here
alongside the simulator parameters calibrated to reproduce them.
"""

from __future__ import annotations

from ..core.calibration import ThroughputTable
from ..core.operations import CommCapabilities, DepositSupport
from ..core.transfers import TransferKind
from ..memsim.config import (
    CacheConfig,
    DepositConfig,
    DMAConfig,
    DRAMConfig,
    NIConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from ..netsim.network import NetworkConfig
from ..netsim.topology import Torus
from .base import Machine, RuntimeQuirks

__all__ = ["t3d", "t3d_node_config", "t3d_published_table"]


def t3d_node_config() -> NodeConfig:
    """Simulator parameters for one T3D node.

    Calibrated so the measured basic transfers land near Tables 1-3:
    blocking loads pay full DRAM latency (the 21064 has no load
    pipelining), posted stores drain through the merging write-back
    queue (making strided stores far cheaper than strided loads), and
    RDAL read-ahead only survives on pure load streams.
    """
    return NodeConfig(
        name="t3d-node",
        processor=ProcessorConfig(
            clock_mhz=150.0,
            load_issue_cycles=1.0,
            store_issue_cycles=1.0,
            loop_overhead_cycles=2.0,
            index_extra_cycles=1.0,
            pipelined_load_depth=0,
        ),
        cache=CacheConfig(
            size_bytes=8192,
            line_bytes=32,
            associativity=1,
            hit_ns=7.0,
            write_policy="around",
        ),
        dram=DRAMConfig(
            page_bytes=2048,
            read_hit_ns=140.0,
            read_miss_ns=155.0,
            read_occupancy_hit_ns=50.0,
            read_occupancy_miss_ns=80.0,
            write_hit_ns=40.0,
            write_miss_ns=150.0,
            burst_word_ns=10.0,
        ),
        write_buffer=WriteBufferConfig(depth=6, merge=True),
        read_ahead=ReadAheadConfig(enabled=True, depth=2, survives_writes=False),
        ni=NIConfig(store_ns=38.0, load_ns=30.0, fifo_mbps=160.0),
        dma=DMAConfig(present=False),
        deposit=DepositConfig(
            patterns="any", contiguous_word_ns=56.0, pair_word_ns=145.0
        ),
    )


def t3d_published_table() -> ThroughputTable:
    """Tables 1-3 of the paper, plus stride anchors read off Figure 4.

    The stride-16 copy anchors are back-derived from the Table 5
    buffer-packing estimates (``|1Q16| = 25.4``, ``|16Q1| = 18.4``)
    with the Section 3.4 formula; they agree with the Figure 4 curves.
    """
    table = ThroughputTable("Cray T3D (published)")
    copy = TransferKind.COPY
    table.set(copy, "1", "1", 93.0)
    table.set(copy, "1", 64, 67.9)
    table.set(copy, 64, "1", 33.3)
    table.set(copy, "1", "w", 38.5)
    table.set(copy, "w", "1", 32.9)
    table.set(copy, "1", 16, 70.8)  # Figure 4 / Table 5 anchor
    table.set(copy, 16, "1", 34.4)  # Figure 4 / Table 5 anchor

    send = TransferKind.LOAD_SEND
    table.set(send, "1", "0", 126.0)
    table.set(send, 64, "0", 35.0)
    table.set(send, "w", "0", 32.0)
    table.set(send, 16, "0", 38.0)  # Figure 4 anchor

    deposit = TransferKind.RECEIVE_DEPOSIT
    table.set(deposit, "0", "1", 142.0)
    table.set(deposit, "0", 64, 52.0)
    table.set(deposit, "0", "w", 52.0)
    return table


#: Table 4 of the paper: network bandwidth (MB/s) by congestion.
T3D_PUBLISHED_NETWORK = {
    "data": {1: 142.0, 2: 69.0, 4: 35.0},
    "adp": {1: 62.0, 2: 38.0, 4: 20.0},
}


def _torus3d(n_nodes: int) -> Torus:
    """A near-cubic 3-D torus with ``n_nodes`` compute nodes."""
    best = None
    for x in range(1, n_nodes + 1):
        if n_nodes % x:
            continue
        rest = n_nodes // x
        for y in range(1, rest + 1):
            if rest % y:
                continue
            z = rest // y
            dims = tuple(sorted((x, y, z)))
            spread = dims[2] - dims[0]
            if best is None or spread < best[0]:
                best = (spread, dims)
    assert best is not None
    return Torus(*best[1])


def t3d() -> Machine:
    """The Cray T3D, ready for modelling and simulation."""
    return Machine(
        name="Cray T3D",
        node=t3d_node_config(),
        network=NetworkConfig(
            raw_link_mbps=300.0,
            payload_data_mbps=140.0,
            payload_adp_mbps=78.0,
            endpoint_data_cap_mbps=142.0,
            endpoint_adp_cap_mbps=62.0,
            port_sharing=2,
            default_congestion=2,
        ),
        topology_factory=_torus3d,
        capabilities=CommCapabilities(
            deposit=DepositSupport.ANY,
            dma_send=False,
            coprocessor_receive=False,
            pack_even_contiguous=True,
            overlap_unpack=False,
        ),
        published=t3d_published_table(),
        published_network=T3D_PUBLISHED_NETWORK,
        quirks=RuntimeQuirks(bus_interleave_scale=1.2),
        index_run=1,
    )
