"""What-if machine variants the paper discusses but could not measure.

Each variant is the stock machine with one concrete change, used by
the ablation benches and the design-study example:

* :func:`paragon_fixed_ni` — Section 5.1.4's lament: the measured
  Paragon numbers lost 30-40% because pipelined loads were unusable
  with the buggy A-step network-interface parts, and sends/receives
  could not run simultaneously.  This variant is the Paragon with
  working parts: no send derating, duplex measurement.
* :func:`t3d_contiguous_deposits` — the T3D with a Paragon-grade
  deposit engine (contiguous only): chained transfers for strided and
  indexed patterns become impossible, quantifying the paper's closing
  plea that deposit engines "must take into account that not all
  transfers are contiguous blocks".
* :func:`t3d_without_readahead` — RDAL left off (its actual power-on
  default), costing pure load streams ~60%.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.operations import DepositSupport
from .base import Machine
from .paragon import paragon
from .t3d import t3d

__all__ = [
    "paragon_fixed_ni",
    "t3d_contiguous_deposits",
    "t3d_without_readahead",
]


def paragon_fixed_ni() -> Machine:
    """The Paragon with working (B-step) network-interface parts."""
    machine = paragon()
    machine.name = "Intel Paragon (fixed NI)"
    machine.quirks = replace(
        machine.quirks,
        send_rate_scale=1.0,
        measures_simplex=False,
    )
    return machine


def t3d_contiguous_deposits() -> Machine:
    """The T3D with a contiguous-only deposit engine (a plain DMA)."""
    machine = t3d()
    machine.name = "Cray T3D (contiguous-only deposits)"
    machine.capabilities = replace(
        machine.capabilities, deposit=DepositSupport.CONTIGUOUS
    )
    machine.node = replace(
        machine.node, deposit=replace(machine.node.deposit, patterns="contiguous")
    )
    return machine


def t3d_without_readahead() -> Machine:
    """The T3D with RDAL read-ahead disabled (the power-on default)."""
    machine = t3d()
    machine.name = "Cray T3D (no RDAL)"
    machine.node = replace(
        machine.node, read_ahead=replace(machine.node.read_ahead, enabled=False)
    )
    return machine
