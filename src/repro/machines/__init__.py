"""Machine configurations: the paper's two platforms and their heirs.

:func:`t3d` and :func:`paragon` return fully-wired
:class:`~repro.machines.base.Machine` objects for the paper's 1994
machines; :func:`cluster` and :func:`xe` extend the model beyond them
(hierarchical multi-core nodes, a Gemini-class torus).  The
:mod:`~repro.machines.registry` maps stable keys to all of them;
everything else in the library is machine-independent.
"""

from .base import Machine, RuntimeQuirks, replace_node
from .cluster import ClusterMachine, cluster, cluster_node_config
from .measure import DEFAULT_STRIDES, measure_table
from .paragon import paragon, paragon_node_config, paragon_published_table
from .registry import MACHINE_FACTORIES, machine_by_key, machine_names
from .t3d import t3d, t3d_node_config, t3d_published_table
from .variants import (
    paragon_fixed_ni,
    t3d_contiguous_deposits,
    t3d_without_readahead,
)
from .xe import xe, xe_node_config, xe_published_table

__all__ = [
    "ClusterMachine",
    "DEFAULT_STRIDES",
    "MACHINE_FACTORIES",
    "Machine",
    "cluster",
    "cluster_node_config",
    "machine_by_key",
    "machine_names",
    "measure_table",
    "paragon",
    "paragon_fixed_ni",
    "paragon_node_config",
    "paragon_published_table",
    "replace_node",
    "RuntimeQuirks",
    "t3d",
    "t3d_contiguous_deposits",
    "t3d_node_config",
    "t3d_published_table",
    "t3d_without_readahead",
    "xe",
    "xe_node_config",
    "xe_published_table",
]
