"""Machine configurations: the paper's two platforms.

:func:`t3d` and :func:`paragon` return fully-wired
:class:`~repro.machines.base.Machine` objects; everything else in the
library is machine-independent.
"""

from .base import Machine, RuntimeQuirks, replace_node
from .measure import DEFAULT_STRIDES, measure_table
from .paragon import paragon, paragon_node_config, paragon_published_table
from .t3d import t3d, t3d_node_config, t3d_published_table
from .variants import (
    paragon_fixed_ni,
    t3d_contiguous_deposits,
    t3d_without_readahead,
)

__all__ = [
    "DEFAULT_STRIDES",
    "Machine",
    "measure_table",
    "paragon",
    "paragon_fixed_ni",
    "paragon_node_config",
    "paragon_published_table",
    "replace_node",
    "RuntimeQuirks",
    "t3d",
    "t3d_contiguous_deposits",
    "t3d_node_config",
    "t3d_published_table",
    "t3d_without_readahead",
]
