"""A Cray XE/Gemini-class machine on an anisotropic 3-D torus.

The modern descendant of the T3D's design point (PAPERS.md:
"Constructing Performance Models for Dense Linear Algebra Algorithms
on Cray XE Systems"): remote memory access in hardware — Gemini's FMA
unit plays the T3D annex's role for small puts with arbitrary access
patterns, the BTE block-transfer engine plays the DMA's for large
contiguous blocks — over a 3-D torus whose Y dimension carries half
the link bandwidth of X and Z (:class:`~repro.netsim.topology.GeminiTorus`).
Two nodes share each Gemini router, so typical congestion is two, just
as on the T3D.

The concrete numbers are *synthetic anchors* scaled to the XE era
(GHz-class cores, multi-GB/s links): self-consistent with the
modelling machinery and pinned by goldens, not measurements of a
specific installation.
"""

from __future__ import annotations

from ..core.calibration import ThroughputTable
from ..core.operations import CommCapabilities, DepositSupport
from ..core.transfers import TransferKind
from ..memsim.config import (
    CacheConfig,
    DepositConfig,
    DMAConfig,
    DRAMConfig,
    NIConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from ..netsim.network import NetworkConfig
from ..netsim.topology import GeminiTorus
from .base import Machine, RuntimeQuirks

__all__ = ["xe", "xe_node_config", "xe_published_table"]


def xe_node_config() -> NodeConfig:
    """Simulator parameters for one XE node.

    A deeply pipelined GHz-class core over DDR-era DRAM: latency per
    access barely moved since 1994 but bursts got an order of
    magnitude faster, so the contiguous/strided gap is *wider* than on
    the paper's machines — the trend the paper predicted.
    """
    return NodeConfig(
        name="xe-node",
        processor=ProcessorConfig(
            clock_mhz=2200.0,
            load_issue_cycles=1.0,
            store_issue_cycles=1.0,
            loop_overhead_cycles=2.0,
            index_extra_cycles=1.0,
            pipelined_load_depth=8,
        ),
        cache=CacheConfig(
            size_bytes=65536,
            line_bytes=64,
            associativity=2,
            hit_ns=1.5,
            write_policy="back",
        ),
        dram=DRAMConfig(
            page_bytes=4096,
            n_banks=8,
            read_hit_ns=55.0,
            read_miss_ns=95.0,
            read_occupancy_hit_ns=8.0,
            read_occupancy_miss_ns=30.0,
            write_hit_ns=30.0,
            write_miss_ns=80.0,
            burst_word_ns=1.0,
        ),
        write_buffer=WriteBufferConfig(depth=16, merge=True),
        read_ahead=ReadAheadConfig(enabled=True, depth=8, survives_writes=True),
        ni=NIConfig(store_ns=4.0, load_ns=3.0, fifo_mbps=6000.0),
        dma=DMAConfig(
            present=True,
            word_ns=1.5,
            setup_ns=1200.0,
            page_bytes=65536,
            page_kick_ns=100.0,
        ),
        deposit=DepositConfig(
            patterns="any", contiguous_word_ns=2.0, pair_word_ns=10.0
        ),
    )


def xe_published_table() -> ThroughputTable:
    """Synthetic calibration anchors for the XE node.

    T3D-shaped entries (deposits handle any pattern) plus a
    ``FETCH_SEND`` anchor for the BTE block engine.
    """
    table = ThroughputTable("Cray XE (synthetic)")
    copy = TransferKind.COPY
    table.set(copy, "1", "1", 3200.0)
    table.set(copy, "1", 64, 950.0)
    table.set(copy, 64, "1", 820.0)
    table.set(copy, "1", "w", 640.0)
    table.set(copy, "w", "1", 600.0)
    table.set(copy, "1", 16, 1300.0)
    table.set(copy, 16, "1", 1050.0)

    send = TransferKind.LOAD_SEND
    table.set(send, "1", "0", 2600.0)
    table.set(send, 64, "0", 780.0)
    table.set(send, "w", "0", 560.0)
    table.set(send, 16, "0", 900.0)

    table.set(TransferKind.FETCH_SEND, "1", "0", 4800.0)

    deposit = TransferKind.RECEIVE_DEPOSIT
    table.set(deposit, "0", "1", 4800.0)
    table.set(deposit, "0", 64, 1400.0)
    table.set(deposit, "0", "w", 1400.0)
    return table


#: Synthetic Gemini network anchors: MB/s by congestion.
XE_PUBLISHED_NETWORK = {
    "data": {1: 5200.0, 2: 2700.0, 4: 1350.0},
    "adp": {1: 2400.0, 2: 1250.0, 4: 620.0},
}


def _gemini_torus(n_nodes: int) -> GeminiTorus:
    """A near-cubic anisotropic 3-D torus with ``n_nodes`` nodes."""
    best = None
    for x in range(1, n_nodes + 1):
        if n_nodes % x:
            continue
        rest = n_nodes // x
        for y in range(1, rest + 1):
            if rest % y:
                continue
            z = rest // y
            dims = tuple(sorted((x, y, z)))
            spread = dims[2] - dims[0]
            if best is None or spread < best[0]:
                best = (spread, dims)
    assert best is not None
    return GeminiTorus(*best[1])


def xe() -> Machine:
    """A Cray XE/Gemini-class machine, ready for modelling.

    ``deposit=ANY`` because FMA remote puts carry arbitrary access
    patterns (the T3D annex's heir); ``dma_send`` for the BTE.  No
    coprocessor receives — the Gemini NIC needs no processor on the
    receiving side at all.
    """
    return Machine(
        name="Cray XE (Gemini)",
        node=xe_node_config(),
        network=NetworkConfig(
            raw_link_mbps=9600.0,
            payload_data_mbps=5400.0,
            payload_adp_mbps=2500.0,
            endpoint_data_cap_mbps=5200.0,
            endpoint_adp_cap_mbps=2400.0,
            port_sharing=2,
            default_congestion=2,
        ),
        topology_factory=_gemini_torus,
        capabilities=CommCapabilities(
            deposit=DepositSupport.ANY,
            dma_send=True,
            coprocessor_receive=False,
            pack_even_contiguous=True,
            overlap_unpack=True,
        ),
        published=xe_published_table(),
        published_network=XE_PUBLISHED_NETWORK,
        quirks=RuntimeQuirks(
            bus_interleave_scale=1.1,
            runtime_efficiency=0.9,
        ),
        index_run=1,
    )
