"""The machine registry: every configured machine, by key.

One place maps short stable keys ("t3d", "xe", …) to machine
factories.  Sweep cells, CLI arguments, load profiles, verify
examples and the cross-machine property tests all resolve machines
through this table, so registering a machine here is the *only* step
needed to put it in front of every subsystem — and every
registry-driven invariant check (see
``tests/properties/test_machine_invariants.py``).

Keys are lowercase and stable across releases: sweep shards and cache
entries serialize them.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .base import Machine
from .cluster import cluster
from .paragon import paragon
from .t3d import t3d
from .variants import (
    paragon_fixed_ni,
    t3d_contiguous_deposits,
    t3d_without_readahead,
)
from .xe import xe

__all__ = ["MACHINE_FACTORIES", "machine_names", "machine_by_key"]

#: Key -> factory for every registered machine.  The paper's two
#: platforms first, then the post-1994 machines, then the what-if
#: variants (ablations of the stock machines).
MACHINE_FACTORIES: Dict[str, Callable[[], Machine]] = {
    "t3d": t3d,
    "paragon": paragon,
    "cluster": cluster,
    "xe": xe,
    "t3d-no-rdal": t3d_without_readahead,
    "t3d-contiguous-deposits": t3d_contiguous_deposits,
    "paragon-fixed-ni": paragon_fixed_ni,
}


def machine_names() -> Tuple[str, ...]:
    """All registered machine keys, in registration order."""
    return tuple(MACHINE_FACTORIES)


def machine_by_key(key: str) -> Machine:
    """Build a fresh machine from its registry key.

    Machines are mutable; callers that cache must do so themselves
    (the sweep worker memoizes per process).
    """
    try:
        factory = MACHINE_FACTORIES[key]
    except KeyError:
        known = ", ".join(MACHINE_FACTORIES)
        raise KeyError(f"unknown machine {key!r} (known: {known})") from None
    return factory()
