"""The machine abstraction: node + network + capabilities.

A :class:`Machine` bundles everything the library knows about one
parallel computer: the memory-system parameters (for the simulator),
the network parameters, the communication capabilities (for the
operation builders), the published calibration numbers from the paper
(for validation), and runtime quirks that degrade end-to-end
measurements relative to the model's optimism.

Adding a machine means writing one module like
:mod:`repro.machines.t3d` — the simulators and the model are generic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from ..core.calibration import ThroughputTable
from ..core.model import CopyTransferModel
from ..core.operations import CommCapabilities
from ..memsim.config import NodeConfig
from ..memsim.node import DEFAULT_MEASURE_WORDS, NodeMemorySystem
from ..netsim.network import NetworkConfig, NetworkModel
from ..netsim.topology import Topology

__all__ = ["RuntimeQuirks", "Machine"]


@dataclass(frozen=True)
class RuntimeQuirks:
    """End-to-end measurement degradations the model does not see.

    The paper's Paragon measurements "deviate significantly from our
    conceptual model" for listed reasons (Section 5.1.4); these knobs
    let the runtime simulator reproduce that deviation.

    Attributes:
        send_rate_scale: Multiplier on processor send rates in live
            runs (Paragon: pipelined loads unusable on A-step NI parts,
            a 30-40% loss -> ~0.65).
        duplex_penalty: Multiplier applied when a node sends and
            receives simultaneously; 1.0 if the hardware handles it.
        bus_interleave_scale: DRAM occupancy multiplier while the
            processor and a second master interleave single-word
            accesses (Paragon: up to 2.0; a small factor on the T3D
            for annex deposits stealing memory cycles).
        pipeline_chunk_words: Granularity at which the runtime
            pipelines the hardware stages of a transfer.
        runtime_efficiency: Residual measured/ideal ratio covering the
            costs neither the model nor the pipeline charges (cache
            invalidation at synchronization points, timer reads,
            descriptor management).  Figures 7/8 show live measurements
            landing 10-20% under the model's optimism.
    """

    send_rate_scale: float = 1.0
    duplex_penalty: float = 1.0
    bus_interleave_scale: float = 1.0
    pipeline_chunk_words: int = 64
    runtime_efficiency: float = 0.85
    #: The paper's Paragon measurements did not run sending and
    #: receiving simultaneously at each node (Section 5.1.4); measured
    #: comparisons for such machines are taken simplex.
    measures_simplex: bool = False


@dataclass
class Machine:
    """One parallel computer, ready to be modelled, simulated and measured.

    Attributes:
        name: Display name ("Cray T3D").
        node: Memory-system parameters for :mod:`repro.memsim`.
        network: Bandwidth parameters for :mod:`repro.netsim`.
        topology_factory: Builds the interconnect topology for a
            partition of ``n`` nodes.
        capabilities: Features available to the ``xQy`` builders.
        published: The paper's measured basic-transfer throughputs
            (Tables 1-3) *excluding* network entries.
        published_network: The paper's Table 4: framing mode ->
            congestion -> MB/s.
        quirks: End-to-end measurement degradations.
        index_run: Indexed-stream locality used for this machine's
            measurements (see :mod:`repro.memsim.streams`).
    """

    name: str
    node: NodeConfig
    network: NetworkConfig
    topology_factory: Callable[[int], Topology]
    capabilities: CommCapabilities
    published: ThroughputTable
    published_network: Dict[str, Dict[int, float]] = field(default_factory=dict)
    quirks: RuntimeQuirks = field(default_factory=RuntimeQuirks)
    index_run: int = 2

    # -- simulators ----------------------------------------------------------

    def node_memory(
        self,
        nwords: int = DEFAULT_MEASURE_WORDS,
        occupancy_scale: float = 1.0,
    ) -> NodeMemorySystem:
        """A measurement harness over this machine's memory system."""
        return NodeMemorySystem(
            self.node,
            nwords=nwords,
            index_run=self.index_run,
            occupancy_scale=occupancy_scale,
        )

    def topology(self, n_nodes: int = 64) -> Topology:
        return self.topology_factory(n_nodes)

    def network_model(self, n_nodes: int = 64) -> NetworkModel:
        """The bandwidth model attached to a partition's topology."""
        return NetworkModel(self.network, topology=self.topology(n_nodes))

    # -- calibration tables ----------------------------------------------------

    def paper_table(self, congestion: Optional[int] = None) -> ThroughputTable:
        """The published calibration: Tables 1-3 plus Table 4 network rates.

        Args:
            congestion: Which Table 4 column to use for the network
                entries; defaults to the machine's typical congestion
                (the paper's bold values).
        """
        from ..core.transfers import TransferKind

        if congestion is None:
            congestion = self.network.default_congestion
        table = ThroughputTable(f"{self.name} (paper, congestion {congestion})")
        table.merge(self.published)
        for mode, kind in (
            ("data", TransferKind.NETWORK_DATA),
            ("adp", TransferKind.NETWORK_ADP),
        ):
            by_congestion = self.published_network.get(mode, {})
            if congestion in by_congestion:
                table.set(kind, "0", "0", by_congestion[congestion])
        return table

    def simulated_table(
        self,
        congestion: Optional[int] = None,
        nwords: int = DEFAULT_MEASURE_WORDS,
        strides: Tuple[int, ...] = (2, 4, 8, 16, 32, 64),
        use_cache: bool = True,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        engine: str = "cell",
    ) -> ThroughputTable:
        """Calibration derived by running the simulators (Section 4).

        Repeat calls are served from the calibration cache
        (:mod:`repro.caching`); ``use_cache=False`` remeasures.
        ``workers`` > 1 shards the measurement grid across processes
        via :mod:`repro.sweep`; ``engine="batch"`` evaluates it through
        the vectorized sweep engine (:mod:`repro.sweep.batch`).  The
        table is bit-identical either way.
        """
        from .measure import measure_table

        return measure_table(
            self,
            congestion=congestion,
            nwords=nwords,
            strides=strides,
            use_cache=use_cache,
            workers=workers,
            shard_size=shard_size,
            engine=engine,
        )

    # -- models -------------------------------------------------------------------

    def model(
        self,
        source: str = "paper",
        congestion: Optional[int] = None,
        constraints: Tuple = (),
    ) -> CopyTransferModel:
        """A :class:`CopyTransferModel` for this machine.

        Args:
            source: ``"paper"`` uses the published calibration,
                ``"simulated"`` derives it from the simulators.
            congestion: Network operating point (defaults to typical).
            constraints: Standing resource constraints.
        """
        if source == "paper":
            table = self.paper_table(congestion=congestion)
        elif source == "simulated":
            table = self.simulated_table(congestion=congestion)
        else:
            raise ValueError(f"unknown calibration source {source!r}")
        return CopyTransferModel(
            table=table,
            capabilities=self.capabilities,
            constraints=tuple(constraints),
            name=self.name,
        )

    def with_overrides(self, **changes) -> "Machine":
        """A copy of this machine with some fields replaced.

        Useful for ablations: ``t3d().with_overrides(node=replace(...))``.
        """
        return replace(self, **changes)


def replace_node(machine: Machine, **node_changes) -> Machine:
    """Shorthand for ablations that tweak the node config."""
    return machine.with_overrides(node=replace(machine.node, **node_changes))
