"""Calibration result caching.

Deriving a calibration table runs dozens of 32 Ki-word kernel
simulations, so the library caches tables at two levels:

* an **in-process LRU** keyed by a content hash of everything the
  measurement depends on — the full :class:`~repro.memsim.config.NodeConfig`,
  stream length, index-run locality, congestion, stride anchors, the
  engine selection, and the engine semantic versions;
* an optional **on-disk layer** under ``.repro-cache/`` (override with
  the ``REPRO_CACHE_DIR`` environment variable) holding one JSON table
  per key, so repeat benchmark runs in fresh processes skip simulation
  entirely.

Invalidation is by key construction, never by mtime: any change to the
node parameters or to the engines' semantic versions
(:data:`~repro.memsim.engine.ENGINE_VERSION`,
:data:`~repro.memsim.fastpath.FASTPATH_VERSION`) produces a different
hash, and stale entries are simply never referenced again.  Delete the
cache directory — or run ``python -m repro calibrate --no-cache`` — to
bypass everything.

Set ``REPRO_CACHE=off`` to disable both layers process-wide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional

from .core.calibration import ThroughputTable
from .core.serialization import table_from_dict, table_to_dict
from .trace.tracer import current_tracer

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "CalibrationCache",
    "content_key",
    "default_cache",
]

#: Environment variable selecting the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling caching altogether (``off``/``0``/``no``).
CACHE_ENV = "REPRO_CACHE"

#: Bump to orphan every existing disk entry (format changes).
_FORMAT_VERSION = "1"

_DEFAULT_DIR = ".repro-cache"
_DEFAULT_MAX_ENTRIES = 64


def _canonical(value: Any) -> Any:
    """Reduce a key part to JSON-stable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                name: _canonical(part)
                for name, part in dataclasses.asdict(value).items()
            },
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(part) for part in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def content_key(*parts: Any) -> str:
    """A stable hex digest of arbitrary (mostly-dataclass) key parts."""
    payload = json.dumps(
        _canonical(parts), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _caching_disabled() -> bool:
    return os.environ.get(CACHE_ENV, "").strip().lower() in (
        "off",
        "0",
        "no",
        "false",
    )


class CalibrationCache:
    """Two-layer (memory LRU + disk JSON) cache of throughput tables.

    Args:
        max_entries: In-process LRU capacity.
        directory: On-disk location; ``None`` resolves ``REPRO_CACHE_DIR``
            or falls back to ``.repro-cache`` under the working
            directory.  Pass ``directory=False``-like empty string via
            ``use_disk=False`` to keep the cache memory-only.
        use_disk: Whether to mirror entries to disk.
    """

    def __init__(
        self,
        max_entries: int = _DEFAULT_MAX_ENTRIES,
        directory: Optional[str] = None,
        use_disk: bool = True,
    ) -> None:
        self.max_entries = max_entries
        self.use_disk = use_disk
        self._directory = directory
        self._memory: "OrderedDict[str, ThroughputTable]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.corrupt = 0

    @property
    def directory(self) -> Path:
        configured = self._directory or os.environ.get(CACHE_DIR_ENV)
        return Path(configured) if configured else Path(_DEFAULT_DIR)

    def _path(self, key: str) -> Path:
        return self.directory / "tables" / f"{key}.json"

    @staticmethod
    def _trace(event: str, prefix: str = "calibration_cache") -> None:
        """Report one cache outcome to an active tracer, if any."""
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc(f"{prefix}.{event}")

    def lookup(self, key: str) -> Optional[ThroughputTable]:
        """Return the cached table for ``key``, or ``None``."""
        if _caching_disabled():
            return None
        table = self._memory.get(key)
        if table is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            self._trace("memory_hit")
            return table
        if self.use_disk:
            path = self._path(key)
            table = None
            try:
                with open(path) as handle:
                    table = table_from_dict(json.load(handle))
            except FileNotFoundError:
                pass
            except Exception:  # noqa: BLE001 - a truncated, corrupt or
                # unreadable entry is just a miss (it will be rewritten
                # on store), but a *counted* one: a recurring
                # cache.corrupt in traces means something is damaging
                # the cache directory.
                self.corrupt += 1
                self._trace("corrupt", prefix="cache")
            if table is not None:
                self._remember(key, table)
                self.disk_hits += 1
                self._trace("disk_hit")
                return table
        self.misses += 1
        self._trace("miss")
        return None

    def store(self, key: str, table: ThroughputTable) -> None:
        """Insert a table under ``key`` in both layers."""
        if _caching_disabled():
            return
        self._trace("store")
        self._remember(key, table)
        if not self.use_disk:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish so concurrent processes never read a
            # half-written table.
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(table_to_dict(table), handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem degrades to the in-memory
            # layer; the counter keeps the degradation observable.
            self._trace("store_failed", prefix="cache")

    def _remember(self, key: str, table: ThroughputTable) -> None:
        self._memory[key] = table
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer; with ``disk=True`` also delete files."""
        self._memory.clear()
        if disk:
            tables = self.directory / "tables"
            if tables.is_dir():
                for path in tables.glob("*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self._memory)


_DEFAULT_CACHE = CalibrationCache()


def default_cache() -> CalibrationCache:
    """The process-wide calibration cache."""
    return _DEFAULT_CACHE
