"""Fault-degraded topology: reroute around failures, derated congestion.

:class:`FaultyTopology` is a view of a healthy topology under a fault
plan.  Routing avoids failed links (shortest deterministic detour, via
``Topology.route(..., avoid=...)``), so :meth:`Topology.link_loads`
and :func:`repro.netsim.loadreport.link_load_report` automatically
recompute where the redirected traffic lands.  Congestion accounting
additionally weights derated links: a link at 50% capacity carrying
``L`` flows congests like a healthy link carrying ``2 L``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from ..netsim.topology import Link, Topology

if TYPE_CHECKING:
    from .spec import FaultPlan

__all__ = ["FaultyTopology", "degraded_congestion", "reroute_report"]

Flow = Tuple[int, int]


class FaultyTopology(Topology):
    """A topology as a fault plan sees it.

    Args:
        base: The healthy topology.
        plan: The fault plan supplying failed links and derates.
    """

    def __init__(self, base: Topology, plan: "FaultPlan") -> None:
        super().__init__(base.dims, base.wrap)
        self.base = base
        self.plan = plan
        self._avoid = plan.failed_links()

    def route(self, src: int, dst: int, avoid=None) -> List[Link]:
        merged = self._avoid if avoid is None else self._avoid | set(avoid)
        return super().route(src, dst, avoid=merged)

    def link_weight(self, link: Link) -> float:
        # Anisotropic bases (GeminiTorus) keep their capacities under faults.
        return self.base.link_weight(link)

    def effective_load(self, link: Link, load: float) -> float:
        """Flow count scaled by the link's remaining healthy capacity."""
        derate = self.plan.link_derate(link.src, link.dst)
        weighted = load / self.link_weight(link)
        return weighted / derate if derate < 1.0 else weighted

    def max_link_congestion(self, flows: Iterable[Flow]) -> float:
        """Worst derate-weighted link load (the degraded congestion)."""
        loads = self.link_loads(flows)
        if not loads:
            return 0
        return max(
            self.effective_load(link, load) for link, load in loads.items()
        )

    def routing_key(self) -> Tuple:
        derates = tuple(
            sorted(
                (fault.src, fault.dst, fault.derate)
                for fault in self.plan.links
                if not fault.failed and fault.derate < 1.0
            )
        )
        return (
            "faulty",
            self.base.routing_key(),
            tuple(sorted(self._avoid)),
            derates,
        )

    def __repr__(self) -> str:
        return (
            f"FaultyTopology({self.base!r}, failed={len(self._avoid)}, "
            f"seed={self.plan.seed})"
        )


def degraded_congestion(
    topology: Topology,
    plan: Optional["FaultPlan"],
    flows: Iterable[Flow],
) -> float:
    """Worst-link congestion of ``flows`` under ``plan`` (``None`` = healthy)."""
    view = plan.wrap_topology(topology) if plan is not None else topology
    return float(view.max_link_congestion(flows))


def reroute_report(
    topology: Topology, plan: "FaultPlan", flows: Iterable[Flow]
) -> Dict[str, float]:
    """How much extra distance the detours cost a traffic pattern."""
    flows = list(flows)
    healthy_hops = sum(
        len(topology.route(src, dst)) for src, dst in flows if src != dst
    )
    faulty = plan.wrap_topology(topology)
    degraded_hops = sum(
        len(faulty.route(src, dst)) for src, dst in flows if src != dst
    )
    return {
        "healthy_hops": float(healthy_hops),
        "degraded_hops": float(degraded_hops),
        "detour_hops": float(degraded_hops - healthy_hops),
    }
