"""Fault injection and degraded-mode communication.

The copy-transfer algebra assumes every basic transfer runs at its
calibrated rate.  This package drops that assumption under controlled,
reproducible conditions:

* :class:`FaultPlan` — a seeded description of link derates/failures,
  slow nodes, deposit-engine unavailability and fragment loss or
  corruption on the wire;
* :class:`RetryPolicy` — timeout, exponential backoff with a cap, and
  a retry budget; recovery is charged into the transfer as ``retry``
  and ``backoff`` phases, keeping the phase-sum tracing invariant;
* :class:`DegradedResult` — the legible record of a graceful fallback
  (chained -> buffer-packing when the deposit engine is gone);
* :class:`FaultyTopology` — routing that detours around failed links
  and congestion that weights derated ones.

Install a plan for a region of code with :func:`injecting` (the same
context-variable pattern as :func:`repro.trace.tracing`) or pass it to
:class:`~repro.runtime.engine.CommRuntime` explicitly.  An empty or
absent plan is guaranteed bit-identical to the fault-free path.
"""

from .degrade import DegradedResult
from .network import FaultyTopology, degraded_congestion, reroute_report
from .policy import RecoveryCharge, RetryPolicy, recovery_charge
from .report import validate_faults_report
from .spec import (
    DepositFault,
    FaultPlan,
    FragmentFault,
    LinkFault,
    NodeFault,
    current_fault_plan,
    injecting,
)

__all__ = [
    "DegradedResult",
    "DepositFault",
    "FaultPlan",
    "FaultyTopology",
    "FragmentFault",
    "LinkFault",
    "NodeFault",
    "RecoveryCharge",
    "RetryPolicy",
    "current_fault_plan",
    "degraded_congestion",
    "injecting",
    "recovery_charge",
    "reroute_report",
    "validate_faults_report",
]
