"""Retry, timeout and backoff: what recovery costs.

The paper's transfers always succeed; a production runtime's do not.
When a fault plan injects fragment loss or corruption, the runtime
charges the recovery into the transfer as two new sequential phases:

* ``retry`` — busy time: retransmitted payload plus, for losses, the
  timeout the sender sat on before declaring the fragment dead
  (corruption is detected on receipt, so it pays no timeout);
* ``backoff`` — idle time: the exponential wait between attempts,
  capped at :attr:`RetryPolicy.backoff_cap_ns`.

Keeping recovery in named phases preserves the tracing invariant from
the observability layer: phase spans still sum exactly to the
transfer's end-to-end nanoseconds.

The decision of whether attempt ``a`` of unit ``u`` fails is a pure
hash of the fault plan's seed and the decision key
(:meth:`~repro.faults.spec.FaultPlan.bernoulli`), so a recovery charge
is a deterministic function of ``(plan, transfer identity)`` — the
replay guarantee the property suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple, TYPE_CHECKING

from ..core.errors import FaultError, TransferAbortedError

if TYPE_CHECKING:
    from .spec import FaultPlan

__all__ = ["RetryPolicy", "RecoveryCharge", "recovery_charge"]

_GRANULARITIES = ("fragment", "message")


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime recovers from lost or corrupted units.

    Attributes:
        timeout_ns: How long the sender waits before declaring a
            transmitted unit lost.
        backoff_base_ns: Idle wait before the first retransmission.
        backoff_factor: Multiplier applied per further attempt.
        backoff_cap_ns: Ceiling on any single backoff wait.
        max_attempts: Transmissions per unit before the transfer is
            aborted with :class:`~repro.core.errors.TransferAbortedError`.
        granularity: ``"fragment"`` retries individual fragments;
            ``"message"`` retransmits the whole message when any
            fragment fails (simple protocols without selective repeat).
        retry_budget: Maximum fraction of in-flight work that may be
            retries, in ``[0, 1]``.  The runtime's per-transfer
            recovery ignores it (one transfer has no fleet view); the
            load engine consults it before scheduling a rejected or
            aborted request for another attempt, so retry storms
            cannot amplify an overload or hammer an open circuit
            breaker (see ``docs/LOAD.md``).
    """

    timeout_ns: float = 50_000.0
    backoff_base_ns: float = 10_000.0
    backoff_factor: float = 2.0
    backoff_cap_ns: float = 400_000.0
    max_attempts: int = 8
    granularity: str = "fragment"
    retry_budget: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout_ns < 0 or self.backoff_base_ns < 0:
            raise FaultError("timeout and backoff base cannot be negative")
        if self.backoff_factor < 1.0:
            raise FaultError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap_ns < self.backoff_base_ns:
            raise FaultError("backoff cap cannot undercut the base wait")
        if self.max_attempts < 1:
            raise FaultError(
                f"need at least one attempt, got {self.max_attempts}"
            )
        if self.granularity not in _GRANULARITIES:
            raise FaultError(
                f"granularity must be one of {_GRANULARITIES}, "
                f"got {self.granularity!r}"
            )
        if not 0.0 <= self.retry_budget <= 1.0:
            raise FaultError(
                f"retry budget must be in [0, 1], got {self.retry_budget}"
            )

    def backoff_ns(self, retry_index: int) -> float:
        """Idle wait before retransmission number ``retry_index`` (0-based)."""
        return min(
            self.backoff_cap_ns,
            self.backoff_base_ns * self.backoff_factor ** retry_index,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timeout_ns": self.timeout_ns,
            "backoff_base_ns": self.backoff_base_ns,
            "backoff_factor": self.backoff_factor,
            "backoff_cap_ns": self.backoff_cap_ns,
            "max_attempts": self.max_attempts,
            "granularity": self.granularity,
            "retry_budget": self.retry_budget,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RetryPolicy":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise FaultError(f"malformed retry policy: {exc}") from exc


@dataclass(frozen=True)
class RecoveryCharge:
    """What fragment-level faults cost one transfer.

    Attributes:
        retry_ns: Busy recovery time (retransmissions + loss timeouts).
        backoff_ns: Idle backoff time between attempts.
        retries: Retransmissions performed.
        losses: Attempts that were lost on the wire.
        corruptions: Attempts that arrived corrupted.
    """

    retry_ns: float = 0.0
    backoff_ns: float = 0.0
    retries: int = 0
    losses: int = 0
    corruptions: int = 0

    @property
    def total_ns(self) -> float:
        return self.retry_ns + self.backoff_ns

    def __bool__(self) -> bool:
        return self.retries > 0


_NO_RECOVERY = RecoveryCharge()


def recovery_charge(
    plan: "FaultPlan",
    fragments: int,
    fragment_ns: float,
    message_ns: float,
    key: Tuple[Any, ...],
) -> RecoveryCharge:
    """Deterministically price the recovery of one message.

    The first transmission of every unit is already charged by the
    transfer's base phases; this adds only the extra attempts.  ``key``
    identifies the message (patterns, size, endpoints) so two distinct
    messages under the same plan draw independent — but reproducible —
    fault decisions.

    Raises:
        TransferAbortedError: A unit failed ``max_attempts`` times.
    """
    loss = plan.loss_probability()
    corrupt = plan.corrupt_probability()
    if loss <= 0.0 and corrupt <= 0.0:
        return _NO_RECOVERY

    policy = plan.retry
    if policy.granularity == "message":
        units, unit_ns = 1, message_ns
    else:
        units, unit_ns = max(1, fragments), fragment_ns

    retry_ns = 0.0
    backoff_ns = 0.0
    retries = losses = corruptions = 0
    for unit in range(units):
        for attempt in range(policy.max_attempts):
            lost = plan.bernoulli(loss, *key, unit, attempt, "loss")
            corrupted = not lost and plan.bernoulli(
                corrupt, *key, unit, attempt, "corrupt"
            )
            if not lost and not corrupted:
                break
            if lost:
                losses += 1
                retry_ns += policy.timeout_ns
            else:
                corruptions += 1
            if attempt + 1 >= policy.max_attempts:
                raise TransferAbortedError(
                    f"unit {unit} failed {policy.max_attempts} attempts "
                    f"(seed {plan.seed}): transfer aborted"
                )
            retries += 1
            retry_ns += unit_ns
            backoff_ns += policy.backoff_ns(attempt)
    if not retries:
        return _NO_RECOVERY
    return RecoveryCharge(
        retry_ns=retry_ns,
        backoff_ns=backoff_ns,
        retries=retries,
        losses=losses,
        corruptions=corruptions,
    )
