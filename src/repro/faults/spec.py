"""Fault specifications and the seeded, deterministic fault plan.

A :class:`FaultPlan` is the single source of truth for everything that
can go wrong during a simulated communication operation:

* **link faults** — a physical link runs derated (a flaky cable at
  half speed) or is failed outright, in which case routing detours
  around it (:meth:`~repro.netsim.topology.Topology.route` with
  ``avoid``);
* **node faults** — a slow node: every memory-touching stage on that
  node runs slower by the given factor;
* **deposit faults** — the receiver's deposit engine is unavailable
  (busy, absent, fenced off); chained transfers degrade to
  buffer-packing rather than fail;
* **fragment faults** — fragments are lost or corrupted on the wire
  with the given probabilities, and the
  :class:`~repro.faults.policy.RetryPolicy` charges the recovery.

Determinism is the design center: every random decision (was fragment
7's third attempt lost?) is a pure hash of ``(seed, decision key)``,
never a stateful RNG, so the same plan replayed against any engine —
scalar oracle, vectorized fast path, traced or untraced — makes the
same decisions in the same order regardless of how callers interleave
queries.

A plan can be installed for a region of code with :func:`injecting`
(mirroring :func:`repro.trace.tracer.tracing`) or passed explicitly to
:class:`~repro.runtime.engine.CommRuntime`.  When no plan is
installed, instrumented code pays one ``ContextVar`` read — the same
zero-overhead-when-off contract the tracer keeps.
"""

from __future__ import annotations

import hashlib
import json
import struct
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import FaultError
from .policy import RetryPolicy

__all__ = [
    "LinkFault",
    "NodeFault",
    "DepositFault",
    "FragmentFault",
    "FaultPlan",
    "current_fault_plan",
    "injecting",
]


@dataclass(frozen=True)
class LinkFault:
    """One physical link misbehaving.

    Attributes:
        src / dst: Directed endpoints of the link; both ``None`` makes
            the fault global (every network stage sees the derate).
        derate: Remaining capacity fraction in ``(0, 1]``.
        failed: The link is down; routing must detour around it
            (requires concrete endpoints).
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    derate: float = 1.0
    failed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.derate <= 1.0:
            raise FaultError(
                f"link derate must be in (0, 1], got {self.derate}"
            )
        if (self.src is None) != (self.dst is None):
            raise FaultError("a link fault needs both endpoints or neither")
        if self.failed and self.src is None:
            raise FaultError("a failed link needs concrete endpoints")


@dataclass(frozen=True)
class NodeFault:
    """One node running slow (thermal throttle, noisy neighbour)."""

    node: int
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise FaultError(
                f"node slowdown must be >= 1, got {self.slowdown}"
            )


@dataclass(frozen=True)
class DepositFault:
    """The deposit engine is unavailable on ``node`` (``None`` = all)."""

    node: Optional[int] = None


@dataclass(frozen=True)
class FragmentFault:
    """Fragments lost or corrupted on the wire.

    Attributes:
        loss: Probability a transmitted fragment vanishes (the sender
            discovers this only after the retry timeout).
        corrupt: Probability a fragment arrives damaged (detected on
            receipt; retransmitted without waiting for a timeout).
    """

    loss: float = 0.0
    corrupt: float = 0.0

    def __post_init__(self) -> None:
        for name, p in (("loss", self.loss), ("corrupt", self.corrupt)):
            if not 0.0 <= p < 1.0:
                raise FaultError(
                    f"fragment {name} probability must be in [0, 1), got {p}"
                )


def _combined(probabilities: Sequence[float]) -> float:
    """Probability that at least one independent event fires."""
    survive = 1.0
    for p in probabilities:
        survive *= 1.0 - p
    return 1.0 - survive


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible description of injected faults.

    Attributes:
        seed: Seeds every probabilistic decision; two plans with equal
            specs and seeds replay identically anywhere.
        links / nodes / deposits / fragments: The fault specs.
        retry: Recovery policy charged for fragment loss/corruption.
    """

    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    nodes: Tuple[NodeFault, ...] = ()
    deposits: Tuple[DepositFault, ...] = ()
    fragments: Tuple[FragmentFault, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # Emptiness is queried on every runtime transfer (the faults-off
        # fast exit), so it is computed once here instead of re-walking
        # four tuples per call.
        object.__setattr__(
            self,
            "_empty",
            not (self.links or self.nodes or self.deposits or self.fragments),
        )

    # -- queries ------------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the plan injects nothing (behaviour must be nominal)."""
        return self._empty  # type: ignore[attr-defined, no-any-return]

    def deposit_available(self, node: Optional[int]) -> bool:
        """Whether ``node``'s deposit engine is usable under this plan.

        With ``node=None`` (an anonymous point-to-point transfer) only
        global deposit faults apply; per-node faults need the transfer
        to say which node receives.
        """
        for fault in self.deposits:
            if fault.node is None or fault.node == node:
                return False
        return True

    def node_slowdown(self, node: Optional[int]) -> float:
        """Combined slowdown factor for ``node`` (1.0 when healthy)."""
        if node is None:
            return 1.0
        factor = 1.0
        for fault in self.nodes:
            if fault.node == node:
                factor *= fault.slowdown
        return factor

    def link_derate(self, src: Optional[int], dst: Optional[int]) -> float:
        """Remaining capacity fraction of the ``src -> dst`` link."""
        factor = 1.0
        for fault in self.links:
            if fault.failed:
                continue
            if fault.src is None or (fault.src == src and fault.dst == dst):
                factor *= fault.derate
        return factor

    def global_link_derate(self) -> float:
        """Derate every network stage pays regardless of route."""
        factor = 1.0
        for fault in self.links:
            if fault.src is None and not fault.failed:
                factor *= fault.derate
        return factor

    def route_derate(self, links: Sequence[Any]) -> float:
        """Worst (smallest) link derate along a concrete route.

        Within one pipelined transfer the slowest link paces the wire,
        so the route's derate is the minimum over its links.
        """
        if not links:
            return self.global_link_derate()
        return min(self.link_derate(link.src, link.dst) for link in links)

    def failed_links(self) -> FrozenSet[Tuple[int, int]]:
        """Directed node pairs whose links are down."""
        return frozenset(
            (fault.src, fault.dst)
            for fault in self.links
            if fault.failed and fault.src is not None
        )

    def loss_probability(self) -> float:
        return _combined([fault.loss for fault in self.fragments])

    def corrupt_probability(self) -> float:
        return _combined([fault.corrupt for fault in self.fragments])

    def has_wire_faults(self) -> bool:
        return self.loss_probability() > 0.0 or self.corrupt_probability() > 0.0

    # -- deterministic randomness -------------------------------------------

    def uniform(self, *key: Any) -> float:
        """A reproducible uniform draw in ``[0, 1)`` for ``key``.

        A pure function of ``(seed, key)``: no RNG state, so call order
        and engine choice cannot perturb replay.
        """
        payload = json.dumps(
            [self.seed, [repr(part) for part in key]], separators=(",", ":")
        )
        digest = hashlib.sha256(payload.encode()).digest()
        (word,) = struct.unpack(">Q", digest[:8])
        return word / float(1 << 64)

    def bernoulli(self, probability: float, *key: Any) -> bool:
        """Deterministic coin flip: True with ``probability`` for ``key``."""
        if probability <= 0.0:
            return False
        return self.uniform(*key) < probability

    # -- topology integration ------------------------------------------------

    def wrap_topology(self, topology: Any) -> Any:
        """A view of ``topology`` that routes around this plan's faults.

        Returns the topology unchanged when no link is failed or
        derated (so healthy plans share congestion caches with the
        no-fault path).
        """
        if not any(
            fault.failed or fault.derate < 1.0 for fault in self.links
        ):
            return topology
        from .network import FaultyTopology

        return FaultyTopology(topology, self)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "links": [
                {
                    "src": fault.src,
                    "dst": fault.dst,
                    "derate": fault.derate,
                    "failed": fault.failed,
                }
                for fault in self.links
            ],
            "nodes": [
                {"node": fault.node, "slowdown": fault.slowdown}
                for fault in self.nodes
            ],
            "deposits": [{"node": fault.node} for fault in self.deposits],
            "fragments": [
                {"loss": fault.loss, "corrupt": fault.corrupt}
                for fault in self.fragments
            ],
            "retry": self.retry.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultError(f"fault plan must be an object, got {payload!r}")
        unknown = set(payload) - {
            "seed", "links", "nodes", "deposits", "fragments", "retry",
        }
        if unknown:
            raise FaultError(
                f"unknown fault plan fields: {sorted(unknown)}"
            )
        try:
            return cls(
                seed=int(payload.get("seed", 0)),
                links=tuple(
                    LinkFault(**spec) for spec in payload.get("links", ())
                ),
                nodes=tuple(
                    NodeFault(**spec) for spec in payload.get("nodes", ())
                ),
                deposits=tuple(
                    DepositFault(**spec)
                    for spec in payload.get("deposits", ())
                ),
                fragments=tuple(
                    FragmentFault(**spec)
                    for spec in payload.get("fragments", ())
                ),
                retry=RetryPolicy.from_dict(payload.get("retry", {})),
            )
        except TypeError as exc:
            raise FaultError(f"malformed fault spec: {exc}") from exc

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--plan`` CLI input)."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan {path!r} is not valid JSON: {exc}")
        return cls.from_dict(payload)

    @classmethod
    def chaos(cls, seed: int = 7) -> "FaultPlan":
        """A default plan exercising every fault class at once.

        What ``python -m repro faults`` runs when no ``--plan`` file is
        given: the deposit engine is down everywhere (forcing the
        chained -> buffer-packing fallback), node 1 runs at 2/3 speed,
        every link is derated to 80%, and 2% of fragments are lost on
        the wire.
        """
        return cls(
            seed=seed,
            links=(LinkFault(derate=0.8),),
            nodes=(NodeFault(node=1, slowdown=1.5),),
            deposits=(DepositFault(),),
            fragments=(FragmentFault(loss=0.02),),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def describe(self) -> List[str]:
        """One human-readable line per injected fault."""
        lines: List[str] = []
        for link in self.links:
            where = (
                "every link" if link.src is None
                else f"link {link.src}->{link.dst}"
            )
            what = "failed" if link.failed else f"derated to {link.derate:g}"
            lines.append(f"{where} {what}")
        for node in self.nodes:
            lines.append(f"node {node.node} slowed {node.slowdown:g}x")
        for deposit in self.deposits:
            where = (
                "every node" if deposit.node is None
                else f"node {deposit.node}"
            )
            lines.append(f"deposit engine unavailable on {where}")
        for fragment in self.fragments:
            parts = []
            if fragment.loss:
                parts.append(f"loss {fragment.loss:g}")
            if fragment.corrupt:
                parts.append(f"corruption {fragment.corrupt:g}")
            lines.append("fragment " + " + ".join(parts or ["(no-op)"]))
        return lines


_ACTIVE: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_active_fault_plan", default=None
)


def current_fault_plan() -> Optional[FaultPlan]:
    """The fault plan installed for this context, or ``None`` (healthy)."""
    return _ACTIVE.get()


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the ``with`` block.

    >>> with injecting(FaultPlan(seed=1)) as plan:
    ...     assert current_fault_plan() is plan
    >>> current_fault_plan() is None
    True
    """
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)
