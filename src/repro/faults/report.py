"""The ``python -m repro faults`` report format and its validator.

The faults CLI emits one JSON object comparing a nominal (fault-free)
run against the same operation under a fault plan.  The CI chaos job
replays ``--seed 7`` and validates the emitted payload with
:func:`validate_faults_report`, so the schema below is load-bearing:

* ``schema`` — format tag, currently ``"repro-faults-report/1"``;
* ``machine`` / ``operation`` / ``style`` / ``nbytes`` — what ran;
* ``seed`` / ``plan`` — the full fault plan (replayable verbatim via
  ``--plan``);
* ``nominal`` / ``degraded`` — ``{mbps, ns, phase_ns}`` for each run,
  with ``degraded`` additionally carrying ``retries`` and an optional
  ``fallback`` (a :class:`~repro.faults.degrade.DegradedResult` dict);
* ``delta`` — throughput lost to the faults;
* ``counters`` — the fault-related trace counters of the degraded run.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["SCHEMA", "validate_faults_report"]

SCHEMA = "repro-faults-report/1"

_RUN_KEYS = ("mbps", "ns", "phase_ns")


def _check_run(run: Any, name: str, errors: List[str]) -> None:
    if not isinstance(run, dict):
        errors.append(f"{name}: not an object")
        return
    for key in _RUN_KEYS:
        if key not in run:
            errors.append(f"{name}.{key}: missing")
    for key in ("mbps", "ns"):
        value = run.get(key)
        if key in run and (not isinstance(value, (int, float)) or value <= 0):
            errors.append(f"{name}.{key}: must be a positive number")
    phase_ns = run.get("phase_ns")
    if phase_ns is not None:
        if not isinstance(phase_ns, dict):
            errors.append(f"{name}.phase_ns: not an object")
        else:
            for phase, ns in phase_ns.items():
                if not isinstance(ns, (int, float)) or ns < 0:
                    errors.append(
                        f"{name}.phase_ns[{phase!r}]: must be >= 0"
                    )


def validate_faults_report(payload: Any) -> List[str]:
    """Structural errors in a faults report (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(
            f"schema: expected {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("machine", "operation", "style"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            errors.append(f"{key}: missing or not a string")
    if not isinstance(payload.get("nbytes"), int) or payload.get("nbytes", 0) <= 0:
        errors.append("nbytes: must be a positive integer")
    if not isinstance(payload.get("seed"), int):
        errors.append("seed: must be an integer")
    plan = payload.get("plan")
    if not isinstance(plan, dict):
        errors.append("plan: not an object")
    else:
        from .spec import FaultPlan

        try:
            FaultPlan.from_dict(plan)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            errors.append(f"plan: not replayable ({exc})")
    _check_run(payload.get("nominal"), "nominal", errors)
    degraded = payload.get("degraded")
    _check_run(degraded, "degraded", errors)
    if isinstance(degraded, dict):
        if "retries" in degraded and (
            not isinstance(degraded["retries"], int)
            or degraded["retries"] < 0
        ):
            errors.append("degraded.retries: must be a non-negative integer")
        fallback = degraded.get("fallback")
        if fallback is not None:
            if not isinstance(fallback, dict):
                errors.append("degraded.fallback: not an object")
            else:
                for key in ("fault", "requested", "fallback"):
                    if not isinstance(fallback.get(key), str):
                        errors.append(
                            f"degraded.fallback.{key}: missing or not a string"
                        )
                for key in ("nominal_mbps", "degraded_mbps"):
                    if not isinstance(fallback.get(key), (int, float)):
                        errors.append(
                            f"degraded.fallback.{key}: missing or not a number"
                        )
    delta = payload.get("delta")
    if not isinstance(delta, dict) or "throughput_pct" not in delta:
        errors.append("delta.throughput_pct: missing")
    counters = payload.get("counters")
    if counters is not None and not isinstance(counters, dict):
        errors.append("counters: not an object")
    return errors
