"""Degradation records: what broke, what we did instead, what it cost.

Graceful degradation is only useful if it is *legible*.  When a fault
plan takes away the deposit engine mid-plan, the runtime silently
switching to buffer-packing would look exactly like a mis-calibrated
model.  A :class:`DegradedResult` rides on the
:class:`~repro.runtime.engine.MeasuredTransfer` instead, naming the
fault, the fallback taken, and the throughput the fallback gave up
relative to the nominal (fault-free) path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["DegradedResult"]


@dataclass(frozen=True)
class DegradedResult:
    """One graceful-degradation event.

    Attributes:
        fault: What went wrong ("deposit-engine-unavailable").
        requested: The implementation the caller asked for.
        fallback: The implementation actually used.
        nominal_mbps: Throughput of the requested path without faults.
        degraded_mbps: Throughput actually delivered.
    """

    fault: str
    requested: str
    fallback: str
    nominal_mbps: float
    degraded_mbps: float

    @property
    def throughput_delta(self) -> float:
        """Fraction of nominal throughput lost to the degradation."""
        if self.nominal_mbps <= 0.0:
            return 0.0
        return 1.0 - self.degraded_mbps / self.nominal_mbps

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.fault,
            "requested": self.requested,
            "fallback": self.fallback,
            "nominal_mbps": self.nominal_mbps,
            "degraded_mbps": self.degraded_mbps,
            "throughput_delta": self.throughput_delta,
        }

    def __str__(self) -> str:
        return (
            f"{self.fault}: {self.requested} -> {self.fallback} "
            f"({self.degraded_mbps:.1f} MB/s, "
            f"-{self.throughput_delta * 100.0:.1f}% vs nominal "
            f"{self.nominal_mbps:.1f} MB/s)"
        )
