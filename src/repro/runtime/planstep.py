"""Executing a whole communication plan as one step.

:class:`CommunicationStep` runs a *uniform* step — every node sends
the same message shape, which fits transposes and ghost exchanges.
Real irregular plans (FEM halos) mix message sizes and patterns, and
the step ends when the most loaded node finishes.  :class:`PlanStep`
measures exactly that:

* each distinct (x, y, size-bucket) shape is measured once through the
  point-to-point runtime (under the step's scheduled congestion and
  duplex contention);
* each node's cost is the sum of its messages' steady-state costs (its
  processor is the serializing resource) plus per-message
  synchronization;
* the step time is the slowest node's cost plus one pipeline fill.

The per-node throughput metric matches Table 6's "MB/s per node":
the slowest node's payload over the step time.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..compiler.commgen import CommPlan
from ..core.operations import OperationStyle
from .collective import StepResult
from .engine import CommRuntime, MeasuredTransfer

__all__ = ["PlanStep"]


def _size_bucket(nbytes: int) -> int:
    """Round message sizes to 2x buckets so shape sampling stays small."""
    bucket = 64
    while bucket < nbytes:
        bucket *= 2
    return bucket


class PlanStep:
    """Measure an arbitrary communication plan end to end.

    Args:
        runtime: The point-to-point runtime to drive.
        plan: The communication plan (ops need patterns and sizes only).
        scheduled: Phase-schedule the pattern for congestion purposes.
        schedule_slack: Multiplier on the scheduled congestion.
        sync_per_message_ns: Non-pipelinable per-message cost.
    """

    def __init__(
        self,
        runtime: CommRuntime,
        plan: CommPlan,
        scheduled: bool = True,
        schedule_slack: float = 1.0,
        sync_per_message_ns: float = 20_000.0,
    ) -> None:
        if not plan.ops:
            raise ValueError(f"plan {plan.name!r} is empty")
        self.runtime = runtime
        self.plan = plan
        self.scheduled = scheduled
        self.schedule_slack = schedule_slack
        self.sync_per_message_ns = sync_per_message_ns

    # -- congestion ---------------------------------------------------------

    def congestion(self) -> float:
        machine = self.runtime.machine
        flows = self.plan.flows()
        n_nodes = max(max(flow) for flow in flows) + 1
        model = machine.network_model(n_nodes)
        if not self.scheduled:
            return model.congestion_for(flows)
        from ..netsim.schedule import scheduled_congestion

        per_phase = scheduled_congestion(machine.topology(n_nodes), flows)
        floor = max(1, machine.network.port_sharing)
        return float(max(per_phase, floor)) * self.schedule_slack

    # -- execution ------------------------------------------------------------

    def _sample_shapes(
        self, style: OperationStyle, congestion: float
    ) -> Dict[Tuple, MeasuredTransfer]:
        samples: Dict[Tuple, MeasuredTransfer] = {}
        for op in self.plan.ops:
            key = (op.x, op.y, _size_bucket(op.nbytes))
            if key not in samples:
                samples[key] = self.runtime.transfer(
                    op.x,
                    op.y,
                    key[2],
                    style=style,
                    congestion=congestion,
                    duplex=True,
                )
        return samples

    def _steady_ns(self, sample: MeasuredTransfer, nbytes: int) -> float:
        """Steady-state cost of one message of ``nbytes``.

        Scales the sampled bucket's bottleneck-resource busy time to
        the actual size (costs are near-linear within a 2x bucket) and
        merges the send/receive processor loads as in
        :class:`CommunicationStep`.
        """
        busy = dict(sample.resource_busy_ns)
        cpu = busy.pop("sender_cpu", 0.0) + busy.pop("receiver_cpu", 0.0)
        # Same precedence trap as CommunicationStep._steady_state_ns:
        # the ``or``-fallback must apply to the max, not the list tail.
        bottleneck = max([cpu, *busy.values()])
        if bottleneck <= 0.0:
            bottleneck = sample.ns
        scaled = bottleneck * (nbytes / sample.nbytes)
        efficiency = self.runtime.machine.quirks.runtime_efficiency
        return scaled / efficiency + self.sync_per_message_ns

    def run(self, style: OperationStyle = OperationStyle.CHAINED) -> StepResult:
        congestion = self.congestion()
        samples = self._sample_shapes(style, congestion)

        node_ns: Dict[int, float] = {}
        node_bytes: Dict[int, int] = {}
        node_messages: Dict[int, int] = {}
        for op in self.plan.ops:
            sample = samples[(op.x, op.y, _size_bucket(op.nbytes))]
            cost = self._steady_ns(sample, op.nbytes)
            node_ns[op.src] = node_ns.get(op.src, 0.0) + cost
            node_bytes[op.src] = node_bytes.get(op.src, 0) + op.nbytes
            node_messages[op.src] = node_messages.get(op.src, 0) + 1

        slowest = max(node_ns, key=node_ns.get)
        # One pipeline fill: the first message's full latency beyond its
        # steady-state share.
        first_op = self.plan.messages_from(slowest)[0]
        first_sample = samples[(first_op.x, first_op.y, _size_bucket(first_op.nbytes))]
        fill_ns = max(
            0.0,
            first_sample.ns - self._steady_ns(first_sample, first_sample.nbytes),
        )
        step_ns = node_ns[slowest] + fill_ns

        return StepResult(
            per_node_mbps=node_bytes[slowest] / step_ns * 1000.0,
            step_ns=step_ns,
            congestion=congestion,
            messages_per_node=node_messages[slowest],
            bytes_per_node=node_bytes[slowest],
            sample=first_sample,
        )
