"""Collective communication steps over a node partition.

The paper's application measurements (Section 6, Table 6) report
"MB/s per node" for a whole communication step — every node sending
and receiving simultaneously under the pattern's network congestion.
:class:`CommunicationStep` drives the point-to-point runtime with:

* the congestion the traffic pattern produces on the machine's
  topology (or the scheduled value for patterns like AAPC, which the
  T3D can run near the port-sharing floor per Hinrichs et al. [8]);
* duplex contention at each node (everyone sends and receives);
* the per-destination message size, so library per-message overheads
  scale with the number of peers, not with the data volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.operations import OperationStyle
from ..core.patterns import AccessPattern
from ..faults.degrade import DegradedResult
from ..faults.spec import FaultPlan, current_fault_plan
from ..trace.tracer import current_tracer
from .engine import CommRuntime, MeasuredTransfer

__all__ = ["StepResult", "CommunicationStep"]

Flow = Tuple[int, int]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one collective communication step.

    Attributes:
        per_node_mbps: Payload throughput per node — the Table 6 metric.
        step_ns: Wall-clock time of the whole step.
        congestion: The network congestion used.
        messages_per_node: How many peer messages each node handled.
        bytes_per_node: Payload each node sent.
        sample: The underlying point-to-point measurement.
    """

    per_node_mbps: float
    step_ns: float
    congestion: float
    messages_per_node: int
    bytes_per_node: int
    sample: MeasuredTransfer

    @property
    def degraded(self) -> Optional[DegradedResult]:
        """The sample transfer's degradation record, if any."""
        return self.sample.degraded

    @property
    def retries(self) -> int:
        """Retransmissions the sample transfer paid for."""
        return self.sample.retries


class CommunicationStep:
    """A pattern of simultaneous transfers across a partition.

    Args:
        runtime: The point-to-point runtime to drive.
        flows: The (src, dst) traffic pattern.
        x / y: Access patterns of each transfer's source and
            destination sides.
        bytes_per_flow: Payload per (src, dst) pair.
        scheduled: If True, assume the step is phase-scheduled to avoid
            link contention (complete exchanges on T3D tori can be,
            per the paper); congestion then falls to the machine's
            access-point floor instead of the raw worst-link load.
    """

    def __init__(
        self,
        runtime: CommRuntime,
        flows: Sequence[Flow],
        x: AccessPattern,
        y: AccessPattern,
        bytes_per_flow: int,
        scheduled: bool = True,
        schedule_slack: float = 1.0,
        sync_per_message_ns: float = 20_000.0,
    ) -> None:
        if not flows:
            raise ValueError("a communication step needs at least one flow")
        if schedule_slack < 1.0:
            raise ValueError("schedule_slack cannot beat a perfect schedule")
        self.runtime = runtime
        self.flows = list(flows)
        self.x = x
        self.y = y
        self.bytes_per_flow = bytes_per_flow
        self.scheduled = scheduled
        self.schedule_slack = schedule_slack
        self.sync_per_message_ns = sync_per_message_ns

    def _fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan governing this step, ``None`` when healthy.

        Mirrors :meth:`CommRuntime.transfer`'s fast exit: an explicit
        runtime plan (even an empty one) shadows the context plan, and
        emptiness — precomputed on the plan — resolves to ``None`` here
        so no per-flow fault bookkeeping runs under a no-op plan.
        """
        if self.runtime.faults is not None:
            return self.runtime._standing_plan
        plan = current_fault_plan()
        if plan is not None and plan.is_empty():
            return None
        return plan

    def _congestion(self, plan: Optional[FaultPlan] = None) -> float:
        model = self.runtime.machine.network_model()
        if plan is not None:
            # Failed links reroute the pattern's flows and derated ones
            # weight their load; both lift the worst-link congestion.
            model.topology = plan.wrap_topology(model.topology)
        if self.scheduled:
            # Phase-schedule the pattern (shift schedule for complete
            # exchanges, greedy otherwise) and take the worst per-phase
            # link load; the access-point sharing floor still applies.
            from ..netsim.schedule import scheduled_congestion

            topology = self.runtime.machine.topology(
                max(max(flow) for flow in self.flows) + 1
            )
            if plan is not None:
                topology = plan.wrap_topology(topology)
            per_phase = scheduled_congestion(topology, self.flows)
            floor = max(1, self.runtime.machine.network.port_sharing)
            return float(max(per_phase, floor)) * self.schedule_slack
        return model.congestion_for(self.flows)

    def _sample_flow(self, plan: Optional[FaultPlan]) -> Flow:
        """The flow that paces the step under ``plan``.

        A collective step finishes when its slowest participant does,
        so the representative point-to-point sample is taken between
        the endpoints the plan hurts most (largest combined slowdown;
        first such flow in pattern order for determinism).
        """
        if plan is None:
            return self.flows[0]
        return max(
            self.flows,
            key=lambda flow: (
                plan.node_slowdown(flow[0]) * plan.node_slowdown(flow[1]),
                not plan.deposit_available(flow[1]),
            ),
        )

    def _messages_per_node(self) -> int:
        """Messages the most-loaded node handles during the step.

        A duplex node overlaps one send with one receive, so the
        number of message slots a node serializes through is
        ``max(sends, receives)`` — *not* its send count alone.
        Counting only the send side undercounts fan-in patterns
        (N senders, one receiver: the hot node receives N messages but
        sends none) and overstates the hot node's throughput.
        """
        sends: dict = {}
        receives: dict = {}
        for src, dst in self.flows:
            sends[src] = sends.get(src, 0) + 1
            receives[dst] = receives.get(dst, 0) + 1
        nodes = sends.keys() | receives.keys()
        return max(
            max(sends.get(node, 0), receives.get(node, 0)) for node in nodes
        )

    def _steady_state_ns(self, sample: MeasuredTransfer) -> float:
        """Per-message cost once the message stream is pipelined.

        Every node both sends and receives, and a node has one
        processor, so its send-side and receive-side software costs
        land on the same resource and add up; background engines and
        the wire overlap.  Each message also pays a synchronization
        cost (partner switch, flow-control handshake) that cannot be
        pipelined away.
        """
        busy = dict(sample.resource_busy_ns)
        cpu = busy.pop("sender_cpu", 0.0) + busy.pop("receiver_cpu", 0.0)
        # NB: not ``max([cpu] + list(...) or [fallback])`` — ``+`` binds
        # tighter than ``or``, which made the fallback dead code.  An
        # all-zero busy profile (fully hardware-paced transfer) must
        # fall back to the end-to-end time, not a 0 ns bottleneck.
        bottleneck = max([cpu, *busy.values()])
        if bottleneck <= 0.0:
            bottleneck = sample.ns
        efficiency = self.runtime.machine.quirks.runtime_efficiency
        return bottleneck / efficiency + self.sync_per_message_ns

    def run(self, style: OperationStyle = OperationStyle.CHAINED) -> StepResult:
        """Execute the step and report per-node throughput."""
        plan = self._fault_plan()
        congestion = self._congestion(plan)
        messages = self._messages_per_node()
        src: Optional[int] = None
        dst: Optional[int] = None
        if plan is not None:
            src, dst = self._sample_flow(plan)
        sample = self.runtime.transfer(
            self.x,
            self.y,
            self.bytes_per_flow,
            style=style,
            congestion=congestion,
            duplex=True,
            src=src,
            dst=dst,
        )
        # The first message pays full end-to-end latency; subsequent
        # messages pipeline behind it at the steady-state cost.
        steady_ns = self._steady_state_ns(sample)
        step_ns = sample.ns + self.sync_per_message_ns + (messages - 1) * steady_ns
        bytes_per_node = self.bytes_per_flow * messages
        tracer = current_tracer()
        if tracer is not None:
            tracer.count("step.runs")
            tracer.count("step.messages_per_node", messages)
            if sample.degraded is not None:
                tracer.count("step.degraded")
            tracer.span(
                "first-message",
                track="step",
                start_ns=0.0,
                duration_ns=sample.ns,
                category="step",
                nbytes=self.bytes_per_flow,
                congestion=congestion,
            )
            tracer.span(
                "sync",
                track="step",
                start_ns=sample.ns,
                duration_ns=self.sync_per_message_ns,
                category="step",
            )
            if messages > 1:
                tracer.span(
                    "steady-state",
                    track="step",
                    start_ns=sample.ns + self.sync_per_message_ns,
                    duration_ns=(messages - 1) * steady_ns,
                    category="step",
                    messages=messages - 1,
                    steady_ns_per_message=steady_ns,
                )
        return StepResult(
            per_node_mbps=bytes_per_node / step_ns * 1000.0,
            step_ns=step_ns,
            congestion=congestion,
            messages_per_node=messages,
            bytes_per_node=bytes_per_node,
            sample=sample,
        )
