"""The end-to-end communication runtime (simulated "live" measurements).

Where :mod:`repro.core` predicts throughput from composition rules,
this engine *executes* a transfer the way the machines' runtimes did
and reports what a wall-clock measurement would see:

* **software phases** (gather / system-buffer / scatter copies) are
  staged at message granularity — a packing library packs the whole
  message before the first byte leaves the node;
* the **hardware middle** (load-send or DMA, wire, deposit/receive)
  streams chunk by chunk through FIFOs, so within it the slowest unit
  paces the rest;
* chained transfers are a single hardware-paced phase.

Sequential phases reproduce the model's harmonic rule; within-phase
streaming reproduces the min rule.  On top the runtime charges what
the model deliberately ignores: library per-message/per-fragment
costs, pipeline fill, duplex memory contention, and machine quirks
(the Paragon's unusable pipelined loads, bus arbitration).  A single
documented ``runtime_efficiency`` scalar stands in for the residual
unmodeled costs (cache invalidation, synchronization, timer reads)
that make real measurements land 10-20% under the model (Figures 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..core.errors import (
    CalibrationError,
    CompositionError,
    TransferAbortedError,
)
from ..core.operations import DepositSupport, OperationStyle
from ..core.patterns import CONTIGUOUS, AccessPattern
from ..core.transfers import TransferKind
from ..faults.degrade import DegradedResult
from ..faults.policy import recovery_charge
from ..faults.spec import FaultPlan, current_fault_plan
from ..machines.base import Machine
from ..memsim.config import WORD_BYTES
from ..trace.tracer import current_tracer
from .libraries import LibraryProfile, lowlevel_profile
from .stages import Stage, StagePipeline

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic
    from ..core.calibration import ThroughputTable

__all__ = ["MeasuredTransfer", "CommRuntime", "CPU_CHUNK_OVERHEAD_NS", "measure_q"]

#: Fixed software cost a processor pays per pipeline chunk (loop setup,
#: flow control).  Background engines (DMA, deposit, network) pace
#: themselves and pay nothing per chunk.
CPU_CHUNK_OVERHEAD_NS = 1500.0

_FIXED = AccessPattern.fixed()


@dataclass(frozen=True)
class MeasuredTransfer:
    """What the runtime measured for one point-to-point transfer.

    Attributes:
        mbps: End-to-end payload throughput.
        ns: Wall-clock time including library overheads.
        phase_ns: Time spent in each sequential phase, by name.
        memory_capped: Whether the duplex memory cap bound the result.
        diagnostics: Static-analyzer findings for the executed
            composition, populated when the transfer was requested with
            ``analyze=True``.
        degraded: The graceful-degradation record when an injected
            fault forced a fallback (chained -> buffer-packing);
            ``None`` on the nominal path.
        retries: Fragment/message retransmissions charged by the
            fault plan's retry policy.
    """

    mbps: float
    ns: float
    nbytes: int
    style: OperationStyle
    library: str
    congestion: float
    phase_ns: Tuple[Tuple[str, float], ...]
    resource_busy_ns: Tuple[Tuple[str, float], ...] = ()
    memory_capped: bool = False
    diagnostics: Tuple["Diagnostic", ...] = ()
    degraded: Optional[DegradedResult] = None
    retries: int = 0

    def bottleneck_busy_ns(self) -> float:
        """Busy time of the most-loaded resource for this message.

        When an application issues many messages back to back, the
        steady-state cost per message is this figure, not the full
        end-to-end latency: other resources overlap with the next
        message (software pipelining across messages).
        """
        if not self.resource_busy_ns:
            return self.ns
        return max(busy for __, busy in self.resource_busy_ns)

    def __str__(self) -> str:
        return (
            f"{self.library} {self.style.value} {self.nbytes} B: "
            f"{self.mbps:.1f} MB/s"
        )


@dataclass(frozen=True)
class _Phase:
    """A sequential phase: stages pipelined at ``chunk_bytes`` grain."""

    name: str
    stages: Tuple[Stage, ...]
    chunk_bytes: int


class CommRuntime:
    """Executes communication operations on one machine.

    Args:
        machine: The machine to run on.
        library: Software profile; defaults to the fastest low-level
            library (libsm.a / SUNMOS libnx).
        rates: ``"simulated"`` (default) takes stage rates from the
            memory-system simulator — the full bottom-up path — while
            ``"paper"`` uses the published calibration.
        table: An explicit calibration table overriding ``rates``.
            Batch executors (the sweep engine) derive one table per
            machine and hand it to every runtime they build instead of
            re-deriving it per construction; passing the table the
            ``rates`` source would have produced changes nothing else.
        congestion: Default network congestion for transfers that
            don't specify one (defaults to the machine's typical
            value, the paper's bold Table 4 column).
        faults: A standing :class:`~repro.faults.spec.FaultPlan` for
            every transfer this runtime executes.  When ``None``, the
            context-installed plan (:func:`repro.faults.injecting`)
            applies, if any.
    """

    def __init__(
        self,
        machine: Machine,
        library: Optional[LibraryProfile] = None,
        rates: str = "simulated",
        congestion: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        table: Optional["ThroughputTable"] = None,
    ) -> None:
        self.machine = machine
        self.library = library or lowlevel_profile()
        self.faults = faults
        # Faults-off fast exit: an explicit-but-empty plan behaves
        # nominally, so the emptiness test is paid once here, not on
        # every transfer.  ``None`` means "consult the context plan".
        self._standing_plan: Optional[FaultPlan] = (
            faults if faults is not None and not faults.is_empty() else None
        )
        if table is not None:
            self.table = table
        elif rates == "simulated":
            self.table = machine.simulated_table()
        elif rates == "paper":
            self.table = machine.paper_table()
        else:
            raise ValueError(f"unknown rate source {rates!r}")
        self.default_congestion = (
            congestion
            if congestion is not None
            else machine.network.default_congestion
        )

    # -- rate lookups -----------------------------------------------------

    def _rate(self, kind: TransferKind, read, write) -> float:
        return self.table.lookup_kind(kind, read, write)

    def _network_rate(self, adp: bool, congestion: float) -> float:
        from ..netsim.network import FramingMode

        model = self.machine.network_model()
        mode = FramingMode.ADDRESS_DATA_PAIRS if adp else FramingMode.DATA_ONLY
        return model.rate(mode, congestion=congestion)

    def _send_rate(self, read: AccessPattern) -> float:
        scale = self.machine.quirks.send_rate_scale
        return self._rate(TransferKind.LOAD_SEND, read, _FIXED) * scale

    def _cpu_stage(self, name: str, rate: float, resource: str) -> Stage:
        return Stage(name, rate, resource, chunk_overhead_ns=CPU_CHUNK_OVERHEAD_NS)

    # -- phase construction ---------------------------------------------------

    def _middle_stages(
        self, congestion: float, deposit_ok: bool = True
    ) -> List[Stage]:
        """The contiguous-block hardware path of a packing transfer.

        ``deposit_ok=False`` (an injected deposit-engine fault) lands
        the receive on the processor instead of the deposit engine.
        """
        caps = self.machine.capabilities
        if caps.dma_send:
            send = Stage(
                "send-dma",
                self._rate(TransferKind.FETCH_SEND, CONTIGUOUS, _FIXED),
                "sender_dma",
                startup_ns=self.machine.node.dma.setup_ns,
            )
        else:
            send = self._cpu_stage("send", self._send_rate(CONTIGUOUS), "sender_cpu")
        network = Stage(
            "network", self._network_rate(adp=False, congestion=congestion), "network"
        )
        if caps.deposit is not DepositSupport.NONE and deposit_ok:
            receive = Stage(
                "receive-deposit",
                self._rate(TransferKind.RECEIVE_DEPOSIT, _FIXED, CONTIGUOUS),
                "receiver_deposit",
            )
        else:
            receive = self._cpu_stage(
                "receive", self._receive_store_rate(), "receiver_cpu"
            )
        return [send, network, receive]

    def _receive_store_rate(self) -> float:
        """Processor receive rate, even where the machine never uses one.

        Machines whose receives always ride the deposit engine (the
        T3D) have no calibrated ``R`` entry; a processor receive-store
        is a load-from-network/store loop, so the contiguous copy rate
        is the honest stand-in when a fault forces one.
        """
        try:
            return self._rate(TransferKind.RECEIVE_STORE, _FIXED, CONTIGUOUS)
        except CalibrationError:
            return self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS)

    def _packing_phases(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        congestion: float,
        deposit_ok: bool = True,
    ) -> List[_Phase]:
        lib = self.library
        fragment = min(nbytes, lib.fragment_bytes)
        stream_chunk = min(
            self.machine.quirks.pipeline_chunk_words * WORD_BYTES, fragment
        )
        phases: List[_Phase] = []

        pack: List[Stage] = []
        if lib.pack_even_contiguous or not x.is_contiguous:
            pack.append(
                self._cpu_stage(
                    "gather",
                    self._rate(TransferKind.COPY, x, CONTIGUOUS),
                    "sender_cpu",
                )
            )
        if lib.system_buffer_copies >= 1:
            pack.append(
                self._cpu_stage(
                    "sysbuf-send",
                    self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS),
                    "sender_cpu",
                )
            )
        if pack:
            phases.append(_Phase("pack", tuple(pack), fragment))

        phases.append(
            _Phase(
                "transfer",
                tuple(self._middle_stages(congestion, deposit_ok=deposit_ok)),
                stream_chunk,
            )
        )

        unpack: List[Stage] = []
        if lib.system_buffer_copies >= 2:
            unpack.append(
                self._cpu_stage(
                    "sysbuf-receive",
                    self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS),
                    "receiver_cpu",
                )
            )
        if lib.pack_even_contiguous or not y.is_contiguous:
            unpack.append(
                self._cpu_stage(
                    "scatter",
                    self._rate(TransferKind.COPY, CONTIGUOUS, y),
                    "receiver_cpu",
                )
            )
        if unpack:
            phases.append(_Phase("unpack", tuple(unpack), fragment))
        return phases

    def _chained_uses_deposit(self, y: AccessPattern) -> bool:
        """Whether the nominal chained receiver is the deposit engine."""
        caps = self.machine.capabilities
        return caps.deposit is DepositSupport.ANY or (
            caps.deposit is DepositSupport.CONTIGUOUS and y.is_contiguous
        )

    def _chained_phases(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        congestion: float,
        deposit_ok: bool = True,
    ) -> List[_Phase]:
        caps = self.machine.capabilities
        if not self.library.supports_chained:
            raise CompositionError(
                f"library {self.library.name!r} has no chained/put-get path"
            )
        adp = not (x.is_contiguous and y.is_contiguous)
        stages = [
            self._cpu_stage("send", self._send_rate(x), "sender_cpu"),
            Stage("network", self._network_rate(adp, congestion), "network"),
        ]
        if deposit_ok and self._chained_uses_deposit(y):
            stages.append(
                Stage(
                    "deposit",
                    self._rate(TransferKind.RECEIVE_DEPOSIT, _FIXED, y),
                    "receiver_deposit",
                )
            )
        elif caps.coprocessor_receive:
            stages.append(
                self._cpu_stage(
                    "receive-coproc",
                    self._rate(TransferKind.RECEIVE_STORE, _FIXED, y),
                    "receiver_coproc",
                )
            )
        else:
            raise CompositionError(
                f"machine {self.machine.name!r} has no background receiver "
                f"for pattern {y}"
            )
        chunk = min(
            self.machine.quirks.pipeline_chunk_words * WORD_BYTES,
            self.library.fragment_bytes,
            nbytes,
        )
        return [_Phase("chained", tuple(stages), chunk)]

    def phases(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        style: OperationStyle = OperationStyle.CHAINED,
        congestion: Optional[float] = None,
        deposit_ok: bool = True,
    ) -> List[_Phase]:
        """The stage pipeline a transfer would execute, without running it.

        This is the static view the plan verifier lowers into its IR:
        the same ``_Phase`` list :meth:`transfer` builds, with no
        measurement, fault charging or degradation applied.  Raises
        :class:`CompositionError` exactly when :meth:`transfer` would.
        """
        if nbytes <= 0:
            raise ValueError(f"need a positive transfer size, got {nbytes}")
        if congestion is None:
            congestion = self.default_congestion
        style = (
            style
            if isinstance(style, OperationStyle)
            else OperationStyle(style)
        )
        if style is OperationStyle.BUFFER_PACKING:
            return self._packing_phases(
                x, y, nbytes, congestion, deposit_ok=deposit_ok
            )
        return self._chained_phases(
            x, y, nbytes, congestion, deposit_ok=deposit_ok
        )

    # -- execution ----------------------------------------------------------------

    def transfer(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        style: OperationStyle = OperationStyle.CHAINED,
        congestion: Optional[float] = None,
        duplex: bool = False,
        analyze: bool = False,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> MeasuredTransfer:
        """Measure one point-to-point ``xQy`` transfer of ``nbytes``.

        Args:
            x / y: Source and destination access patterns.
            nbytes: Payload size.
            style: Buffer-packing or chained.
            congestion: Network congestion this transfer experiences;
                defaults to the machine's typical value.
            duplex: Whether the node simultaneously sends and receives
                (all-to-all, shifts): memory-touching stages slow by
                the bus-interleave quirk and the duplex memory cap
                applies.
            analyze: Run the static linter over the model-level
                composition this transfer executes and attach its
                diagnostics to the result.
            src / dst: Node ids of the endpoints.  Only consulted by an
                active fault plan (per-node slowdowns, per-link
                derates, per-node deposit faults); anonymous transfers
                see only the plan's global faults.

        When a fault plan is active (runtime ``faults=`` argument or
        :func:`repro.faults.injecting`) and it marks the deposit engine
        unavailable, a chained transfer degrades to buffer-packing
        instead of raising; the result's ``degraded`` field names the
        fault, the fallback and the throughput delta.  Fragment faults
        charge ``retry``/``backoff`` phases per the plan's
        :class:`~repro.faults.policy.RetryPolicy`.
        """
        if nbytes <= 0:
            raise ValueError(f"need a positive transfer size, got {nbytes}")
        if congestion is None:
            congestion = self.default_congestion
        style = (
            style
            if isinstance(style, OperationStyle)
            else OperationStyle(style)
        )
        # Fast exit before any per-phase fault bookkeeping: an explicit
        # plan (even an empty one) shadows the context plan, and an
        # empty plan in either position resolves to "no faults" here,
        # once, so _execute never consults a plan that injects nothing.
        if self.faults is not None:
            plan = self._standing_plan
        else:
            plan = current_fault_plan()
            if plan is not None and plan.is_empty():
                plan = None
        return self._execute(
            x, y, nbytes, style, congestion, duplex, analyze, plan, src, dst
        )

    def _execute(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        style: OperationStyle,
        congestion: float,
        duplex: bool,
        analyze: bool,
        plan: Optional[FaultPlan],
        src: Optional[int],
        dst: Optional[int],
    ) -> MeasuredTransfer:
        requested = style
        caps = self.machine.capabilities
        deposit_ok = plan.deposit_available(dst) if plan is not None else True
        fallen_back: Optional[Tuple[str, str]] = None  # (fault, fallback)
        if style is OperationStyle.BUFFER_PACKING:
            phases = self._packing_phases(
                x, y, nbytes, congestion, deposit_ok=deposit_ok
            )
            if not deposit_ok and caps.deposit is not DepositSupport.NONE:
                fallen_back = ("deposit-engine-unavailable", "receive-store")
        else:
            try:
                phases = self._chained_phases(
                    x, y, nbytes, congestion, deposit_ok=deposit_ok
                )
                if not deposit_ok and self._chained_uses_deposit(y):
                    fallen_back = (
                        "deposit-engine-unavailable",
                        "coprocessor-receive",
                    )
            except CompositionError:
                if (
                    deposit_ok
                    or not caps.chained_receiver_available
                ):
                    raise
                # Graceful degradation, the centrepiece: the fault took
                # the only background receiver, so re-plan the transfer
                # as buffer-packing instead of crashing.
                style = OperationStyle.BUFFER_PACKING
                phases = self._packing_phases(
                    x, y, nbytes, congestion, deposit_ok=deposit_ok
                )
                fallen_back = ("deposit-engine-unavailable", "buffer-packing")

        if duplex:
            phases = [self._derate_for_duplex(phase) for phase in phases]

        if plan is not None:
            phases = self._apply_fault_derates(phases, plan, src, dst)

        tracer = current_tracer()
        total_ns = 0.0
        phase_times: List[Tuple[str, float]] = []
        resource_busy: dict = {}
        for phase in phases:
            pipeline = StagePipeline(list(phase.stages))
            if tracer is not None:
                # Chunk spans inside the pipeline are clocked from the
                # phase start; shift them onto the transfer timeline.
                with tracer.shifted(total_ns):
                    result = pipeline.run(
                        nbytes,
                        chunk_bytes=phase.chunk_bytes,
                        trace_phase=phase.name,
                    )
            else:
                result = pipeline.run(nbytes, chunk_bytes=phase.chunk_bytes)
            if tracer is not None:
                tracer.span(
                    phase.name,
                    track="phase",
                    start_ns=total_ns,
                    duration_ns=result.ns,
                    category="phase",
                    chunk_bytes=phase.chunk_bytes,
                    stages=[stage.name for stage in phase.stages],
                )
            total_ns += result.ns
            phase_times.append((phase.name, result.ns))
            for label, stage in zip(pipeline.labels, pipeline.stages):
                busy = result.stage_busy_ns[label]
                resource_busy[stage.resource] = (
                    resource_busy.get(stage.resource, 0.0) + busy
                )

        fragments = -(-nbytes // self.library.fragment_bytes)
        library_ns = (
            self.library.per_message_ns + fragments * self.library.per_fragment_ns
        )
        if tracer is not None and library_ns > 0.0:
            tracer.span(
                "library-overhead",
                track="phase",
                start_ns=total_ns,
                duration_ns=library_ns,
                category="phase",
                library=self.library.name,
                per_message_ns=self.library.per_message_ns,
                fragments=fragments,
            )
            tracer.span(
                "library-overhead",
                track="sender_cpu",
                start_ns=total_ns,
                duration_ns=library_ns,
                category="stage",
                library=self.library.name,
            )
        total_ns += library_ns
        # Protocol costs keep the sender's processor busy.
        resource_busy["sender_cpu"] = (
            resource_busy.get("sender_cpu", 0.0) + library_ns
        )

        retries = 0
        if plan is not None and plan.has_wire_faults():
            hardware_ns = sum(
                ns for name, ns in phase_times
                if name in ("transfer", "chained")
            ) or sum(ns for __, ns in phase_times)
            try:
                recovery = recovery_charge(
                    plan,
                    fragments=fragments,
                    fragment_ns=hardware_ns / max(1, fragments),
                    message_ns=hardware_ns,
                    key=(str(x), str(y), nbytes, style.value, src, dst),
                )
            except TransferAbortedError as exc:
                # Signal the abort with its endpoints so link-level
                # consumers (the load engine's circuit breakers) can
                # attribute it without parsing the message.
                exc.src, exc.dst = src, dst
                if tracer is not None:
                    tracer.count("faults.aborts")
                raise
            if recovery:
                retries = recovery.retries
                for name, ns in (
                    ("retry", recovery.retry_ns),
                    ("backoff", recovery.backoff_ns),
                ):
                    if ns <= 0.0:
                        continue
                    if tracer is not None:
                        tracer.span(
                            name,
                            track="phase",
                            start_ns=total_ns,
                            duration_ns=ns,
                            category="phase",
                            retries=recovery.retries,
                            losses=recovery.losses,
                            corruptions=recovery.corruptions,
                        )
                    phase_times.append((name, ns))
                    total_ns += ns
                # Retransmissions re-occupy the sender; backoff is idle.
                resource_busy["sender_cpu"] = (
                    resource_busy.get("sender_cpu", 0.0) + recovery.retry_ns
                )
                if tracer is not None:
                    tracer.count("faults.retries", recovery.retries)
                    tracer.count("faults.fragment_losses", recovery.losses)
                    tracer.count(
                        "faults.fragment_corruptions", recovery.corruptions
                    )
                    tracer.observe(
                        "faults.recovery_ns", recovery.total_ns
                    )

        raw_ns = total_ns
        mbps = nbytes / total_ns * 1000.0
        mbps *= self.machine.quirks.runtime_efficiency

        capped = False
        if duplex:
            cap = (
                self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS)
                / self.machine.quirks.duplex_penalty
            )
            if mbps > cap:
                mbps = cap
                capped = True
        total_ns = nbytes / mbps * 1000.0

        if tracer is not None:
            tracer.count("runtime.transfers")
            tracer.count("runtime.fragments", fragments)
            if capped:
                tracer.count("runtime.duplex_caps")
            # The residual the model deliberately leaves unexplained
            # (runtime_efficiency derate, duplex memory cap): traced as
            # its own phase so the phase spans always sum to the
            # reported end-to-end ns.
            residual = total_ns - raw_ns
            if residual > 0.0:
                tracer.span(
                    "duplex-memory-cap" if capped else "efficiency-derate",
                    track="phase",
                    start_ns=raw_ns,
                    duration_ns=residual,
                    category="phase",
                    efficiency=self.machine.quirks.runtime_efficiency,
                    memory_capped=capped,
                )

        degraded: Optional[DegradedResult] = None
        if fallen_back is not None:
            fault_name, fallback_name = fallen_back
            nominal = self._nominal_mbps(
                x, y, nbytes, requested, congestion, duplex
            )
            degraded = DegradedResult(
                fault=fault_name,
                requested=requested.value,
                fallback=fallback_name,
                nominal_mbps=nominal,
                degraded_mbps=mbps,
            )
            if tracer is not None:
                tracer.count("faults.degraded")
                tracer.span(
                    f"degraded:{fallback_name}",
                    track="faults",
                    start_ns=0.0,
                    duration_ns=total_ns,
                    category="fault",
                    fault=fault_name,
                    requested=requested.value,
                    fallback=fallback_name,
                )
        if tracer is not None and plan is not None:
            tracer.count("faults.transfers_under_plan")

        return MeasuredTransfer(
            mbps=mbps,
            ns=total_ns,
            nbytes=nbytes,
            style=style,
            library=self.library.name,
            congestion=congestion,
            phase_ns=tuple(phase_times),
            resource_busy_ns=tuple(sorted(resource_busy.items())),
            memory_capped=capped,
            diagnostics=self._analyze(x, y, style, duplex) if analyze else (),
            degraded=degraded,
            retries=retries,
        )

    def _nominal_mbps(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        style: OperationStyle,
        congestion: float,
        duplex: bool,
    ) -> float:
        """Fault-free throughput of the requested path, for the record.

        Runs under a throwaway tracer so the comparison never pollutes
        the active trace's phase accounting.
        """
        from ..trace.tracer import Tracer, tracing

        with tracing(Tracer()):
            try:
                nominal = self._execute(
                    x, y, nbytes, style, congestion, duplex,
                    False, None, None, None,
                )
            except CompositionError:
                return 0.0
        return nominal.mbps

    def _apply_fault_derates(
        self,
        phases: List[_Phase],
        plan: FaultPlan,
        src: Optional[int],
        dst: Optional[int],
    ) -> List[_Phase]:
        """Scale stage rates by the plan's node and link faults.

        Sender-side resources slow by the sender node's slowdown,
        receiver-side by the receiver's; the network stage slows by the
        worst link derate along the route (the global derate when the
        transfer is anonymous or the machine's default partition does
        not contain the endpoints).
        """
        sender_scale = plan.node_slowdown(src)
        receiver_scale = plan.node_slowdown(dst)
        network_derate = self._route_derate(plan, src, dst)
        if (
            sender_scale == 1.0
            and receiver_scale == 1.0
            and network_derate == 1.0
        ):
            return phases
        tracer = current_tracer()
        if tracer is not None:
            if sender_scale != 1.0 or receiver_scale != 1.0:
                tracer.count("faults.node_slowdowns")
            if network_derate != 1.0:
                tracer.count("faults.link_derates")

        def scale(stage: Stage) -> Stage:
            if stage.resource == "network":
                factor = network_derate
            elif stage.resource.startswith("sender"):
                factor = 1.0 / sender_scale
            else:
                factor = 1.0 / receiver_scale
            if factor == 1.0:
                return stage
            return Stage(
                stage.name,
                stage.rate_mbps * factor,
                stage.resource,
                stage.chunk_overhead_ns,
                stage.startup_ns,
            )

        return [
            _Phase(phase.name, tuple(scale(s) for s in phase.stages),
                   phase.chunk_bytes)
            for phase in phases
        ]

    def _route_derate(
        self, plan: FaultPlan, src: Optional[int], dst: Optional[int]
    ) -> float:
        """Worst link derate this transfer's route crosses."""
        if src is None or dst is None or src == dst:
            return plan.global_link_derate()
        if not any(fault.src is not None for fault in plan.links):
            return plan.global_link_derate()
        topology = self.machine.topology()
        if src >= topology.n_nodes or dst >= topology.n_nodes:
            return plan.global_link_derate()
        route = plan.wrap_topology(topology).route(src, dst)
        return plan.route_derate(route)

    def _analyze(
        self,
        x: AccessPattern,
        y: AccessPattern,
        style: OperationStyle,
        duplex: bool,
    ) -> Tuple["Diagnostic", ...]:
        """Lint the model-level composition behind one runtime transfer."""
        from ..analysis import analyze as run_linter
        from ..core.constraints import duplex_memory_constraint
        from ..core.operations import buffer_packing, chained

        builder = (
            buffer_packing if style is OperationStyle.BUFFER_PACKING else chained
        )
        try:
            expr = builder(x, y, self.machine.capabilities)
        except CompositionError:
            # The phase builders have already accepted this transfer
            # (e.g. a co-processor receive the expression algebra lacks
            # a builder for); nothing model-level to lint.
            return ()
        constraints = (duplex_memory_constraint(),) if duplex else ()
        return tuple(
            run_linter(
                expr,
                table=self.table,
                capabilities=self.machine.capabilities,
                constraints=constraints,
            )
        )

    def _derate_for_duplex(self, phase: _Phase) -> _Phase:
        scale = self.machine.quirks.bus_interleave_scale
        if scale == 1.0:
            return phase
        stages = tuple(
            Stage(
                s.name,
                s.rate_mbps / scale if s.resource != "network" else s.rate_mbps,
                s.resource,
                s.chunk_overhead_ns,
                s.startup_ns,
            )
            for s in phase.stages
        )
        return _Phase(phase.name, stages, phase.chunk_bytes)

    def sweep_message_sizes(
        self,
        sizes: Sequence[int],
        x: AccessPattern = CONTIGUOUS,
        y: AccessPattern = CONTIGUOUS,
        style: OperationStyle = OperationStyle.BUFFER_PACKING,
        congestion: Optional[float] = None,
    ) -> List[Tuple[int, float]]:
        """Throughput-vs-message-size curve (the Figure 1 experiment)."""
        return [
            (size, self.transfer(x, y, size, style, congestion=congestion).mbps)
            for size in sizes
        ]


def measure_q(
    machine: Machine,
    x: AccessPattern,
    y: AccessPattern,
    nbytes: int,
    style: OperationStyle,
    congestion: Optional[float] = None,
    analyze: bool = False,
) -> MeasuredTransfer:
    """Measure ``xQy`` under the paper's measurement conventions.

    Buffer-packing runs the hand-coded packing implementation (copies
    always performed); chained runs over the low-level put/get path.
    Nodes send and receive simultaneously unless the machine's
    measurements were taken simplex (the Paragon's were).
    """
    from .libraries import packing_profile

    if style is OperationStyle.BUFFER_PACKING:
        library = packing_profile()
    else:
        library = lowlevel_profile()
    runtime = CommRuntime(machine, library=library)
    duplex = not machine.quirks.measures_simplex
    return runtime.transfer(
        x, y, nbytes, style=style, congestion=congestion, duplex=duplex,
        analyze=analyze,
    )
