"""The end-to-end communication runtime (simulated "live" measurements).

Where :mod:`repro.core` predicts throughput from composition rules,
this engine *executes* a transfer the way the machines' runtimes did
and reports what a wall-clock measurement would see:

* **software phases** (gather / system-buffer / scatter copies) are
  staged at message granularity — a packing library packs the whole
  message before the first byte leaves the node;
* the **hardware middle** (load-send or DMA, wire, deposit/receive)
  streams chunk by chunk through FIFOs, so within it the slowest unit
  paces the rest;
* chained transfers are a single hardware-paced phase.

Sequential phases reproduce the model's harmonic rule; within-phase
streaming reproduces the min rule.  On top the runtime charges what
the model deliberately ignores: library per-message/per-fragment
costs, pipeline fill, duplex memory contention, and machine quirks
(the Paragon's unusable pipelined loads, bus arbitration).  A single
documented ``runtime_efficiency`` scalar stands in for the residual
unmodeled costs (cache invalidation, synchronization, timer reads)
that make real measurements land 10-20% under the model (Figures 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..core.errors import CompositionError
from ..core.operations import DepositSupport, OperationStyle
from ..core.patterns import CONTIGUOUS, AccessPattern
from ..core.transfers import TransferKind
from ..machines.base import Machine
from ..memsim.config import WORD_BYTES
from ..trace.tracer import current_tracer
from .libraries import LibraryProfile, lowlevel_profile
from .stages import Stage, StagePipeline

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic

__all__ = ["MeasuredTransfer", "CommRuntime", "CPU_CHUNK_OVERHEAD_NS", "measure_q"]

#: Fixed software cost a processor pays per pipeline chunk (loop setup,
#: flow control).  Background engines (DMA, deposit, network) pace
#: themselves and pay nothing per chunk.
CPU_CHUNK_OVERHEAD_NS = 1500.0

_FIXED = AccessPattern.fixed()


@dataclass(frozen=True)
class MeasuredTransfer:
    """What the runtime measured for one point-to-point transfer.

    Attributes:
        mbps: End-to-end payload throughput.
        ns: Wall-clock time including library overheads.
        phase_ns: Time spent in each sequential phase, by name.
        memory_capped: Whether the duplex memory cap bound the result.
        diagnostics: Static-analyzer findings for the executed
            composition, populated when the transfer was requested with
            ``analyze=True``.
    """

    mbps: float
    ns: float
    nbytes: int
    style: OperationStyle
    library: str
    congestion: float
    phase_ns: Tuple[Tuple[str, float], ...]
    resource_busy_ns: Tuple[Tuple[str, float], ...] = ()
    memory_capped: bool = False
    diagnostics: Tuple["Diagnostic", ...] = ()

    def bottleneck_busy_ns(self) -> float:
        """Busy time of the most-loaded resource for this message.

        When an application issues many messages back to back, the
        steady-state cost per message is this figure, not the full
        end-to-end latency: other resources overlap with the next
        message (software pipelining across messages).
        """
        if not self.resource_busy_ns:
            return self.ns
        return max(busy for __, busy in self.resource_busy_ns)

    def __str__(self) -> str:
        return (
            f"{self.library} {self.style.value} {self.nbytes} B: "
            f"{self.mbps:.1f} MB/s"
        )


@dataclass(frozen=True)
class _Phase:
    """A sequential phase: stages pipelined at ``chunk_bytes`` grain."""

    name: str
    stages: Tuple[Stage, ...]
    chunk_bytes: int


class CommRuntime:
    """Executes communication operations on one machine.

    Args:
        machine: The machine to run on.
        library: Software profile; defaults to the fastest low-level
            library (libsm.a / SUNMOS libnx).
        rates: ``"simulated"`` (default) takes stage rates from the
            memory-system simulator — the full bottom-up path — while
            ``"paper"`` uses the published calibration.
        congestion: Default network congestion for transfers that
            don't specify one (defaults to the machine's typical
            value, the paper's bold Table 4 column).
    """

    def __init__(
        self,
        machine: Machine,
        library: Optional[LibraryProfile] = None,
        rates: str = "simulated",
        congestion: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.library = library or lowlevel_profile()
        if rates == "simulated":
            self.table = machine.simulated_table()
        elif rates == "paper":
            self.table = machine.paper_table()
        else:
            raise ValueError(f"unknown rate source {rates!r}")
        self.default_congestion = (
            congestion
            if congestion is not None
            else machine.network.default_congestion
        )

    # -- rate lookups -----------------------------------------------------

    def _rate(self, kind: TransferKind, read, write) -> float:
        return self.table.lookup_kind(kind, read, write)

    def _network_rate(self, adp: bool, congestion: float) -> float:
        from ..netsim.network import FramingMode

        model = self.machine.network_model()
        mode = FramingMode.ADDRESS_DATA_PAIRS if adp else FramingMode.DATA_ONLY
        return model.rate(mode, congestion=congestion)

    def _send_rate(self, read: AccessPattern) -> float:
        scale = self.machine.quirks.send_rate_scale
        return self._rate(TransferKind.LOAD_SEND, read, _FIXED) * scale

    def _cpu_stage(self, name: str, rate: float, resource: str) -> Stage:
        return Stage(name, rate, resource, chunk_overhead_ns=CPU_CHUNK_OVERHEAD_NS)

    # -- phase construction ---------------------------------------------------

    def _middle_stages(self, congestion: float) -> List[Stage]:
        """The contiguous-block hardware path of a packing transfer."""
        caps = self.machine.capabilities
        if caps.dma_send:
            send = Stage(
                "send-dma",
                self._rate(TransferKind.FETCH_SEND, CONTIGUOUS, _FIXED),
                "sender_dma",
                startup_ns=self.machine.node.dma.setup_ns,
            )
        else:
            send = self._cpu_stage("send", self._send_rate(CONTIGUOUS), "sender_cpu")
        network = Stage(
            "network", self._network_rate(adp=False, congestion=congestion), "network"
        )
        if caps.deposit is not DepositSupport.NONE:
            receive = Stage(
                "receive-deposit",
                self._rate(TransferKind.RECEIVE_DEPOSIT, _FIXED, CONTIGUOUS),
                "receiver_deposit",
            )
        else:
            receive = self._cpu_stage(
                "receive",
                self._rate(TransferKind.RECEIVE_STORE, _FIXED, CONTIGUOUS),
                "receiver_cpu",
            )
        return [send, network, receive]

    def _packing_phases(
        self, x: AccessPattern, y: AccessPattern, nbytes: int, congestion: float
    ) -> List[_Phase]:
        lib = self.library
        fragment = min(nbytes, lib.fragment_bytes)
        stream_chunk = min(
            self.machine.quirks.pipeline_chunk_words * WORD_BYTES, fragment
        )
        phases: List[_Phase] = []

        pack: List[Stage] = []
        if lib.pack_even_contiguous or not x.is_contiguous:
            pack.append(
                self._cpu_stage(
                    "gather",
                    self._rate(TransferKind.COPY, x, CONTIGUOUS),
                    "sender_cpu",
                )
            )
        if lib.system_buffer_copies >= 1:
            pack.append(
                self._cpu_stage(
                    "sysbuf-send",
                    self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS),
                    "sender_cpu",
                )
            )
        if pack:
            phases.append(_Phase("pack", tuple(pack), fragment))

        phases.append(
            _Phase("transfer", tuple(self._middle_stages(congestion)), stream_chunk)
        )

        unpack: List[Stage] = []
        if lib.system_buffer_copies >= 2:
            unpack.append(
                self._cpu_stage(
                    "sysbuf-receive",
                    self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS),
                    "receiver_cpu",
                )
            )
        if lib.pack_even_contiguous or not y.is_contiguous:
            unpack.append(
                self._cpu_stage(
                    "scatter",
                    self._rate(TransferKind.COPY, CONTIGUOUS, y),
                    "receiver_cpu",
                )
            )
        if unpack:
            phases.append(_Phase("unpack", tuple(unpack), fragment))
        return phases

    def _chained_phases(
        self, x: AccessPattern, y: AccessPattern, nbytes: int, congestion: float
    ) -> List[_Phase]:
        caps = self.machine.capabilities
        if not self.library.supports_chained:
            raise CompositionError(
                f"library {self.library.name!r} has no chained/put-get path"
            )
        adp = not (x.is_contiguous and y.is_contiguous)
        stages = [
            self._cpu_stage("send", self._send_rate(x), "sender_cpu"),
            Stage("network", self._network_rate(adp, congestion), "network"),
        ]
        if caps.deposit is DepositSupport.ANY or (
            caps.deposit is DepositSupport.CONTIGUOUS and y.is_contiguous
        ):
            stages.append(
                Stage(
                    "deposit",
                    self._rate(TransferKind.RECEIVE_DEPOSIT, _FIXED, y),
                    "receiver_deposit",
                )
            )
        elif caps.coprocessor_receive:
            stages.append(
                self._cpu_stage(
                    "receive-coproc",
                    self._rate(TransferKind.RECEIVE_STORE, _FIXED, y),
                    "receiver_coproc",
                )
            )
        else:
            raise CompositionError(
                f"machine {self.machine.name!r} has no background receiver "
                f"for pattern {y}"
            )
        chunk = min(
            self.machine.quirks.pipeline_chunk_words * WORD_BYTES,
            self.library.fragment_bytes,
            nbytes,
        )
        return [_Phase("chained", tuple(stages), chunk)]

    # -- execution ----------------------------------------------------------------

    def transfer(
        self,
        x: AccessPattern,
        y: AccessPattern,
        nbytes: int,
        style: OperationStyle = OperationStyle.CHAINED,
        congestion: Optional[float] = None,
        duplex: bool = False,
        analyze: bool = False,
    ) -> MeasuredTransfer:
        """Measure one point-to-point ``xQy`` transfer of ``nbytes``.

        Args:
            x / y: Source and destination access patterns.
            nbytes: Payload size.
            style: Buffer-packing or chained.
            congestion: Network congestion this transfer experiences;
                defaults to the machine's typical value.
            duplex: Whether the node simultaneously sends and receives
                (all-to-all, shifts): memory-touching stages slow by
                the bus-interleave quirk and the duplex memory cap
                applies.
            analyze: Run the static linter over the model-level
                composition this transfer executes and attach its
                diagnostics to the result.
        """
        if nbytes <= 0:
            raise ValueError(f"need a positive transfer size, got {nbytes}")
        if congestion is None:
            congestion = self.default_congestion
        style = (
            style
            if isinstance(style, OperationStyle)
            else OperationStyle(style)
        )
        if style is OperationStyle.BUFFER_PACKING:
            phases = self._packing_phases(x, y, nbytes, congestion)
        else:
            phases = self._chained_phases(x, y, nbytes, congestion)

        if duplex:
            phases = [self._derate_for_duplex(phase) for phase in phases]

        tracer = current_tracer()
        total_ns = 0.0
        phase_times: List[Tuple[str, float]] = []
        resource_busy: dict = {}
        for phase in phases:
            pipeline = StagePipeline(list(phase.stages))
            if tracer is not None:
                # Chunk spans inside the pipeline are clocked from the
                # phase start; shift them onto the transfer timeline.
                with tracer.shifted(total_ns):
                    result = pipeline.run(
                        nbytes,
                        chunk_bytes=phase.chunk_bytes,
                        trace_phase=phase.name,
                    )
            else:
                result = pipeline.run(nbytes, chunk_bytes=phase.chunk_bytes)
            if tracer is not None:
                tracer.span(
                    phase.name,
                    track="phase",
                    start_ns=total_ns,
                    duration_ns=result.ns,
                    category="phase",
                    chunk_bytes=phase.chunk_bytes,
                    stages=[stage.name for stage in phase.stages],
                )
            total_ns += result.ns
            phase_times.append((phase.name, result.ns))
            for label, stage in zip(pipeline.labels, pipeline.stages):
                busy = result.stage_busy_ns[label]
                resource_busy[stage.resource] = (
                    resource_busy.get(stage.resource, 0.0) + busy
                )

        fragments = -(-nbytes // self.library.fragment_bytes)
        library_ns = (
            self.library.per_message_ns + fragments * self.library.per_fragment_ns
        )
        if tracer is not None and library_ns > 0.0:
            tracer.span(
                "library-overhead",
                track="phase",
                start_ns=total_ns,
                duration_ns=library_ns,
                category="phase",
                library=self.library.name,
                per_message_ns=self.library.per_message_ns,
                fragments=fragments,
            )
            tracer.span(
                "library-overhead",
                track="sender_cpu",
                start_ns=total_ns,
                duration_ns=library_ns,
                category="stage",
                library=self.library.name,
            )
        total_ns += library_ns
        raw_ns = total_ns
        # Protocol costs keep the sender's processor busy.
        resource_busy["sender_cpu"] = (
            resource_busy.get("sender_cpu", 0.0) + library_ns
        )
        mbps = nbytes / total_ns * 1000.0
        mbps *= self.machine.quirks.runtime_efficiency

        capped = False
        if duplex:
            cap = (
                self._rate(TransferKind.COPY, CONTIGUOUS, CONTIGUOUS)
                / self.machine.quirks.duplex_penalty
            )
            if mbps > cap:
                mbps = cap
                capped = True
        total_ns = nbytes / mbps * 1000.0

        if tracer is not None:
            tracer.count("runtime.transfers")
            tracer.count("runtime.fragments", fragments)
            if capped:
                tracer.count("runtime.duplex_caps")
            # The residual the model deliberately leaves unexplained
            # (runtime_efficiency derate, duplex memory cap): traced as
            # its own phase so the phase spans always sum to the
            # reported end-to-end ns.
            residual = total_ns - raw_ns
            if residual > 0.0:
                tracer.span(
                    "duplex-memory-cap" if capped else "efficiency-derate",
                    track="phase",
                    start_ns=raw_ns,
                    duration_ns=residual,
                    category="phase",
                    efficiency=self.machine.quirks.runtime_efficiency,
                    memory_capped=capped,
                )

        return MeasuredTransfer(
            mbps=mbps,
            ns=total_ns,
            nbytes=nbytes,
            style=style,
            library=self.library.name,
            congestion=congestion,
            phase_ns=tuple(phase_times),
            resource_busy_ns=tuple(sorted(resource_busy.items())),
            memory_capped=capped,
            diagnostics=self._analyze(x, y, style, duplex) if analyze else (),
        )

    def _analyze(
        self,
        x: AccessPattern,
        y: AccessPattern,
        style: OperationStyle,
        duplex: bool,
    ) -> Tuple["Diagnostic", ...]:
        """Lint the model-level composition behind one runtime transfer."""
        from ..analysis import analyze as run_linter
        from ..core.constraints import duplex_memory_constraint
        from ..core.operations import buffer_packing, chained

        builder = (
            buffer_packing if style is OperationStyle.BUFFER_PACKING else chained
        )
        try:
            expr = builder(x, y, self.machine.capabilities)
        except CompositionError:
            # The phase builders have already accepted this transfer
            # (e.g. a co-processor receive the expression algebra lacks
            # a builder for); nothing model-level to lint.
            return ()
        constraints = (duplex_memory_constraint(),) if duplex else ()
        return tuple(
            run_linter(
                expr,
                table=self.table,
                capabilities=self.machine.capabilities,
                constraints=constraints,
            )
        )

    def _derate_for_duplex(self, phase: _Phase) -> _Phase:
        scale = self.machine.quirks.bus_interleave_scale
        if scale == 1.0:
            return phase
        stages = tuple(
            Stage(
                s.name,
                s.rate_mbps / scale if s.resource != "network" else s.rate_mbps,
                s.resource,
                s.chunk_overhead_ns,
                s.startup_ns,
            )
            for s in phase.stages
        )
        return _Phase(phase.name, stages, phase.chunk_bytes)

    def sweep_message_sizes(
        self,
        sizes: Sequence[int],
        x: AccessPattern = CONTIGUOUS,
        y: AccessPattern = CONTIGUOUS,
        style: OperationStyle = OperationStyle.BUFFER_PACKING,
        congestion: Optional[float] = None,
    ) -> List[Tuple[int, float]]:
        """Throughput-vs-message-size curve (the Figure 1 experiment)."""
        return [
            (size, self.transfer(x, y, size, style, congestion=congestion).mbps)
            for size in sizes
        ]


def measure_q(
    machine: Machine,
    x: AccessPattern,
    y: AccessPattern,
    nbytes: int,
    style: OperationStyle,
    congestion: Optional[float] = None,
    analyze: bool = False,
) -> MeasuredTransfer:
    """Measure ``xQy`` under the paper's measurement conventions.

    Buffer-packing runs the hand-coded packing implementation (copies
    always performed); chained runs over the low-level put/get path.
    Nodes send and receive simultaneously unless the machine's
    measurements were taken simplex (the Paragon's were).
    """
    from .libraries import packing_profile

    if style is OperationStyle.BUFFER_PACKING:
        library = packing_profile()
    else:
        library = lowlevel_profile()
    runtime = CommRuntime(machine, library=library)
    duplex = not machine.quirks.measures_simplex
    return runtime.transfer(
        x, y, nbytes, style=style, congestion=congestion, duplex=duplex,
        analyze=analyze,
    )
