"""Message-passing library profiles.

Figure 1 of the paper compares a portable buffered library (PVM)
against the fastest vendor/third-party libraries (``libsm.a`` on the
T3D, ``libnx.a`` under SUNMOS on the Paragon).  The differences that
matter for throughput are software, not hardware:

* a *per-message* software overhead (protocol, matching, system calls)
  that dominates small messages;
* extra copies through system buffers (PVM buffers on both sides);
* whether the library can skip packing for contiguous data (low-level
  libraries can; PVM's pack/unpack API cannot);
* fragmentation: long messages are carved into protocol fragments,
  each paying a (smaller) per-fragment cost.

A :class:`LibraryProfile` is pure data consumed by the runtime engine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LibraryProfile",
    "pvm_profile",
    "pvm3_profile",
    "lowlevel_profile",
    "packing_profile",
]


@dataclass(frozen=True)
class LibraryProfile:
    """Software costs of one message-passing library.

    Attributes:
        name: Display name.
        per_message_ns: Fixed cost per message (both sides combined).
        per_fragment_ns: Fixed cost per protocol fragment.
        fragment_bytes: Maximum fragment carried by the transport.
        system_buffer_copies: Extra contiguous copies through library
            system buffers (PVM: one per side -> 2).
        pack_even_contiguous: Whether contiguous data still makes a
            trip through pack/unpack buffers.
        supports_chained: Whether the library exposes the machine's
            chained/deposit path at all (only low-level interfaces do).
    """

    name: str
    per_message_ns: float
    per_fragment_ns: float = 0.0
    fragment_bytes: int = 1 << 62
    system_buffer_copies: int = 0
    pack_even_contiguous: bool = True
    supports_chained: bool = False


def pvm_profile() -> LibraryProfile:
    """The vendor-tuned PVM used for Figure 1's upper curves.

    Buffered send/receive semantics: data is packed into PVM buffers,
    shipped, and unpacked — plus a visible per-message protocol cost.
    """
    return LibraryProfile(
        name="PVM",
        per_message_ns=120_000.0,
        per_fragment_ns=6_000.0,
        fragment_bytes=16384,
        system_buffer_copies=2,
        pack_even_contiguous=True,
        supports_chained=False,
    )


def pvm3_profile() -> LibraryProfile:
    """Stock Cray PVM3: the paragraph under Table 6.

    "Due to the constant overhead for sending a message in standard
    message passing libraries like PVM, the buffer packing numbers
    decrease drastically" — FEM drops to ~2 MB/s, FFT to ~6, SOR ~25.
    """
    return LibraryProfile(
        name="PVM3",
        per_message_ns=400_000.0,
        per_fragment_ns=10_000.0,
        fragment_bytes=4096,
        system_buffer_copies=2,
        pack_even_contiguous=True,
        supports_chained=False,
    )


def packing_profile() -> LibraryProfile:
    """Hand-coded buffer packing over the low-level transport.

    This is the "buffer-packing" arm of the paper's Figures 7/8 and
    Tables 5/6: the gather/scatter copies of ``xC1 o (...) o 1Cy`` are
    always performed (that is the strategy under test), but without
    PVM's protocol overheads or system-buffer detours.
    """
    return LibraryProfile(
        name="buffer-packing",
        per_message_ns=10_000.0,
        per_fragment_ns=0.0,
        system_buffer_copies=0,
        pack_even_contiguous=True,
        supports_chained=False,
    )


def lowlevel_profile() -> LibraryProfile:
    """The fastest semantics-restricted path (libsm.a / SUNMOS libnx).

    Receives posted before sends, user-managed cache consistency, no
    intermediate buffering; exposes put/get so chained transfers are
    possible.
    """
    return LibraryProfile(
        name="low-level",
        per_message_ns=8_000.0,
        per_fragment_ns=0.0,
        system_buffer_copies=0,
        pack_even_contiguous=False,
        supports_chained=True,
    )
