"""Simulated message-passing runtime (end-to-end "measured" numbers).

Built on the stage pipeline (:mod:`repro.runtime.stages`), library
profiles (:mod:`repro.runtime.libraries`), the point-to-point engine
(:mod:`repro.runtime.engine`), collective steps
(:mod:`repro.runtime.collective`) and whole collective operations
composed from step rounds (:mod:`repro.runtime.collectives`).
"""

from .collective import CommunicationStep, StepResult
from .collectives import (
    ALGORITHMS,
    COLLECTIVE_OPS,
    CollectiveResult,
    CollectiveRound,
    collective_rounds,
    run_collective,
)
from .planstep import PlanStep
from .engine import CPU_CHUNK_OVERHEAD_NS, CommRuntime, MeasuredTransfer, measure_q
from .libraries import (
    LibraryProfile,
    lowlevel_profile,
    packing_profile,
    pvm3_profile,
    pvm_profile,
)
from .stages import PipelineResult, Stage, StagePipeline

__all__ = [
    "ALGORITHMS",
    "COLLECTIVE_OPS",
    "CollectiveResult",
    "CollectiveRound",
    "collective_rounds",
    "CommRuntime",
    "CommunicationStep",
    "CPU_CHUNK_OVERHEAD_NS",
    "LibraryProfile",
    "lowlevel_profile",
    "measure_q",
    "MeasuredTransfer",
    "packing_profile",
    "PipelineResult",
    "PlanStep",
    "pvm3_profile",
    "pvm_profile",
    "run_collective",
    "Stage",
    "StagePipeline",
    "StepResult",
]
