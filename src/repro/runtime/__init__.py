"""Simulated message-passing runtime (end-to-end "measured" numbers).

Built on the stage pipeline (:mod:`repro.runtime.stages`), library
profiles (:mod:`repro.runtime.libraries`), the point-to-point engine
(:mod:`repro.runtime.engine`) and collective steps
(:mod:`repro.runtime.collective`).
"""

from .collective import CommunicationStep, StepResult
from .planstep import PlanStep
from .engine import CPU_CHUNK_OVERHEAD_NS, CommRuntime, MeasuredTransfer, measure_q
from .libraries import (
    LibraryProfile,
    lowlevel_profile,
    packing_profile,
    pvm3_profile,
    pvm_profile,
)
from .stages import PipelineResult, Stage, StagePipeline

__all__ = [
    "CommRuntime",
    "CommunicationStep",
    "CPU_CHUNK_OVERHEAD_NS",
    "LibraryProfile",
    "lowlevel_profile",
    "measure_q",
    "MeasuredTransfer",
    "packing_profile",
    "PipelineResult",
    "PlanStep",
    "pvm3_profile",
    "pvm_profile",
    "Stage",
    "StagePipeline",
    "StepResult",
]
