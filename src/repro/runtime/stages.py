"""Chunked stage-pipeline execution of a communication operation.

The copy-transfer model assumes perfect overlap ("the usage of
processor and memory system is spread evenly ... in practice, this is
often obtained through pipelining", Section 4).  A real runtime
pipelines a transfer in finite chunks, and stages that share a
resource — the gather copy and the load-send both run on the sender's
processor — strictly alternate.  This module simulates exactly that:

* a :class:`Stage` has a payload rate (MB/s), the resource it occupies,
  and a fixed software overhead per chunk;
* :class:`StagePipeline` pushes each chunk through the stages in order;
  chunk *j* enters stage *i* when stage *i-1* has produced it and the
  stage's resource is free.

The result is always at or below the model's estimate: the harmonic
(shared-resource) and min (pipelined) rules emerge in the limit of
many chunks, and per-chunk overheads plus pipeline fill account for
the measured-vs-model gap the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..trace.tracer import Tracer, current_tracer

__all__ = ["Stage", "PipelineResult", "StagePipeline"]


@dataclass(frozen=True)
class Stage:
    """One stage of a staged transfer.

    Attributes:
        name: Label for reporting ("gather", "network", ...).
        rate_mbps: Sustained payload rate of the stage in isolation.
        resource: The resource the stage occupies; stages with equal
            resource names serialize, others overlap.  Background
            hardware (DMA, deposit engine, network) gets its own name.
        chunk_overhead_ns: Fixed software cost per chunk (loop setup,
            descriptor writes, DMA kicks).
        startup_ns: One-time cost before the stage's first chunk.
    """

    name: str
    rate_mbps: float
    resource: str
    chunk_overhead_ns: float = 0.0
    startup_ns: float = 0.0

    def chunk_ns(self, chunk_bytes: int) -> float:
        return chunk_bytes / self.rate_mbps * 1000.0 + self.chunk_overhead_ns


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of pushing one message through a stage pipeline.

    ``stage_busy_ns`` is keyed by stage *label*: the stage's name when
    unique within the pipeline, else ``"name#index"`` so two stages
    that happen to share a name keep separate busy accounts (see
    :attr:`StagePipeline.labels`).
    """

    ns: float
    nbytes: int
    stage_busy_ns: Dict[str, float]

    @property
    def mbps(self) -> float:
        if self.ns <= 0:
            return float("inf")
        return self.nbytes / self.ns * 1000.0

    def bottleneck(self) -> str:
        """The stage that was busy longest."""
        return max(self.stage_busy_ns, key=self.stage_busy_ns.get)


class StagePipeline:
    """Simulates a staged transfer at chunk granularity.

    >>> stages = [Stage("send", 100.0, "cpu"), Stage("net", 50.0, "net")]
    >>> result = StagePipeline(stages).run(1 << 20, chunk_bytes=8192)
    >>> 45 < result.mbps < 50   # pipelined: the slow stage dominates
    True
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        for stage in stages:
            if stage.rate_mbps <= 0:
                raise ValueError(f"stage {stage.name!r} has non-positive rate")
        self.stages = list(stages)
        # Reporting labels: the stage name when unique, "name#i" for
        # duplicates.  All *internal* accounting is by position, so two
        # same-named stages never merge busy time or share a startup
        # charge (they used to, silently).
        names = [stage.name for stage in self.stages]
        self.labels = [
            name if names.count(name) == 1 else f"{name}#{index}"
            for index, name in enumerate(names)
        ]

    def run(
        self, nbytes: int, chunk_bytes: int = 8192, trace_phase: str = ""
    ) -> PipelineResult:
        """Push ``nbytes`` through the pipeline in ``chunk_bytes`` chunks.

        When a tracer is installed (:func:`repro.trace.tracing`), every
        (chunk, stage) occupancy becomes a span on the stage's resource
        track — prefixed with ``trace_phase`` if given — and each
        chunk's wait for a busy resource lands in the
        ``pipeline.resource_wait_ns`` histogram.
        """
        if nbytes <= 0:
            raise ValueError(f"need a positive transfer size, got {nbytes}")
        if chunk_bytes <= 0:
            raise ValueError(f"need a positive chunk size, got {chunk_bytes}")

        full_chunks, tail = divmod(nbytes, chunk_bytes)
        sizes = [chunk_bytes] * full_chunks + ([tail] if tail else [])

        busy: List[float] = [0.0] * len(self.stages)
        # The tracer check is hoisted out of the (chunk x stage) loop:
        # with tracing off, the hot path pays a single attribute test
        # here and then runs a tight loop with no per-chunk branching.
        # Both loops perform identical arithmetic, so results match
        # bit for bit traced vs untraced.
        tracer = current_tracer()
        if tracer is None:
            finish = self._run_untraced(sizes, busy)
        else:
            finish = self._run_traced(sizes, busy, tracer, trace_phase)

        return PipelineResult(
            ns=finish,
            nbytes=nbytes,
            stage_busy_ns=dict(zip(self.labels, busy)),
        )

    def _run_untraced(self, sizes: Sequence[int], busy: List[float]) -> float:
        resource_free: Dict[str, float] = {}
        started: List[bool] = [False] * len(self.stages)
        finish = 0.0
        # Chunk-major order: stages sharing a resource alternate between
        # consecutive chunks instead of hogging it for the whole message.
        for size in sizes:
            chunk_ready = 0.0
            for position, stage in enumerate(self.stages):
                start = max(chunk_ready, resource_free.get(stage.resource, 0.0))
                duration = stage.chunk_ns(size)
                if not started[position]:
                    duration += stage.startup_ns
                    started[position] = True
                chunk_ready = start + duration
                resource_free[stage.resource] = chunk_ready
                busy[position] += duration
            finish = chunk_ready
        return finish

    def _run_traced(
        self,
        sizes: Sequence[int],
        busy: List[float],
        tracer: Tracer,
        trace_phase: str,
    ) -> float:
        span_names = [
            f"{trace_phase}:{label}" if trace_phase else label
            for label in self.labels
        ]
        resource_free: Dict[str, float] = {}
        started: List[bool] = [False] * len(self.stages)
        finish = 0.0
        for chunk_index, size in enumerate(sizes):
            chunk_ready = 0.0
            for position, stage in enumerate(self.stages):
                start = max(chunk_ready, resource_free.get(stage.resource, 0.0))
                duration = stage.chunk_ns(size)
                if not started[position]:
                    duration += stage.startup_ns
                    started[position] = True
                wait_ns = start - chunk_ready
                tracer.span(
                    span_names[position],
                    track=stage.resource,
                    start_ns=start,
                    duration_ns=duration,
                    category="stage",
                    chunk=chunk_index,
                    bytes=size,
                    wait_ns=wait_ns,
                )
                if wait_ns > 0.0:
                    tracer.observe("pipeline.resource_wait_ns", wait_ns)
                chunk_ready = start + duration
                resource_free[stage.resource] = chunk_ready
                busy[position] += duration
            finish = chunk_ready
        return finish
