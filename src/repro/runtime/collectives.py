"""Collective operations composed from communication-step rounds.

The paper prices a *single* communication step (Section 6); real
applications run collectives — broadcast, allreduce, alltoall — which
are just sequences of such steps.  Each algorithm here lowers to a
tuple of :class:`CollectiveRound` objects (a flow pattern plus a
per-flow payload), every round runs as a
:class:`~repro.runtime.collective.CommunicationStep`, and the
collective's cost is the sum of its rounds — which is exactly why the
model-driven selector (:func:`repro.compiler.advisor.choose_algorithm`)
can rank algorithms per (machine, size) regime the way PAPERS.md
"Prédiction de Performances pour les Communications Collectives"
does: few-round algorithms win while per-round latency dominates,
few-byte algorithms win once bandwidth does.

Algorithms (per op):

* ``broadcast`` — **binomial-tree** (ceil(log2 n) rounds, full payload
  per flow) and **ring** (a pipelined scatter + allgather: 2(n-1)
  neighbour rounds of n-th payloads);
* ``allreduce`` — **recursive-doubling** (pairwise exchanges at
  doubling distances; non-power-of-two sizes fold the excess nodes in
  with one extra round each way) and **ring** (reduce-scatter +
  allgather, 2(n-1) neighbour rounds of n-th payloads);
* ``alltoall`` — **pairwise-exchange** (n-1 permutation rounds of
  n-th payloads; XOR pairing on power-of-two sizes, shifted otherwise)
  and **bruck** (ceil(log2 n) rounds of half payloads).

On hierarchical machines (:class:`~repro.machines.cluster.ClusterMachine`)
the collective runs hierarchy-aware by default: each node's cores fold
their data into a leader through the shared-memory copy rung, leaders
run the inter-node rounds with an uncontended NIC, then results fan
back out intra-node.  A flat run instead charges every round the
node's NIC contention factor (all k cores pushing the one NIC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import ModelError
from ..core.operations import OperationStyle
from ..core.patterns import AccessPattern
from ..machines.cluster import ClusterMachine
from .collective import CommunicationStep, StepResult
from .engine import CommRuntime

__all__ = [
    "COLLECTIVE_OPS",
    "ALGORITHMS",
    "CollectiveRound",
    "CollectiveResult",
    "collective_rounds",
    "run_collective",
]

Flow = Tuple[int, int]

#: The supported collective operations.
COLLECTIVE_OPS: Tuple[str, ...] = ("broadcast", "allreduce", "alltoall")

#: Valid algorithms per op, few-round family first.
ALGORITHMS = {
    "broadcast": ("binomial-tree", "ring"),
    "allreduce": ("recursive-doubling", "ring"),
    "alltoall": ("pairwise-exchange", "bruck"),
}


@dataclass(frozen=True)
class CollectiveRound:
    """One synchronous round of a collective: a pattern and a payload."""

    flows: Tuple[Flow, ...]
    bytes_per_flow: int


@dataclass(frozen=True)
class CollectiveResult:
    """Outcome of one collective run.

    ``total_ns`` is *exactly* ``intra_gather_ns + sum(round_ns) +
    intra_scatter_ns`` — the phase-sum invariant the ``trace``
    subcommand asserts.  ``round_ns`` carries the per-round times
    actually charged (after NIC contention on flat hierarchical runs),
    while ``rounds`` keeps the raw step results for inspection.
    """

    op: str
    algorithm: str
    nodes: int
    nbytes: int
    total_ns: float
    per_node_mbps: float
    round_ns: Tuple[float, ...]
    rounds: Tuple[StepResult, ...]
    hierarchical: bool = False
    intra_gather_ns: float = 0.0
    intra_scatter_ns: float = 0.0
    nic_contention: float = 1.0


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _ring_flows(n: int) -> Tuple[Flow, ...]:
    return tuple((i, (i + 1) % n) for i in range(n))


def _binomial_tree(n: int, nbytes: int) -> Tuple[CollectiveRound, ...]:
    rounds = []
    distance = 1
    while distance < n:
        flows = tuple(
            (i, i + distance) for i in range(distance) if i + distance < n
        )
        rounds.append(CollectiveRound(flows, nbytes))
        distance *= 2
    return tuple(rounds)


def _ring(n: int, nbytes: int) -> Tuple[CollectiveRound, ...]:
    # Scatter (or reduce-scatter) then allgather: each of the 2(n-1)
    # neighbour rounds moves one n-th of the payload.
    chunk = max(1, _ceil_div(nbytes, n))
    flows = _ring_flows(n)
    return tuple(CollectiveRound(flows, chunk) for _ in range(2 * (n - 1)))


def _recursive_doubling(n: int, nbytes: int) -> Tuple[CollectiveRound, ...]:
    power = 1 << (n.bit_length() - 1)
    if power == n:
        prefix: Tuple[CollectiveRound, ...] = ()
        suffix: Tuple[CollectiveRound, ...] = ()
    else:
        # Fold the excess nodes into partners, run the power-of-two
        # exchange, then send the result back out.
        excess = n - power
        fold = tuple((power + j, j) for j in range(excess))
        unfold = tuple((j, power + j) for j in range(excess))
        prefix = (CollectiveRound(fold, nbytes),)
        suffix = (CollectiveRound(unfold, nbytes),)
    rounds = []
    distance = 1
    while distance < power:
        flows = tuple((i, i ^ distance) for i in range(power))
        rounds.append(CollectiveRound(flows, nbytes))
        distance *= 2
    return prefix + tuple(rounds) + suffix


def _pairwise_exchange(n: int, nbytes: int) -> Tuple[CollectiveRound, ...]:
    chunk = max(1, _ceil_div(nbytes, n))
    power_of_two = n & (n - 1) == 0
    rounds = []
    for k in range(1, n):
        if power_of_two:
            flows = tuple((i, i ^ k) for i in range(n))
        else:
            flows = tuple((i, (i + k) % n) for i in range(n))
        rounds.append(CollectiveRound(flows, chunk))
    return tuple(rounds)


def _bruck(n: int, nbytes: int) -> Tuple[CollectiveRound, ...]:
    # Each of the ceil(log2 n) rounds rotates roughly half of every
    # node's buffer to a power-of-two distance.
    chunk = max(1, _ceil_div(nbytes, 2))
    rounds = []
    distance = 1
    while distance < n:
        flows = tuple((i, (i + distance) % n) for i in range(n))
        rounds.append(CollectiveRound(flows, chunk))
        distance *= 2
    return tuple(rounds)


_BUILDERS = {
    ("broadcast", "binomial-tree"): _binomial_tree,
    ("broadcast", "ring"): _ring,
    ("allreduce", "recursive-doubling"): _recursive_doubling,
    ("allreduce", "ring"): _ring,
    ("alltoall", "pairwise-exchange"): _pairwise_exchange,
    ("alltoall", "bruck"): _bruck,
}


def collective_rounds(
    op: str, algorithm: str, nodes: int, nbytes: int
) -> Tuple[CollectiveRound, ...]:
    """Lower one collective to its round sequence.

    Args:
        op: One of :data:`COLLECTIVE_OPS`.
        algorithm: One of :data:`ALGORITHMS`\\ ``[op]``.
        nodes: Participating nodes (>= 2).
        nbytes: Per-node payload in bytes (> 0).
    """
    if op not in ALGORITHMS:
        raise ModelError(
            f"unknown collective {op!r}; choose from {sorted(ALGORITHMS)}"
        )
    if algorithm not in ALGORITHMS[op]:
        raise ModelError(
            f"unknown {op} algorithm {algorithm!r}; choose from "
            f"{list(ALGORITHMS[op])}"
        )
    if nodes < 2:
        raise ModelError(f"a collective needs >= 2 nodes, got {nodes}")
    if nbytes <= 0:
        raise ModelError(f"a collective needs nbytes > 0, got {nbytes}")
    return _BUILDERS[(op, algorithm)](nodes, nbytes)


def run_collective(
    runtime: CommRuntime,
    op: str,
    algorithm: str,
    nodes: int,
    nbytes: int,
    x: str = "1",
    y: str = "1",
    style: OperationStyle = OperationStyle.CHAINED,
    hierarchical: Optional[bool] = None,
) -> CollectiveResult:
    """Run one collective round by round and sum its cost.

    Args:
        runtime: The point-to-point runtime to drive (its machine
            decides hierarchy behaviour).
        hierarchical: Force hierarchy-aware (True) or flat (False)
            execution on cluster machines; ``None`` picks hierarchical
            whenever the machine has more than one core per node.
            Non-cluster machines ignore it.
    """
    rounds = collective_rounds(op, algorithm, nodes, nbytes)
    read = AccessPattern.parse(x)
    write = AccessPattern.parse(y)
    machine = runtime.machine
    cores = getattr(machine, "cores_per_node", 1)
    if not isinstance(machine, ClusterMachine):
        hierarchical = False
    elif hierarchical is None:
        hierarchical = cores > 1

    intra_gather_ns = 0.0
    intra_scatter_ns = 0.0
    contention = 1.0
    if isinstance(machine, ClusterMachine) and cores > 1:
        if hierarchical:
            # Cores fold into the node leader through shared memory,
            # leaders talk, results fan back out — two copy phases of
            # (k-1) payloads each through the intra-node rung.
            intra_gather_ns = (cores - 1) * machine.intra_node_ns(nbytes)
            intra_scatter_ns = (cores - 1) * machine.intra_node_ns(nbytes)
        else:
            # Flat: every core pushes the shared NIC at once, so every
            # inter-node round divides the NIC between them.
            contention = machine.nic_contention(cores)

    results = []
    round_ns = []
    for current in rounds:
        step = CommunicationStep(
            runtime,
            current.flows,
            read,
            write,
            current.bytes_per_flow,
        )
        result = step.run(style)
        results.append(result)
        round_ns.append(result.step_ns * contention)

    total_ns = intra_gather_ns + math.fsum(round_ns) + intra_scatter_ns
    return CollectiveResult(
        op=op,
        algorithm=algorithm,
        nodes=nodes,
        nbytes=nbytes,
        total_ns=total_ns,
        per_node_mbps=nbytes / total_ns * 1000.0,
        round_ns=tuple(round_ns),
        rounds=tuple(results),
        hierarchical=bool(hierarchical),
        intra_gather_ns=intra_gather_ns,
        intra_scatter_ns=intra_scatter_ns,
        nic_contention=contention,
    )
