"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``machines`` — list the built-in machines and their headline rates;
* ``estimate`` — model throughput of ``xQy`` for both strategies;
* ``lint`` — statically analyze a composition expression or ``xQy``
  operation and report structured diagnostics (``--deep`` adds the
  semantic verifier's CT21x passes; ``--json`` emits the
  ``repro-lint-report/1`` schema);
* ``verify`` — run the semantic plan verifier (race, deadlock,
  interval-bounds and fault-coverage passes) over an expression, a
  step pattern (``--step shift|all-to-all|fan-in``) or a plan file;
  exits 1 on any CT21x finding (``--json`` emits the
  ``repro-verify-report/1`` schema);
* ``measure`` — end-to-end runtime measurement of one transfer;
* ``table`` — print (or export as JSON) a calibration table;
* ``calibrate`` — run the Section-4 calibration measurements against
  the simulators (``--no-cache`` bypasses the calibration cache);
* ``trace`` — run one transfer (or a collective step) under the
  tracer and write a Chrome-trace / Perfetto JSON plus a per-resource
  utilization summary;
* ``advise`` — pick strategy and loop order for a distributed transpose;
* ``faults`` — run one transfer (or collective step) twice, healthy and
  under a seeded fault plan, and report the degradation (JSON via
  ``--json``, validated against the ``repro-faults-report/1`` schema);
  with ``--seeds`` the same operation runs once nominal plus once per
  seed through the sharded sweep engine and the report covers the
  whole seed population;
* ``sweep`` — execute a parameter grid (a preset like ``figure7`` or a
  spec file) on worker processes via :mod:`repro.sweep`; the merged
  JSON is bit-identical for any ``--workers``/``--shard-size``;
* ``load`` — drive sustained open/closed-loop traffic through a
  machine with the discrete-event engine (:mod:`repro.load`) and
  report p50/p99/p999 latency plus per-station utilization; the
  ``--json`` payload (``repro-load-report/1``) replays bit-identically
  for a given ``--profile``/``--seed``/``--duration``;
* ``report`` — regenerate every paper comparison (slow).

Exit codes, uniform across subcommands:

* ``0`` — success (for ``lint``: no error-severity diagnostics; for
  ``verify``: additionally no CT21x finding);
* ``1`` — operational failure (a :class:`ModelError`, including fault
  aborts, or an unreadable/unwritable input or output file, or ``lint``
  found at least one error-severity diagnostic, or ``verify`` found a
  CT21x diagnostic);
* ``2`` — usage error (argparse: unknown flags, bad choices).
"""

from __future__ import annotations

import argparse
import json as json_module
import sys
from typing import Optional

from .core.errors import ModelError
from .core.patterns import AccessPattern
from .core.operations import OperationStyle
from .core.serialization import dump_table
from .machines.registry import MACHINE_FACTORIES

MACHINES = dict(MACHINE_FACTORIES)

#: Uniform exit codes (see module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def _validated_seeds(seeds) -> list:
    """Validate a ``--seeds`` population before it reaches the sweep.

    Negative seeds collide with the engine's reserved nominal sentinel
    and duplicates would silently produce duplicate rows in the merged
    report, so both are hard errors (one-line ``error: ...``, exit 1).
    """
    negatives = sorted({seed for seed in seeds if seed < 0})
    if negatives:
        raise ModelError(
            "--seeds must be non-negative, got "
            + ", ".join(str(seed) for seed in negatives)
        )
    duplicates = sorted({seed for seed in seeds if seeds.count(seed) > 1})
    if duplicates:
        raise ModelError(
            "--seeds must be unique, got duplicate "
            + ", ".join(str(seed) for seed in duplicates)
        )
    return list(seeds)


def _machine(name: str):
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        )


def cmd_machines(args: argparse.Namespace) -> None:
    for factory in MACHINES.values():
        machine = factory()
        model = machine.model()
        contiguous = AccessPattern.contiguous()
        strided64 = AccessPattern.strided(64)
        rates = []
        for style in ("buffer-packing", "chained"):
            try:
                estimate = model.estimate(contiguous, strided64, style)
            except ModelError:
                # A machine without a general deposit engine (or a
                # co-processor) cannot chain into a strided destination.
                rates.append(f"{style.split('-')[0]} n/a")
            else:
                rates.append(f"{style.split('-')[0]} {estimate.mbps:.1f}")
        print(
            f"{machine.name:32} nodes: {machine.node.processor.clock_mhz:.0f} MHz, "
            f"net {machine.network.raw_link_mbps:.0f} MB/s raw | "
            f"1Q64: {', '.join(rates)} MB/s"
        )


def cmd_estimate(args: argparse.Namespace) -> None:
    machine = _machine(args.machine)
    model = machine.model(source=args.source, congestion=args.congestion)
    x = AccessPattern.parse(args.x)
    y = AccessPattern.parse(args.y)
    for style in OperationStyle:
        estimate = model.estimate(x, y, style, analyze=args.analyze)
        print(f"{model.q_notation(x, y, style):8} {style.value:16} "
              f"{estimate.mbps:7.1f} MB/s")
        if args.verbose or (args.analyze and estimate.diagnostics):
            print(estimate.render())
    choice = model.choose(x, y)
    print(f"-> use {choice.style.value}")


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        LINT_SCHEMA,
        analyze,
        has_errors,
        parse_expr,
        render_report,
        validate_lint_report,
        verify_expr,
    )

    model = None
    if args.machine != "none":
        machine = _machine(args.machine)
        model = machine.model(source=args.source, congestion=args.congestion)

    if args.expr is not None:
        exprs = [parse_expr(args.expr)]
    else:
        if model is None:
            raise ModelError(
                "lint needs either a notation string or a machine to build "
                "xQy from --x/--y/--style"
            )
        x = AccessPattern.parse(args.x)
        y = AccessPattern.parse(args.y)
        if args.style == "both":
            styles = [s.value for s in OperationStyle]
        else:
            styles = [args.style]
        exprs = [model.build(x, y, style) for style in styles]

    rules = args.rules.split(",") if args.rules else None
    results = []
    for expr in exprs:
        diagnostics = analyze(
            expr,
            table=model.table if model else None,
            capabilities=model.capabilities if model else None,
            constraints=model.constraints if model else (),
            rules=rules,
        )
        if args.deep:
            deep = verify_expr(
                expr, model=model, only=rules, name=expr.notation()
            )
            diagnostics = tuple(diagnostics) + deep.diagnostics
        results.append((expr, diagnostics))

    all_diagnostics = [d for __, diagnostics in results for d in diagnostics]
    if args.json:
        payload = {
            "schema": LINT_SCHEMA,
            "results": [
                {
                    "notation": expr.notation(),
                    "diagnostics": [d.to_dict() for d in diagnostics],
                }
                for expr, diagnostics in results
            ],
            "counts": {
                severity: sum(
                    1 for d in all_diagnostics if d.severity.value == severity
                )
                for severity in ("error", "warning", "advice")
            },
            "ok": not has_errors(all_diagnostics),
        }
        errors = validate_lint_report(payload)
        if errors:
            raise ModelError(
                "lint report fails its own schema: " + "; ".join(errors)
            )
        print(json_module.dumps(payload, indent=2))
    else:
        for expr, diagnostics in results:
            print(f"lint {expr.notation()}")
            print(render_report(diagnostics))
    return EXIT_FAILURE if has_errors(all_diagnostics) else EXIT_OK


def cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import (
        parse_expr,
        results_payload,
        validate_verify_report,
        verify_expr,
        verify_plan,
    )
    from .analysis.verify.examples import step_plan

    model = None
    if args.machine != "none":
        machine = _machine(args.machine)
        model = machine.model(source=args.source, congestion=args.congestion)
    rules = args.rules.split(",") if args.rules else None
    style = args.style

    if args.expr is not None:
        expr = parse_expr(args.expr)
        results = [
            verify_expr(
                expr,
                model=model,
                nbytes=args.bytes,
                style=style,
                only=rules,
                name=expr.notation(),
            )
        ]
    elif args.plan is not None:
        from .compiler.commgen import CommPlan, transpose_2d

        if args.plan == "transpose":
            plan = transpose_2d(256, 256, args.nodes)
        else:
            plan = CommPlan.from_json(args.plan)
        results = [
            verify_plan(
                plan,
                model=model,
                style=style,
                schedule=args.schedule,
                discipline=args.discipline,
                only=rules,
            )
        ]
    else:
        plan = step_plan(
            args.step, args.nodes, x=args.x, y=args.y, nbytes=args.bytes
        )
        results = [
            verify_plan(
                plan,
                model=model,
                style=style,
                schedule=args.schedule,
                discipline=args.discipline,
                only=rules,
            )
        ]

    payload = results_payload(results)
    errors = validate_verify_report(payload)
    if errors:
        raise ModelError(
            "verify report fails its own schema: " + "; ".join(errors)
        )
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        for result in results:
            print(result.render())
    return EXIT_OK if payload["ok"] else EXIT_FAILURE


def cmd_measure(args: argparse.Namespace) -> None:
    from .runtime.engine import measure_q

    machine = _machine(args.machine)
    x = AccessPattern.parse(args.x)
    y = AccessPattern.parse(args.y)
    style = OperationStyle(args.style)
    result = measure_q(machine, x, y, args.bytes, style)
    print(result)
    for phase, ns in result.phase_ns:
        print(f"  {phase:12} {ns / 1000.0:9.1f} us")


def cmd_trace(args: argparse.Namespace) -> int:
    from .core.operations import OperationStyle as Style
    from .runtime.engine import CommRuntime
    from .trace import (
        chrome_trace,
        render_timeline,
        tracing,
        utilization,
        validate_chrome_trace,
    )

    machine = _machine(args.machine)
    x = AccessPattern.parse(args.x)
    y = AccessPattern.parse(args.y)
    style = Style(args.style)

    import math as math_module

    from .runtime.collectives import ALGORITHMS

    with tracing() as tracer:
        # Built inside the traced region so calibration-cache and
        # memory-simulator counters land in the trace too.
        runtime = CommRuntime(machine, rates=args.rates)
        if args.step is not None and args.step in ALGORITHMS:
            from .runtime.collectives import run_collective

            algorithm = ALGORITHMS[args.step][0]
            collective = run_collective(
                runtime, args.step, algorithm, args.nodes, args.bytes,
                x=args.x, y=args.y, style=style,
            )
            # Phase spans cover every round's transfer.
            expected_ns = math_module.fsum(
                step.sample.ns for step in collective.rounds
            )
            reported_mbps = collective.per_node_mbps
            reported_ns = collective.total_ns
            layout = "hierarchical" if collective.hierarchical else "flat"
            headline = (
                f"{args.step}/{algorithm} over {args.nodes} nodes "
                f"({layout}, {len(collective.rounds)} rounds): "
                f"{collective.per_node_mbps:.1f} MB/s per node, "
                f"{collective.total_ns / 1e3:.1f} us"
            )
            # The collective's own phase-sum invariant: intra-node
            # gather + inter-node rounds + intra-node scatter is the
            # whole story, exactly.
            parts = (
                collective.intra_gather_ns
                + math_module.fsum(collective.round_ns)
                + collective.intra_scatter_ns
            )
            if abs(parts - collective.total_ns) > 1e-6 * max(
                collective.total_ns, 1.0
            ):
                raise ModelError(
                    f"collective phases sum to {parts:.1f} ns but "
                    f"total_ns is {collective.total_ns:.1f} ns"
                )
        elif args.step is not None:
            from .netsim.patterns import all_to_all, cyclic_shift

            flows = (
                all_to_all(args.nodes)
                if args.step == "all-to-all"
                else cyclic_shift(args.nodes)
            )
            from .runtime.collective import CommunicationStep

            step = CommunicationStep(runtime, flows, x, y, args.bytes)
            outcome = step.run(style)
            expected_ns = outcome.sample.ns
            reported_mbps = outcome.sample.mbps
            reported_ns = outcome.sample.ns
            headline = (
                f"{args.step} step over {args.nodes} nodes: "
                f"{outcome.per_node_mbps:.1f} MB/s per node, "
                f"{outcome.step_ns / 1e3:.1f} us"
            )
        else:
            sample = runtime.transfer(
                x, y, args.bytes, style=style, duplex=args.duplex
            )
            expected_ns = sample.ns
            reported_mbps = sample.mbps
            reported_ns = sample.ns
            headline = str(sample)

    phase_spans = tracer.spans("phase")
    phase_sum = sum(span.duration_ns for span in phase_spans)
    # The tracing invariant the docs promise: phase spans partition the
    # measured end-to-end time of the sampled transfer(s).
    if abs(phase_sum - expected_ns) > 1e-6 * max(expected_ns, 1.0):
        raise ModelError(
            f"phase spans sum to {phase_sum:.1f} ns but the transfer "
            f"reported {expected_ns:.1f} ns"
        )

    payload = chrome_trace(
        tracer,
        metadata={
            "machine": machine.name,
            "operation": f"{args.x}Q{args.y}",
            "style": style.value,
            "nbytes": args.bytes,
            "transfer_mbps": reported_mbps,
            "transfer_ns": reported_ns,
            "phase_sum_ns": phase_sum,
            "step": args.step,
        },
    )
    errors = validate_chrome_trace(payload)
    if errors:
        raise ModelError(
            "emitted trace fails its own schema: " + "; ".join(errors)
        )
    with open(args.out, "w") as handle:
        json_module.dump(payload, handle, indent=2)

    if args.json:
        print(json_module.dumps(payload, indent=2))
        return EXIT_OK

    print(headline)
    print(f"wrote {args.out} ({len(payload['traceEvents'])} events) — "
          "load it in chrome://tracing or ui.perfetto.dev")
    print()
    print("phases:")
    for span in phase_spans:
        share = span.duration_ns / phase_sum * 100.0 if phase_sum else 0.0
        print(f"  {span.name:20} {span.duration_ns / 1e3:10.1f} us "
              f"{share:5.1f}%")
    print(f"  {'total':20} {phase_sum / 1e3:10.1f} us  (= measured "
          f"{expected_ns / 1e3:.1f} us)")
    busy = utilization(tracer)
    if busy:
        print()
        print("resource utilization (busy fraction of traced interval):")
        for track, fraction in busy.items():
            print(f"  {track:20} {fraction * 100.0:5.1f}%")
    counters = tracer.metrics.counters()
    if counters:
        print()
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name:32} {value:,.0f}")
    if args.timeline:
        print()
        print(render_timeline(tracer))
    return EXIT_OK


def cmd_advise(args: argparse.Namespace) -> None:
    from .compiler.advisor import advise_transpose

    machine = _machine(args.machine)
    order, advice = advise_transpose(
        machine, args.rows, args.cols, args.nodes, element_words=args.element_words
    )
    direction = (
        "contiguous loads + strided stores (1Qn)"
        if order == "row"
        else "strided loads + contiguous stores (nQ1)"
    )
    print(f"{machine.name}: use loop order {order!r} — {direction}")
    print(advice.render())


def _load_overload_spec(args: argparse.Namespace):
    """The CLI's overload flags as an OverloadSpec (None = unprotected)."""
    from .load import OverloadSpec

    if (
        args.admission == "none"
        and args.station_capacity == 0
        and args.breaker_threshold == 0
    ):
        return None
    return OverloadSpec(
        admission=args.admission,
        queue_limit=args.queue_limit,
        station_capacity=args.station_capacity,
        token_rate_per_s=args.token_rate,
        token_burst=args.token_burst,
        target_p99_ns=args.target_p99_us * 1e3,
        p99_ceiling_ns=args.p99_ceiling_us * 1e3,
        reject_retry=args.reject_retry,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ns=args.breaker_cooldown_us * 1e3,
    )


def _load_profile_for(args: argparse.Namespace):
    """Resolve + adjust the load profile from the CLI flags."""
    import dataclasses as dataclasses_module

    from .load import profile_by_name

    profile = profile_by_name(args.profile)
    if args.machine is not None:
        profile = dataclasses_module.replace(profile, machine=args.machine)
    if args.nodes is not None:
        profile = dataclasses_module.replace(profile, nodes=args.nodes)
    if args.rate_x != 1.0:
        profile = profile.scaled(args.rate_x)
    if args.deadline_us != 0.0:
        deadline_ns = args.deadline_us * 1e3

        def with_deadline(spec):
            return dataclasses_module.replace(spec, templates=tuple(
                dataclasses_module.replace(t, deadline_ns=deadline_ns)
                for t in spec.templates
            ))

        profile = dataclasses_module.replace(
            profile,
            open_loops=tuple(
                with_deadline(spec) for spec in profile.open_loops
            ),
            closed_loops=tuple(
                with_deadline(spec) for spec in profile.closed_loops
            ),
        )
    overload = _load_overload_spec(args)
    if overload is not None:
        profile = dataclasses_module.replace(profile, overload=overload)
    return profile


def _load_curve(args, profile, faults, horizon_ns) -> int:
    """`load --latency-curve`: sweep multipliers, report the knee."""
    from .load import digest
    from .sweep.loadcurve import run_load_curve

    try:
        multipliers = [
            float(token)
            for token in args.latency_curve.split(",")
            if token.strip()
        ]
    except ValueError:
        raise ModelError(
            f"--latency-curve wants comma-separated numbers, "
            f"got {args.latency_curve!r}"
        )
    payload = run_load_curve(
        profile, args.seed, horizon_ns,
        multipliers=multipliers, workers=args.workers, faults=faults,
    )
    payload_digest = digest(payload)
    if args.json:
        payload = dict(payload)
        payload["digest"] = payload_digest
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    knee = payload["knee_multiplier"]
    print(f"{profile.name} on {profile.machine} x{profile.nodes} nodes, "
          f"seed {args.seed}, {args.duration:g}s per point")
    print(f"  {'x':>5} {'offered':>8} {'done':>8} {'shed+rej':>8} "
          f"{'p50 us':>10} {'p99 us':>10} {'p999 us':>10}")
    for point in payload["points"]:
        dropped = point.get("rejected", 0) + point.get("shed", 0)
        print(f"  {point['multiplier']:>5g} {point['offered']:>8} "
              f"{point['completed']:>8} {dropped:>8} "
              f"{point['p50_ns'] / 1e3:>10.1f} "
              f"{point['p99_ns'] / 1e3:>10.1f} "
              f"{point['p999_ns'] / 1e3:>10.1f}")
    if knee is not None:
        print(f"  knee: p99 exceeds {payload['knee_factor']:g}x the "
              f"low-load baseline at {knee:g}x offered load")
    else:
        print("  knee: none within the swept range")
    print(f"  digest    {payload_digest[:16]}")
    return EXIT_OK


def cmd_load(args: argparse.Namespace) -> int:
    import time as time_module

    from .faults import FaultPlan
    from .load import LoadEngine

    if args.duration <= 0.0:
        raise ModelError("load duration must be positive")
    if args.nodes is not None and args.nodes < 2:
        raise ModelError("a load profile needs at least 2 nodes")
    profile = _load_profile_for(args)
    faults = None
    if args.plan is not None:
        faults = FaultPlan.from_json(args.plan)
        if args.chaos_seed is not None:
            faults = faults.with_seed(args.chaos_seed)
    elif args.chaos_seed is not None:
        faults = FaultPlan.chaos(args.chaos_seed)
    if args.latency_curve is not None:
        return _load_curve(args, profile, faults, args.duration * 1e9)
    engine = LoadEngine(profile, seed=args.seed, faults=faults)
    horizon_ns = args.duration * 1e9
    started = time_module.perf_counter()
    result = engine.run(horizon_ns, workers=args.workers)
    elapsed = time_module.perf_counter() - started
    events = result.stats.get("events", 0)
    if args.json:
        # Canonical payload only: identical bytes for any --workers
        # value or replay.  Wall-clock facts are nondeterministic and
        # go to stderr instead (the sweep convention).
        payload = dict(result.to_dict())
        payload["digest"] = result.digest()
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        print(
            f"load: {events} events in {elapsed:.2f}s "
            f"({events / elapsed if elapsed > 0 else 0.0:,.0f} events/s)",
            file=sys.stderr,
        )
        return EXIT_OK
    latency = result.latency
    print(f"{profile.name} on {profile.machine} x{profile.nodes} nodes, "
          f"seed {args.seed}, {args.duration:g}s simulated"
          + (f", chaos seed {args.chaos_seed}" if faults else ""))
    print(f"  requests: {result.completed} completed "
          f"/ {result.offered} offered")
    print(f"  latency:  p50 {latency['p50'] / 1e3:10.1f} us   "
          f"p99 {latency['p99'] / 1e3:10.1f} us   "
          f"p999 {latency['p999'] / 1e3:10.1f} us")
    print(f"  engine:   {events} events in {elapsed:.2f}s "
          f"({events / elapsed if elapsed > 0 else 0.0:,.0f} events/s)")
    busiest = sorted(
        result.stations.items(),
        key=lambda item: item[1]["utilization"],
        reverse=True,
    )[:3]
    for name, summary in busiest:
        print(f"  {name:14} util {summary['utilization']:6.1%}  "
              f"depth mean {summary['mean_depth']:6.2f} "
              f"max {summary['max_depth']}")
    if result.overload is not None:
        totals = result.overload["totals"]
        opened = sum(
            state["opened"]
            for state in result.overload["breakers"].values()
        )
        print(f"  overload: {totals['rejected']} rejected, "
              f"{totals['shed']} shed, {totals['broken']} broken, "
              f"{totals['retried']} retried "
              f"(admission {result.overload['admission']['policy']}"
              + (f", {opened} breaker trips" if opened else "") + ")")
    print(f"  digest    {result.digest()[:16]}")
    return EXIT_OK


def cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import (
        SweepError,
        SweepSpec,
        calibration_spec,
        collectives_spec,
        figure7_spec,
        figure8_spec,
        run_sweep,
    )

    if args.spec is not None:
        with open(args.spec) as handle:
            spec = SweepSpec.from_dict(json_module.load(handle))
    elif args.grid == "figure7":
        spec = figure7_spec()
    elif args.grid == "figure8":
        spec = figure8_spec()
    elif args.grid == "calibration":
        spec = calibration_spec(args.machine)
    elif args.grid == "collectives":
        spec = collectives_spec()
    else:
        raise SweepError(f"unknown grid {args.grid!r}")
    if args.seeds:
        if spec.kind not in ("transfer", "collective"):
            raise SweepError(
                "--seeds only applies to transfer or collective sweeps"
            )
        import dataclasses as dataclasses_module

        from .sweep import NOMINAL_SEED

        spec = dataclasses_module.replace(
            spec, seeds=(NOMINAL_SEED, *_validated_seeds(args.seeds))
        )

    result = run_sweep(
        spec,
        workers=args.workers,
        shard_size=args.shard_size,
        shuffle_seed=args.shuffle_seed,
        preflight_verify=args.verify,
        engine=args.engine,
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(result.canonical_json())
        print(f"wrote {args.out} ({len(result)} cells, "
              f"digest {result.digest()[:16]})")
        return EXIT_OK
    if args.json:
        # The canonical payload only: identical bytes for any worker
        # count, shard size or completion order.  Run facts (workers,
        # wall seconds) are nondeterministic and go to stderr instead.
        payload = dict(result.to_dict())
        payload["digest"] = result.digest()
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        verified = result.stats.get("preflight_verified")
        preflight = (
            f" preflight-verified={verified}" if verified is not None else ""
        )
        print(
            f"sweep: {result.stats.get('strategy')} "
            f"workers={result.stats.get('workers')} "
            f"shards={result.stats.get('shards')} "
            f"{result.stats.get('elapsed_s', 0.0):.2f}s{preflight}",
            file=sys.stderr,
        )
        return EXIT_OK

    stats = result.stats
    verified = stats.get("preflight_verified")
    preflight = (
        f", preflight-verified={verified}" if verified is not None else ""
    )
    print(
        f"swept {len(result)} cells in {stats.get('elapsed_s', 0.0):.2f}s "
        f"({stats.get('strategy')}, workers={stats.get('workers')}, "
        f"shards={stats.get('shards')}{preflight})"
    )
    print(f"digest {result.digest()}")
    for cell, row in zip(result.cells, result.rows):
        if "model_mbps" in row:
            print(f"  {row['id']:40} model {row['model_mbps']:7.1f}  "
                  f"measured {row['mbps']:7.1f} MB/s")
        elif "op" in row:
            layout = "hier" if row.get("hierarchical") else "flat"
            print(f"  {row['id']:46} {row['algorithm']:18} {layout:4} "
                  f"{row['rounds']:3d} rounds "
                  f"{row['ns'] / 1e3:10.1f} us {row['mbps']:8.1f} MB/s")
        else:
            print(f"  {row['id']:40} {row['mbps']:7.1f} MB/s")
    return EXIT_OK


def _cmd_faults_sweep(args, machine, x, y, style) -> int:
    """The ``faults --seeds`` path: nominal + one cell per seed, via
    the sweep engine (workers/shard-size apply)."""
    from .sweep import NOMINAL_SEED, SweepSpec, run_sweep

    spec = SweepSpec(
        kind="transfer",
        machines=(args.machine,),
        pairs=((args.x, args.y),),
        styles=(style.value,),
        sizes=(args.bytes,),
        seeds=(NOMINAL_SEED, *_validated_seeds(args.seeds)),
        rates=args.rates,
        duplex="off",
    )
    result = run_sweep(
        spec, workers=args.workers, shard_size=args.shard_size
    )
    nominal = result.rows[0]
    seeded = list(zip(spec.seeds[1:], result.rows[1:]))
    rows = []
    for seed, row in seeded:
        delta_pct = (
            (1.0 - row["mbps"] / nominal["mbps"]) * 100.0
            if nominal["mbps"]
            else 0.0
        )
        rows.append(
            {
                "seed": seed,
                "mbps": row["mbps"],
                "ns": row["ns"],
                "retries": row["retries"],
                "fallback": row.get("degraded"),
                "delta": {"throughput_pct": delta_pct},
            }
        )
    payload = {
        "schema": "repro-faults-sweep/1",
        "machine": machine.name,
        "operation": f"{args.x}Q{args.y}",
        "style": style.value,
        "nbytes": args.bytes,
        "nominal": {"mbps": nominal["mbps"], "ns": nominal["ns"]},
        "seeds": rows,
    }
    if args.json:
        print(json_module.dumps(payload, indent=2))
        return EXIT_OK
    print(f"{machine.name} {args.x}Q{args.y} {style.value} "
          f"{args.bytes} B — {len(rows)} seed(s)")
    print(f"  nominal:  {nominal['mbps']:8.1f} MB/s")
    for row in rows:
        extra = f"  retries {row['retries']}" if row["retries"] else ""
        fallback = "  fallback" if row["fallback"] else ""
        print(f"  seed {row['seed']:>5}: {row['mbps']:8.1f} MB/s "
              f"({row['delta']['throughput_pct']:+.1f}% throughput lost)"
              f"{extra}{fallback}")
    return EXIT_OK


def cmd_faults(args: argparse.Namespace) -> int:
    from .core.operations import OperationStyle as Style
    from .faults import FaultPlan, injecting, validate_faults_report
    from .runtime.engine import CommRuntime
    from .trace import tracing

    machine = _machine(args.machine)
    x = AccessPattern.parse(args.x)
    y = AccessPattern.parse(args.y)
    style = Style(args.style)
    if args.seeds:
        if args.step is not None:
            raise ModelError(
                "--seeds sweeps point-to-point transfers; it does not "
                "combine with --step"
            )
        return _cmd_faults_sweep(args, machine, x, y, style)
    if args.plan is not None:
        plan = FaultPlan.from_json(args.plan)
        if args.seed is not None:
            plan = plan.with_seed(args.seed)
    else:
        plan = FaultPlan.chaos(args.seed if args.seed is not None else 7)

    def run(active):
        """One measurement; its own tracer so the runs don't mix."""
        with tracing() as tracer:
            runtime = CommRuntime(machine, rates=args.rates, faults=active)
            if args.step is not None:
                from .runtime.collectives import ALGORITHMS

                if args.step in ALGORITHMS:
                    from types import SimpleNamespace

                    from .runtime.collectives import run_collective

                    result = run_collective(
                        runtime, args.step, ALGORITHMS[args.step][0],
                        args.nodes, args.bytes, x=args.x, y=args.y,
                        style=style,
                    )
                    samples = [step.sample for step in result.rounds]
                    # One sample-shaped view over every round, so the
                    # report's phase/retry/fallback fields cover the
                    # whole collective rather than one round of it.
                    combined = SimpleNamespace(
                        phase_ns=tuple(
                            pair for s in samples for pair in s.phase_ns
                        ),
                        retries=sum(s.retries for s in samples),
                        degraded=next(
                            (s.degraded for s in samples
                             if s.degraded is not None),
                            None,
                        ),
                    )
                    return (
                        result.per_node_mbps, result.total_ns, combined,
                        tracer,
                    )
                from .netsim.patterns import all_to_all, cyclic_shift
                from .runtime.collective import CommunicationStep

                flows = (
                    all_to_all(args.nodes)
                    if args.step == "all-to-all"
                    else cyclic_shift(args.nodes)
                )
                step = CommunicationStep(runtime, flows, x, y, args.bytes)
                outcome = step.run(style)
                return outcome.per_node_mbps, outcome.step_ns, outcome.sample, tracer
            sample = runtime.transfer(x, y, args.bytes, style=style)
            return sample.mbps, sample.ns, sample, tracer

    # ``injecting`` would also work; an explicit runtime argument keeps
    # the nominal run provably outside the plan's reach.
    nominal_mbps, nominal_ns, nominal, __ = run(None)
    degraded_mbps, degraded_ns, degraded, tracer = run(plan)

    def phase_dict(sample):
        phases = {}
        for name, ns in sample.phase_ns:
            phases[name] = phases.get(name, 0.0) + ns
        return phases

    delta_pct = (
        (1.0 - degraded_mbps / nominal_mbps) * 100.0 if nominal_mbps else 0.0
    )
    counters = {
        name: value
        for name, value in sorted(tracer.metrics.counters().items())
        if name.startswith(("faults.", "step.", "cache."))
    }
    payload = {
        "schema": "repro-faults-report/1",
        "machine": machine.name,
        "operation": f"{args.x}Q{args.y}",
        "style": style.value,
        "nbytes": args.bytes,
        "step": args.step,
        "seed": plan.seed,
        "plan": plan.to_dict(),
        "nominal": {
            "mbps": nominal_mbps,
            "ns": nominal_ns,
            "phase_ns": phase_dict(nominal),
        },
        "degraded": {
            "mbps": degraded_mbps,
            "ns": degraded_ns,
            "phase_ns": phase_dict(degraded),
            "retries": degraded.retries,
            "fallback": (
                degraded.degraded.to_dict()
                if degraded.degraded is not None
                else None
            ),
        },
        "delta": {"throughput_pct": delta_pct},
        "counters": counters,
    }
    errors = validate_faults_report(payload)
    if errors:
        raise ModelError(
            "faults report fails its own schema: " + "; ".join(errors)
        )
    if args.json:
        print(json_module.dumps(payload, indent=2))
        return EXIT_OK

    print(f"{machine.name} {args.x}Q{args.y} {style.value} "
          f"{args.bytes} B (seed {plan.seed})")
    print(f"  plan: {'; '.join(plan.describe())}")
    print(f"  nominal:  {nominal_mbps:8.1f} MB/s  {nominal_ns / 1e3:10.1f} us")
    print(f"  degraded: {degraded_mbps:8.1f} MB/s  {degraded_ns / 1e3:10.1f} us"
          f"  ({delta_pct:+.1f}% throughput lost)")
    if degraded.retries:
        print(f"  retries:  {degraded.retries}")
    if degraded.degraded is not None:
        print(f"  fallback: {degraded.degraded}")
    if counters:
        print("  counters:")
        for name, value in counters.items():
            print(f"    {name:32} {value:,.0f}")
    return EXIT_OK


def cmd_table(args: argparse.Namespace) -> None:
    machine = _machine(args.machine)
    if args.source == "paper":
        table = machine.paper_table(congestion=args.congestion)
    else:
        table = machine.simulated_table(congestion=args.congestion)
    if args.json:
        dump_table(table, args.json)
        print(f"wrote {args.json}")
        return
    print(table.name)
    for key, rate in sorted(table.to_dict().items()):
        print(f"  {key:8} {rate:7.1f} MB/s")


def cmd_calibrate(args: argparse.Namespace) -> None:
    import time

    names = sorted(MACHINES) if args.machine == "all" else [args.machine]
    for name in names:
        machine = _machine(name)
        started = time.perf_counter()
        table = machine.simulated_table(
            congestion=args.congestion,
            nwords=args.words,
            use_cache=not args.no_cache,
        )
        elapsed = time.perf_counter() - started
        print(f"{table.name}  ({elapsed * 1e3:.0f} ms)")
        for key, rate in sorted(table.to_dict().items()):
            print(f"  {key:8} {rate:7.1f} MB/s")
        if args.json:
            path = args.json if len(names) == 1 else f"{name}-{args.json}"
            dump_table(table, path)
            print(f"wrote {path}")


def cmd_report(args: argparse.Namespace) -> None:
    import runpy
    import os

    script = os.path.join(
        os.path.dirname(__file__), "..", "..", "scripts",
        "make_experiments_report.py",
    )
    if os.path.exists(script):
        runpy.run_path(script, run_name="__main__")
    else:
        # Installed without the scripts tree: run the same content inline.
        from .bench import render, table1, table5, table6

        for title, rows in (
            ("Table 1 (T3D)", table1(t3d())),
            ("Table 1 (Paragon)", table1(paragon())),
            ("Table 5", table5()),
            ("Table 6", table6()),
        ):
            print(render(title, rows))
            print()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Copy-transfer model of Stricker & Gross (ISCA 1995)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("machines", help="list built-in machines")

    estimate = commands.add_parser("estimate", help="model an xQy operation")
    estimate.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    estimate.add_argument("--x", default="1", help="read pattern (0/1/s/w)")
    estimate.add_argument("--y", default="64", help="write pattern (0/1/s/w)")
    estimate.add_argument("--source", default="paper",
                          choices=("paper", "simulated"))
    estimate.add_argument("--congestion", type=int, default=None)
    estimate.add_argument("--verbose", action="store_true")
    estimate.add_argument("--analyze", action="store_true",
                          help="attach static-analyzer diagnostics")

    lint = commands.add_parser(
        "lint",
        help="statically analyze a composition expression or xQy operation",
        description=(
            "Run the copy-transfer plan linter.  Give either a notation "
            "string ('64C1 o (1S0 || Nd || 0D1) o 1C1') or --x/--y/--style "
            "to lint the expressions a machine's model would build.  "
            "Exits 1 when any error-severity diagnostic is found."
        ),
    )
    lint.add_argument("expr", nargs="?", default=None,
                      help="composition in paper notation")
    lint.add_argument("--machine", default="t3d",
                      choices=sorted(MACHINES) + ["none"],
                      help="machine context for calibration/capability rules "
                           "('none' for composition rules only)")
    lint.add_argument("--x", default="1", help="read pattern (0/1/s/w)")
    lint.add_argument("--y", default="64", help="write pattern (0/1/s/w)")
    lint.add_argument(
        "--style",
        default="both",
        choices=[style.value for style in OperationStyle] + ["both"],
    )
    lint.add_argument("--source", default="paper",
                      choices=("paper", "simulated"))
    lint.add_argument("--congestion", type=int, default=None)
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--deep", action="store_true",
                      help="also run the semantic verifier's CT21x passes "
                           "and append their diagnostics")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable diagnostics "
                           "(repro-lint-report/1)")

    verify = commands.add_parser(
        "verify",
        help="semantic plan verification: races, deadlocks, bounds, coverage",
        description=(
            "Lower a composition expression, a step pattern or a "
            "communication plan into the verifier's plan IR and run the "
            "CT21x dataflow passes: resource races (CT211), rendezvous "
            "deadlocks (CT212/CT213), interval bounds vs the model "
            "estimate (CT214) and fault-class coverage (CT215).  Exits "
            "1 when any CT21x finding (or error) is reported."
        ),
    )
    verify.add_argument("expr", nargs="?", default=None,
                        help="composition in paper notation (default: "
                             "verify the --step pattern instead)")
    verify.add_argument("--machine", default="t3d",
                        choices=sorted(MACHINES) + ["none"],
                        help="machine context for bounds/coverage passes "
                             "('none' for structural passes only)")
    verify.add_argument("--x", default="1", help="read pattern (0/1/s/w)")
    verify.add_argument("--y", default="64", help="write pattern (0/1/s/w)")
    verify.add_argument(
        "--style",
        default=None,
        choices=[style.value for style in OperationStyle],
        help="operation style the claims/coverage model (default: "
             "the model's own choice)",
    )
    verify.add_argument("--bytes", type=int, default=131072,
                        help="payload per operation")
    verify.add_argument("--source", default="paper",
                        choices=("paper", "simulated"))
    verify.add_argument("--congestion", type=int, default=None)
    verify.add_argument("--step", default="shift",
                        choices=("all-to-all", "shift", "fan-in",
                                 "broadcast", "allreduce", "alltoall"),
                        help="step pattern or collective op to verify "
                             "when no expression or plan is given "
                             "(collectives lower their whole round "
                             "sequence into the plan IR)")
    verify.add_argument("--nodes", type=int, default=8,
                        help="partition size for --step / --plan transpose")
    verify.add_argument("--schedule", default="phased",
                        choices=("phased", "eager"),
                        help="concurrency structure: conflict-free phases "
                             "or every operation at once")
    verify.add_argument("--discipline", default="interleaved",
                        choices=("interleaved", "blocking-sends"),
                        help="per-node rendezvous ordering")
    verify.add_argument("--plan", default=None,
                        help="JSON CommPlan file, or 'transpose' for the "
                             "built-in Figure 9 plan")
    verify.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    verify.add_argument("--json", action="store_true",
                        help="emit the machine-readable report "
                             "(repro-verify-report/1)")

    measure = commands.add_parser("measure", help="end-to-end measurement")
    measure.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    measure.add_argument("--x", default="1")
    measure.add_argument("--y", default="64")
    measure.add_argument("--bytes", type=int, default=131072)
    measure.add_argument(
        "--style",
        default="chained",
        choices=[style.value for style in OperationStyle],
    )

    trace = commands.add_parser(
        "trace",
        help="trace one transfer or collective step, write Chrome-trace JSON",
        description=(
            "Run a transfer (default) or a collective step with the "
            "tracer installed and export the result as Chrome-trace / "
            "Perfetto JSON plus a per-resource utilization summary.  "
            "The per-phase span durations always sum to the measured "
            "end-to-end nanoseconds."
        ),
    )
    trace.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    trace.add_argument("--x", default="1", help="read pattern (0/1/s/w)")
    trace.add_argument("--y", default="64", help="write pattern (0/1/s/w)")
    trace.add_argument("--bytes", type=int, default=131072)
    trace.add_argument(
        "--style",
        default="chained",
        choices=[style.value for style in OperationStyle],
    )
    trace.add_argument("--rates", default="simulated",
                       choices=("simulated", "paper"),
                       help="calibration source for the runtime")
    trace.add_argument("--duplex", action="store_true",
                       help="node sends and receives simultaneously")
    trace.add_argument("--step", default=None,
                       choices=("all-to-all", "shift",
                                "broadcast", "allreduce", "alltoall"),
                       help="trace a whole collective step (all-to-all/"
                            "shift) or a full multi-round collective op "
                            "instead")
    trace.add_argument("--nodes", type=int, default=8,
                       help="partition size for --step")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace output path")
    trace.add_argument("--json", action="store_true",
                       help="print the Chrome-trace JSON to stdout")
    trace.add_argument("--timeline", action="store_true",
                       help="render a text timeline of the trace")

    advise = commands.add_parser(
        "advise", help="choose strategy and loop order for a transpose"
    )
    advise.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    advise.add_argument("--rows", type=int, default=1024)
    advise.add_argument("--cols", type=int, default=1024)
    advise.add_argument("--nodes", type=int, default=64)
    advise.add_argument("--element-words", type=int, default=2)

    faults = commands.add_parser(
        "faults",
        help="measure one operation healthy vs under a seeded fault plan",
        description=(
            "Run a transfer (or a collective step with --step) twice — "
            "once healthy, once under a fault plan — and report the "
            "throughput lost, retries paid, and any graceful fallback "
            "(chained -> buffer-packing when the deposit engine is "
            "faulted).  Without --plan a built-in chaos plan seeded by "
            "--seed runs; the emitted JSON embeds the full plan, so any "
            "report can be replayed verbatim via --plan."
        ),
    )
    faults.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    faults.add_argument("--x", default="1", help="read pattern (0/1/s/w)")
    faults.add_argument("--y", default="64", help="write pattern (0/1/s/w)")
    faults.add_argument("--bytes", type=int, default=131072)
    faults.add_argument(
        "--style",
        default="chained",
        choices=[style.value for style in OperationStyle],
    )
    faults.add_argument("--rates", default="paper",
                        choices=("simulated", "paper"),
                        help="calibration source for the runtime")
    faults.add_argument("--seed", type=int, default=None,
                        help="fault-plan seed (default 7; with --plan, "
                             "re-seeds the loaded plan)")
    faults.add_argument("--plan", default=None,
                        help="JSON fault-plan file (default: built-in "
                             "chaos plan)")
    faults.add_argument("--step", default=None,
                        choices=("all-to-all", "shift",
                                 "broadcast", "allreduce", "alltoall"),
                        help="measure a whole collective step or a "
                             "full multi-round collective op instead")
    faults.add_argument("--nodes", type=int, default=8,
                        help="partition size for --step")
    faults.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    faults.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="run a whole seed population through the "
                             "sweep engine (one row per seed, plus the "
                             "nominal baseline)")
    faults.add_argument("--workers", type=int, default=1,
                        help="worker processes for --seeds")
    faults.add_argument("--shard-size", type=int, default=None,
                        help="cells per shard for --seeds")

    table = commands.add_parser("table", help="print a calibration table")
    table.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    table.add_argument("--source", default="paper",
                       choices=("paper", "simulated"))
    table.add_argument("--congestion", type=int, default=None)
    table.add_argument("--json", default=None, help="write JSON to this path")

    calibrate = commands.add_parser(
        "calibrate",
        help="run the Section-4 calibration measurements on the simulators",
        description=(
            "Derive a machine's calibration table by running every basic "
            "transfer on the memory-system simulator.  Results come from "
            "the calibration cache when an identical measurement has run "
            "before; --no-cache forces a full remeasurement and leaves "
            "the cache untouched."
        ),
    )
    calibrate.add_argument("--machine", default="all",
                           choices=sorted(MACHINES) + ["all"])
    calibrate.add_argument("--words", type=int, default=32768,
                           help="stream length per measurement")
    calibrate.add_argument("--congestion", type=int, default=None)
    calibrate.add_argument("--no-cache", action="store_true",
                           help="bypass the calibration cache entirely")
    calibrate.add_argument("--json", default=None,
                           help="write the table(s) as JSON to this path")

    sweep = commands.add_parser(
        "sweep",
        help="execute a parameter grid on worker processes",
        description=(
            "Run a declarative parameter sweep through the sharded "
            "engine (repro.sweep): plan the grid into shards, execute "
            "them on --workers processes, and merge deterministically. "
            "The emitted canonical JSON (and its digest) is "
            "bit-identical for any --workers / --shard-size / "
            "--shuffle-seed / --engine combination."
        ),
    )
    sweep.add_argument("--grid", default="figure7",
                       choices=("figure7", "figure8", "calibration",
                                "collectives"),
                       help="preset grid to sweep (ignored with --spec); "
                            "'collectives' runs every collective op with "
                            "every applicable algorithm (plus the "
                            "model-driven 'auto' choice) on the cluster "
                            "and xe machines")
    sweep.add_argument("--machine", default="t3d", choices=sorted(MACHINES),
                       help="machine for the calibration grid")
    sweep.add_argument("--spec", default=None,
                       help="JSON SweepSpec file instead of a preset")
    sweep.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="add a fault-seed axis to a transfer or "
                            "collective grid")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1: in-process)")
    sweep.add_argument("--shard-size", type=int, default=None,
                       help="cells per shard (default: a few per worker)")
    sweep.add_argument("--shuffle-seed", type=int, default=None,
                       help="permute shard submission order (results "
                            "must not change)")
    sweep.add_argument("--engine", default="cell",
                       choices=("cell", "batch"),
                       help="execution engine: 'cell' runs the scalar "
                            "per-cell loop; 'batch' evaluates the grid "
                            "as vectorized numpy passes, falling back "
                            "per cell where batching does not apply "
                            "(bit-identical payload and digest)")
    sweep.add_argument("--json", action="store_true",
                       help="print the canonical result payload")
    sweep.add_argument("--out", default=None,
                       help="write the canonical JSON to this path")
    sweep.add_argument("--verify", action="store_true",
                       help="statically verify every distinct transfer "
                            "shape before executing the grid (fails fast "
                            "on blocking findings)")

    load = commands.add_parser(
        "load",
        help="drive sustained traffic through a machine and report "
             "latency percentiles",
        description=(
            "Run the discrete-event traffic engine (repro.load): seeded "
            "open-loop (Poisson/bursty) and closed-loop (think-time) "
            "request generators push transfers through per-node NIC / "
            "deposit-engine / co-processor queueing stations whose "
            "service times come from the calibrated runtime.  The run "
            "is replay-deterministic: the same --profile/--seed/"
            "--duration always produces bit-identical canonical JSON, "
            "for any --workers value.  --chaos-seed composes a fault "
            "plan with the traffic, showing tail latency under link "
            "derates and node slowdowns.  Reports p50/p99/p999 latency, "
            "per-station utilization and queue depth."
        ),
    )
    load.add_argument("--profile", default="steady",
                      help="workload profile: steady (Poisson open loop), "
                           "bursty (8-request bursts, priority queues), "
                           "closed (think-time clients)")
    load.add_argument("--machine", default=None, choices=sorted(MACHINES),
                      help="override the profile's machine")
    load.add_argument("--nodes", type=int, default=None,
                      help="override the profile's partition size")
    load.add_argument("--seed", type=int, default=7,
                      help="replay seed for every arrival / think / "
                           "template draw (default 7)")
    load.add_argument("--duration", type=float, default=0.05,
                      help="simulated seconds of traffic (default 0.05); "
                           "in-flight requests drain past the horizon")
    load.add_argument("--workers", type=int, default=1,
                      help="threads for arrival pre-generation (results "
                           "are bit-identical for any value)")
    load.add_argument("--chaos-seed", type=int, default=None,
                      help="compose the built-in chaos fault plan with "
                           "this seed (with --plan: re-seed the plan)")
    load.add_argument("--plan", default=None,
                      help="JSON fault-plan file to compose with the "
                           "traffic (same format as the faults command)")
    load.add_argument("--rate-x", type=float, default=1.0,
                      help="scale offered load: open-loop rates x this, "
                           "closed-loop client counts rounded up "
                           "(default 1.0)")
    load.add_argument("--admission", default="none",
                      choices=["none", "bounded-queue", "token-bucket",
                               "adaptive"],
                      help="admission-control policy gating arrivals at "
                           "the source NIC (default none; none keeps the "
                           "report byte-identical to the unprotected "
                           "engine)")
    load.add_argument("--queue-limit", type=int, default=64,
                      help="bounded-queue: max source-NIC backlog "
                           "admitted (default 64)")
    load.add_argument("--station-capacity", type=int, default=0,
                      help="bound every station's waiting line "
                           "(0 = unbounded)")
    load.add_argument("--deadline-us", type=float, default=0.0,
                      help="shed requests that wait longer than this at "
                           "any one station (microseconds; 0 = off)")
    load.add_argument("--reject-retry", default="drop",
                      choices=["drop", "backoff"],
                      help="rejected requests are dropped or re-arrive "
                           "after seeded exponential backoff")
    load.add_argument("--token-rate", type=float, default=0.0,
                      help="token-bucket: sustained admitted requests/s")
    load.add_argument("--token-burst", type=int, default=32,
                      help="token-bucket: bucket depth (default 32)")
    load.add_argument("--target-p99-us", type=float, default=0.0,
                      help="adaptive: p99 target the AIMD controller "
                           "steers toward (microseconds)")
    load.add_argument("--p99-ceiling-us", type=float, default=0.0,
                      help="declared p99 bound recorded in the report "
                           "(asserted by CI, not enforced by the engine)")
    load.add_argument("--breaker-threshold", type=int, default=0,
                      help="consecutive per-link failures that open the "
                           "circuit breaker (0 = breakers off)")
    load.add_argument("--breaker-cooldown-us", type=float, default=5000.0,
                      help="simulated microseconds an open breaker waits "
                           "before half-open probes (default 5000)")
    load.add_argument("--latency-curve", default=None, metavar="MULTS",
                      help="sweep offered load across comma-separated "
                           "rate multipliers (e.g. 0.5,1,2,4) and report "
                           "the latency-vs-load curve with its knee; "
                           "--workers then fans points over processes")
    load.add_argument("--json", action="store_true",
                      help="emit the repro-load-report/1 payload (or "
                           "repro-load-curve/1 with --latency-curve)")

    commands.add_parser("report", help="regenerate all paper comparisons")
    return parser


def main(argv=None) -> int:
    """Run one subcommand; returns a uniform exit code (module docstring)."""
    args = build_parser().parse_args(argv)
    handler = {
        "advise": cmd_advise,
        "calibrate": cmd_calibrate,
        "machines": cmd_machines,
        "estimate": cmd_estimate,
        "faults": cmd_faults,
        "lint": cmd_lint,
        "load": cmd_load,
        "measure": cmd_measure,
        "sweep": cmd_sweep,
        "table": cmd_table,
        "trace": cmd_trace,
        "report": cmd_report,
        "verify": cmd_verify,
    }[args.command]
    try:
        code: Optional[int] = handler(args)
    except ModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except BrokenPipeError:
        # Downstream (head, less) closed the pipe: not our failure,
        # and nothing left to tell it.
        return EXIT_FAILURE
    except OSError as exc:
        # Unreadable plan/table files, unwritable trace output, ...:
        # an operational failure, never a traceback.
        name = getattr(exc, "filename", None)
        detail = exc.strerror or str(exc)
        print(
            f"error: {detail}" + (f": {name}" if name else ""),
            file=sys.stderr,
        )
        return EXIT_FAILURE
    return EXIT_OK if code is None else code


if __name__ == "__main__":
    raise SystemExit(main())
