"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``machines`` — list the built-in machines and their headline rates;
* ``estimate`` — model throughput of ``xQy`` for both strategies;
* ``measure`` — end-to-end runtime measurement of one transfer;
* ``table`` — print (or export as JSON) a calibration table;
* ``advise`` — pick strategy and loop order for a distributed transpose;
* ``report`` — regenerate every paper comparison (slow).
"""

from __future__ import annotations

import argparse

from .core.patterns import AccessPattern
from .core.operations import OperationStyle
from .core.serialization import dump_table
from .machines import paragon, t3d

MACHINES = {"t3d": t3d, "paragon": paragon}


def _machine(name: str):
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        )


def cmd_machines(args: argparse.Namespace) -> None:
    for factory in MACHINES.values():
        machine = factory()
        model = machine.model()
        contiguous = AccessPattern.contiguous()
        strided64 = AccessPattern.strided(64)
        packing = model.estimate(contiguous, strided64, "buffer-packing").mbps
        chained = model.estimate(contiguous, strided64, "chained").mbps
        print(
            f"{machine.name:16} nodes: {machine.node.processor.clock_mhz:.0f} MHz, "
            f"net {machine.network.raw_link_mbps:.0f} MB/s raw | "
            f"1Q64: packing {packing:.1f}, chained {chained:.1f} MB/s"
        )


def cmd_estimate(args: argparse.Namespace) -> None:
    machine = _machine(args.machine)
    model = machine.model(source=args.source, congestion=args.congestion)
    x = AccessPattern.parse(args.x)
    y = AccessPattern.parse(args.y)
    for style in OperationStyle:
        estimate = model.estimate(x, y, style)
        print(f"{model.q_notation(x, y, style):8} {style.value:16} "
              f"{estimate.mbps:7.1f} MB/s")
        if args.verbose:
            print(estimate.render())
    choice = model.choose(x, y)
    print(f"-> use {choice.style.value}")


def cmd_measure(args: argparse.Namespace) -> None:
    from .runtime.engine import measure_q

    machine = _machine(args.machine)
    x = AccessPattern.parse(args.x)
    y = AccessPattern.parse(args.y)
    style = OperationStyle(args.style)
    result = measure_q(machine, x, y, args.bytes, style)
    print(result)
    for phase, ns in result.phase_ns:
        print(f"  {phase:12} {ns / 1000.0:9.1f} us")


def cmd_advise(args: argparse.Namespace) -> None:
    from .compiler.advisor import advise_transpose

    machine = _machine(args.machine)
    order, advice = advise_transpose(
        machine, args.rows, args.cols, args.nodes, element_words=args.element_words
    )
    direction = (
        "contiguous loads + strided stores (1Qn)"
        if order == "row"
        else "strided loads + contiguous stores (nQ1)"
    )
    print(f"{machine.name}: use loop order {order!r} — {direction}")
    print(advice.render())


def cmd_table(args: argparse.Namespace) -> None:
    machine = _machine(args.machine)
    if args.source == "paper":
        table = machine.paper_table(congestion=args.congestion)
    else:
        table = machine.simulated_table(congestion=args.congestion)
    if args.json:
        dump_table(table, args.json)
        print(f"wrote {args.json}")
        return
    print(table.name)
    for key, rate in sorted(table.to_dict().items()):
        print(f"  {key:8} {rate:7.1f} MB/s")


def cmd_report(args: argparse.Namespace) -> None:
    import runpy
    import os

    script = os.path.join(
        os.path.dirname(__file__), "..", "..", "scripts",
        "make_experiments_report.py",
    )
    if os.path.exists(script):
        runpy.run_path(script, run_name="__main__")
    else:
        # Installed without the scripts tree: run the same content inline.
        from .bench import render, table1, table5, table6

        for title, rows in (
            ("Table 1 (T3D)", table1(t3d())),
            ("Table 1 (Paragon)", table1(paragon())),
            ("Table 5", table5()),
            ("Table 6", table6()),
        ):
            print(render(title, rows))
            print()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Copy-transfer model of Stricker & Gross (ISCA 1995)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("machines", help="list built-in machines")

    estimate = commands.add_parser("estimate", help="model an xQy operation")
    estimate.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    estimate.add_argument("--x", default="1", help="read pattern (0/1/s/w)")
    estimate.add_argument("--y", default="64", help="write pattern (0/1/s/w)")
    estimate.add_argument("--source", default="paper",
                          choices=("paper", "simulated"))
    estimate.add_argument("--congestion", type=int, default=None)
    estimate.add_argument("--verbose", action="store_true")

    measure = commands.add_parser("measure", help="end-to-end measurement")
    measure.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    measure.add_argument("--x", default="1")
    measure.add_argument("--y", default="64")
    measure.add_argument("--bytes", type=int, default=131072)
    measure.add_argument(
        "--style",
        default="chained",
        choices=[style.value for style in OperationStyle],
    )

    advise = commands.add_parser(
        "advise", help="choose strategy and loop order for a transpose"
    )
    advise.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    advise.add_argument("--rows", type=int, default=1024)
    advise.add_argument("--cols", type=int, default=1024)
    advise.add_argument("--nodes", type=int, default=64)
    advise.add_argument("--element-words", type=int, default=2)

    table = commands.add_parser("table", help="print a calibration table")
    table.add_argument("--machine", default="t3d", choices=sorted(MACHINES))
    table.add_argument("--source", default="paper",
                       choices=("paper", "simulated"))
    table.add_argument("--congestion", type=int, default=None)
    table.add_argument("--json", default=None, help="write JSON to this path")

    commands.add_parser("report", help="regenerate all paper comparisons")
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    handler = {
        "advise": cmd_advise,
        "machines": cmd_machines,
        "estimate": cmd_estimate,
        "measure": cmd_measure,
        "table": cmd_table,
        "report": cmd_report,
    }[args.command]
    handler(args)


if __name__ == "__main__":
    main()
