"""Two-dimensional distributed arrays and general 2-D redistribution.

HPF distributes each array axis independently over a processor grid:
``(BLOCK, *)`` gives row panels, ``(*, BLOCK)`` column panels,
``(BLOCK, BLOCK)`` tiles, ``(CYCLIC, BLOCK)`` striped tiles, and so
on.  An assignment between two differently-distributed 2-D arrays
moves, for every (sender, receiver) pair, the *intersection of slices*
the paper's Section 2.1 talks about.

:class:`DistributedArray2D` models one such array (row-major local
storage); :func:`redistribute_2d` generates the communication plan for
``B = A``, classifying both sides' local access patterns from the
actual offset sets — so a row-panel to column-panel redistribution
really produces the strided/blocked traffic a compiler would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .classify import classify_offsets, effective_pattern
from .commgen import CommOp, CommPlan
from .distributions import Block, Distribution

__all__ = ["DistributedArray2D", "redistribute_2d"]


@dataclass(frozen=True)
class DistributedArray2D:
    """A 2-D array distributed over a processor grid.

    Attributes:
        row_dist: Distribution of the row axis over grid rows.
        col_dist: Distribution of the column axis over grid columns.

    The processor grid has ``row_dist.n_nodes x col_dist.n_nodes``
    nodes; node ``(r, c)`` has id ``r * grid_cols + c`` and stores its
    elements row-major (owned rows in order, owned columns in order).
    """

    row_dist: Distribution
    col_dist: Distribution

    @classmethod
    def row_panels(cls, rows: int, cols: int, n_nodes: int) -> "DistributedArray2D":
        """HPF ``(BLOCK, *)``: contiguous row panels."""
        return cls(Block(rows, n_nodes), Block(cols, 1))

    @classmethod
    def col_panels(cls, rows: int, cols: int, n_nodes: int) -> "DistributedArray2D":
        """HPF ``(*, BLOCK)``: contiguous column panels."""
        return cls(Block(rows, 1), Block(cols, n_nodes))

    @classmethod
    def tiles(
        cls, rows: int, cols: int, grid: Tuple[int, int]
    ) -> "DistributedArray2D":
        """HPF ``(BLOCK, BLOCK)``: rectangular tiles on a grid."""
        return cls(Block(rows, grid[0]), Block(cols, grid[1]))

    # -- geometry -----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.row_dist.extent, self.col_dist.extent)

    @property
    def grid(self) -> Tuple[int, int]:
        return (self.row_dist.n_nodes, self.col_dist.n_nodes)

    @property
    def n_nodes(self) -> int:
        return self.grid[0] * self.grid[1]

    def node_id(self, grid_row: int, grid_col: int) -> int:
        return grid_row * self.grid[1] + grid_col

    def local_shape(self, node: int) -> Tuple[int, int]:
        grid_row, grid_col = divmod(node, self.grid[1])
        return (
            self.row_dist.n_local(grid_row),
            self.col_dist.n_local(grid_col),
        )

    def owners(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Node ids owning elements (rows[i], cols[j]) — outer product."""
        row_owner = self.row_dist.owners(rows)
        col_owner = self.col_dist.owners(cols)
        return row_owner[:, None] * self.grid[1] + col_owner[None, :]

    def local_offsets(
        self, node: int, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Row-major local offsets of elements (rows[i], cols[j]) on node."""
        __, local_cols = self.local_shape(node)
        row_offsets = self.row_dist.local_offset(rows)
        col_offsets = self.col_dist.local_offset(cols)
        return row_offsets[:, None] * local_cols + col_offsets[None, :]

    def local_array(self, data: np.ndarray, node: int) -> np.ndarray:
        """The node's local block of a global array, flattened row-major."""
        grid_row, grid_col = divmod(node, self.grid[1])
        rows = self.row_dist.local_indices(grid_row)
        cols = self.col_dist.local_indices(grid_col)
        return data[np.ix_(rows, cols)].ravel()

    def assemble(self, locals_: list) -> np.ndarray:
        """Rebuild the global array from per-node flattened blocks."""
        result = np.empty(self.shape, dtype=np.asarray(locals_[0]).dtype)
        for node, flat in enumerate(locals_):
            grid_row, grid_col = divmod(node, self.grid[1])
            rows = self.row_dist.local_indices(grid_row)
            cols = self.col_dist.local_indices(grid_col)
            shape = self.local_shape(node)
            result[np.ix_(rows, cols)] = np.asarray(flat).reshape(shape)
        return result


def redistribute_2d(
    src: DistributedArray2D,
    dst: DistributedArray2D,
    element_words: int = 1,
    name: str = "redistribute-2d",
) -> CommPlan:
    """Communication plan for ``B = A`` between two 2-D distributions.

    Requires equal shapes and equal total node counts (the arrays live
    on the same machine partition, possibly with different grids).
    Patterns are classified from the concrete offset sets; long
    contiguous runs collapse to contiguous via
    :func:`~repro.compiler.classify.effective_pattern`.
    """
    if src.shape != dst.shape:
        raise ValueError(f"shape mismatch: {src.shape} vs {dst.shape}")
    if src.n_nodes != dst.n_nodes:
        raise ValueError(
            f"node-count mismatch: {src.n_nodes} vs {dst.n_nodes}"
        )

    ops = []
    for node in range(src.n_nodes):
        grid_row, grid_col = divmod(node, src.grid[1])
        rows = src.row_dist.local_indices(grid_row)
        cols = src.col_dist.local_indices(grid_col)
        if len(rows) == 0 or len(cols) == 0:
            continue
        destinations = dst.owners(rows, cols)
        src_offsets_all = src.local_offsets(node, rows, cols)

        for dst_node in np.unique(destinations):
            dst_node = int(dst_node)
            if dst_node == node:
                continue
            selected = destinations == dst_node
            src_offsets = src_offsets_all[selected]
            dst_offsets = dst.local_offsets(dst_node, rows, cols)[selected]
            order = np.argsort(src_offsets, kind="stable")
            src_offsets = src_offsets[order]
            dst_offsets = dst_offsets[order]
            x = effective_pattern(classify_offsets(src_offsets))
            y = effective_pattern(classify_offsets(dst_offsets))
            ops.append(
                CommOp(
                    node,
                    dst_node,
                    x,
                    y,
                    int(selected.sum()) * element_words,
                    src_offsets=src_offsets,
                    dst_offsets=dst_offsets,
                )
            )
    return CommPlan(ops, name=name)
