"""Pseudo-code generation for communication operations.

The paper notes that on the T3D a chained implementation "must be done
at the (dis-)assembler level, and although this approach is too
tedious for a programmer, it may be appropriate for a compiler"
(Section 5.1.2).  This module emits the inner loops a compiler would
generate for each strategy, in a readable pseudo-assembly — useful for
documentation, teaching, and for checking that the operation builders
really correspond to implementable code.

The output is text, not executable code: the point is to make the
difference between the strategies concrete —

* buffer packing touches every element three times (gather loop, send
  loop, scatter loop, plus the symmetric receive side);
* a chained send touches it once, storing straight into the annex
  window, with the deposit engine doing the receive side in hardware.
"""

from __future__ import annotations

from typing import List

from ..core.operations import CommCapabilities, OperationStyle
from ..core.patterns import AccessPattern

__all__ = ["emit_pseudocode"]


def _address(pattern: AccessPattern, base: str, index: str = "i") -> str:
    """The address expression of the ``index``-th element of a pattern."""
    if pattern.is_contiguous:
        return f"{base} + {index}*8"
    if pattern.is_indexed:
        return f"{base} + X[{index}]*8"
    if pattern.block == 1:
        return f"{base} + {index}*{pattern.stride * 8}"
    return (
        f"{base} + ({index}/{pattern.block})*{pattern.stride * 8}"
        f" + ({index}%{pattern.block})*8"
    )


def _loop(body: List[str], count: str = "n") -> List[str]:
    lines = [f"for i = 0 .. {count}-1:"]
    lines.extend(f"    {line}" for line in body)
    return lines


def _gather_loop(x: AccessPattern) -> List[str]:
    body = []
    if x.is_indexed:
        body.append("idx  <- load X[i]              ; index array read")
    body.append(f"r1   <- load [{_address(x, 'src')}]")
    body.append("store [buf + i*8] <- r1        ; pack into buffer")
    return _loop(body)


def _scatter_loop(y: AccessPattern) -> List[str]:
    body = []
    if y.is_indexed:
        body.append("idx  <- load X[i]              ; index array read")
    body.append("r1   <- load [buf + i*8]       ; unpack from buffer")
    body.append(f"store [{_address(y, 'dst')}] <- r1")
    return _loop(body)


def _packing_lines(
    x: AccessPattern, y: AccessPattern, caps: CommCapabilities
) -> List[str]:
    lines: List[str] = ["; === buffer-packing transfer ==="]
    need_gather = caps.pack_even_contiguous or not x.is_contiguous
    need_scatter = caps.pack_even_contiguous or not y.is_contiguous

    lines.append("; -- sender --")
    if need_gather:
        lines.append("; gather: read pattern, write contiguous buffer")
        lines.extend(_gather_loop(x))
    if caps.dma_send:
        lines.append("dma_setup(src=buf, len=n*8)    ; fetch-send 1F0")
        lines.append("dma_start()                     ; kicked at page crossings")
    else:
        lines.append("; load-send 1S0: stream the buffer into the NI FIFO")
        lines.extend(
            _loop(
                [
                    "r1   <- load [buf + i*8]",
                    "store [NI_FIFO] <- r1          ; fixed port address",
                ]
            )
        )

    lines.append("; -- receiver --")
    if caps.deposit.value != "none":
        lines.append("; deposit engine drops the block into rbuf (0D1, no CPU)")
    else:
        lines.append("; receive-store 0R1: drain the NI FIFO")
        lines.extend(
            _loop(["r1   <- load [NI_FIFO]", "store [rbuf + i*8] <- r1"])
        )
    if need_scatter:
        lines.append("; scatter: read buffer, write pattern")
        lines.extend(_scatter_loop(y))
    return lines


def _chained_lines(
    x: AccessPattern, y: AccessPattern, caps: CommCapabilities
) -> List[str]:
    lines: List[str] = ["; === chained transfer ==="]
    adp = not (x.is_contiguous and y.is_contiguous)
    lines.append("; -- sender: read home pattern, store into the remote window --")
    body = []
    if x.is_indexed:
        body.append("idx  <- load X[i]              ; index array read")
    body.append(f"r1   <- load [{_address(x, 'src')}]")
    if adp:
        body.append(
            f"store [{_address(y, 'ANNEX')}] <- r1"
            "  ; address rides with the data (Nadp)"
        )
    else:
        body.append("store [ANNEX + i*8] <- r1      ; block framing (Nd)")
    lines.extend(_loop(body))

    lines.append("; -- receiver --")
    if caps.deposit.value == "any" or (
        caps.deposit.value == "contiguous" and y.is_contiguous
    ):
        lines.append("; deposit engine scatters address-data pairs (0Dy, no CPU)")
    elif caps.coprocessor_receive:
        lines.append("; co-processor runs the receive-store loop (0Ry):")
        body = []
        if y.is_indexed:
            body.append("idx  <- load X[i]")
        body.append("r1   <- load [NI_FIFO]")
        body.append(f"store [{_address(y, 'dst')}] <- r1")
        lines.extend(_loop(body))
    else:
        lines.append("; (no background receiver: chained infeasible)")
    return lines


def emit_pseudocode(
    x: AccessPattern,
    y: AccessPattern,
    style: OperationStyle,
    caps: CommCapabilities,
) -> str:
    """Render the inner loops a compiler would emit for ``xQy``."""
    if style is OperationStyle.BUFFER_PACKING:
        lines = _packing_lines(x, y, caps)
    else:
        lines = _chained_lines(x, y, caps)
    return "\n".join(lines)
