"""Classifying index sets into the model's access patterns.

A compiler that has computed *which* local elements a communication
touches (Section 2.2) must decide *how* they will be accessed:
contiguous, constant-stride (possibly in blocks — 2 words for complex
numbers, 6 for 3-D tensors), or indexed through an index array.  The
classification decides which calibration entry — and which network
framing — applies.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import AccessPattern

__all__ = ["classify_offsets", "effective_pattern"]

#: Blocks at least this many words long behave like contiguous streams
#: (they span several cache lines and DRAM bursts), so the compiler
#: treats such blocked-strided accesses as contiguous — the paper does
#: the same when it calls the transpose's patch-row loads "blocks of
#: contiguous loads, i.e. 1Qn".
CONTIGUOUS_BLOCK_WORDS = 16


def effective_pattern(pattern: AccessPattern, threshold: int = CONTIGUOUS_BLOCK_WORDS):
    """Collapse long-blocked strided patterns to contiguous.

    >>> from repro.core.patterns import strided
    >>> effective_pattern(strided(2048, block=32)).subscript
    '1'
    >>> effective_pattern(strided(2048, block=2)).subscript
    '2048x2'
    """
    if pattern.is_strided and pattern.block >= threshold:
        return AccessPattern.contiguous()
    return pattern


def classify_offsets(offsets: np.ndarray) -> AccessPattern:
    """Classify a sequence of local word offsets into an access pattern.

    Rules, in order:

    * one element, or consecutive offsets everywhere -> contiguous;
    * a single constant stride ``s >= 2`` -> strided(s);
    * equal-length runs of consecutive offsets separated by a constant
      stride -> blocked strided (e.g. complex pairs);
    * anything else -> indexed.

    >>> import numpy as np
    >>> classify_offsets(np.array([4, 5, 6, 7])).subscript
    '1'
    >>> classify_offsets(np.array([0, 16, 32, 48])).subscript
    '16'
    >>> classify_offsets(np.array([0, 1, 16, 17, 32, 33])).subscript
    '16x2'
    >>> classify_offsets(np.array([3, 1, 4, 1])).subscript
    'w'
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or len(offsets) == 0:
        raise ValueError("need a non-empty 1-D offset array")
    if len(offsets) == 1:
        return AccessPattern.contiguous()

    diffs = np.diff(offsets)
    if np.all(diffs == 1):
        return AccessPattern.contiguous()

    unique = np.unique(diffs)
    if len(unique) == 1:
        stride = int(unique[0])
        if stride >= 2:
            return AccessPattern.strided(stride)
        return AccessPattern.indexed()  # negative or zero stride

    # Blocked strided: runs of +1 of equal length b, joined by a
    # constant jump, with total period equal to the stride.
    if len(unique) == 2 and unique[0] == 1:
        jump = int(unique[1])
        if jump < 1:
            return AccessPattern.indexed()
        # Run lengths between jumps must all equal b.
        jump_positions = np.flatnonzero(diffs == jump)
        run_lengths = np.diff(np.concatenate(([-1], jump_positions)))
        block = int(run_lengths[0])
        tail = len(offsets) - 1 - (jump_positions[-1] if len(jump_positions) else -1)
        if np.all(run_lengths == block) and tail <= block:
            stride = jump + block - 1
            if stride >= 2 and block < stride:
                return AccessPattern.strided(stride, block=block)

    return AccessPattern.indexed()
