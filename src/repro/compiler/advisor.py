"""The communication advisor: the paper's advice as a compiler pass.

The paper closes with guidance for "compiler writers who want to
custom-tailor a compiler's communication operations to a specific
parallel system".  This module turns that guidance into code:

* :func:`advise_plan` — for every operation of a communication plan,
  pick the implementation strategy the copy-transfer model predicts to
  be fastest on the target machine, and estimate the step's cost;
* :func:`advise_transpose` — additionally choose the loop order of a
  distributed transpose (Section 5.2: strided *stores* on the T3D,
  strided *loads* on the Paragon), the paper's worked optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ModelError
from ..core.model import CopyTransferModel, StyleChoice
from ..core.operations import OperationStyle
from ..faults.degrade import DegradedResult
from ..faults.spec import FaultPlan, current_fault_plan
from ..machines.base import Machine
from .commgen import CommOp, CommPlan, transpose_2d

__all__ = [
    "CollectiveAdvice",
    "OpAdvice",
    "PlanAdvice",
    "advise_plan",
    "advise_transpose",
    "choose_algorithm",
]


@dataclass(frozen=True)
class OpAdvice:
    """The recommendation for one ``xQy`` operation.

    ``degraded`` is set when a fault plan overrode the model's first
    choice (the deposit engine the chained style needs is unavailable
    at the op's destination) and the advisor fell back.
    """

    op: CommOp
    style: OperationStyle
    predicted_mbps: float
    alternative_mbps: float
    degraded: Optional[DegradedResult] = None

    @property
    def gain(self) -> float:
        """Predicted speedup of the chosen style over the alternative."""
        if self.alternative_mbps <= 0:
            return float("inf")
        return self.predicted_mbps / self.alternative_mbps


@dataclass(frozen=True)
class PlanAdvice:
    """The full recommendation for a communication plan.

    Attributes:
        per_op: One advice entry per distinct operation shape.
        style_histogram: How many operations chose each style.
        predicted_step_us: Estimated slowest-node time for the step,
            from the model rates (no runtime overheads — a lower
            bound, like every model figure).
    """

    plan_name: str
    per_op: Tuple[OpAdvice, ...]
    style_histogram: Dict[str, int]
    predicted_step_us: float

    def dominant_style(self) -> OperationStyle:
        winner = max(self.style_histogram, key=self.style_histogram.get)
        return OperationStyle(winner)

    @property
    def degraded(self) -> Tuple[OpAdvice, ...]:
        """The ops a fault plan forced away from the model's choice."""
        return tuple(a for a in self.per_op if a.degraded is not None)

    def render(self) -> str:
        lines = [f"plan {self.plan_name!r}:"]
        seen = set()
        for advice in self.per_op:
            key = advice.op.notation
            if key in seen:
                continue
            seen.add(key)
            suffix = " (degraded)" if advice.degraded is not None else ""
            lines.append(
                f"  {key:12} -> {advice.style.value:14} "
                f"{advice.predicted_mbps:6.1f} MB/s "
                f"({advice.gain:.2f}x over alternative){suffix}"
            )
        degraded = self.degraded
        if degraded:
            lines.append(
                f"  degraded ops: {len(degraded)} "
                f"({degraded[0].degraded.fault})"
            )
        lines.append(
            f"  predicted step time: {self.predicted_step_us:.0f} us "
            f"(slowest node, model rates)"
        )
        return "\n".join(lines)


def _choose(
    model: CopyTransferModel, op: CommOp, deposit_ok: bool = True
) -> OpAdvice:
    choice: StyleChoice = model.choose(op.x, op.y)
    alternative = (
        choice.alternatives[0][1].mbps if choice.alternatives else 0.0
    )
    if not deposit_ok and choice.style is OperationStyle.CHAINED:
        # The fault plan took the deposit engine away at this op's
        # destination: advise buffer-packing and record the override.
        for style, estimate in choice.alternatives:
            if style is OperationStyle.BUFFER_PACKING:
                packing_mbps = estimate.mbps
                break
        else:
            packing_mbps = model.estimate(
                op.x, op.y, OperationStyle.BUFFER_PACKING
            ).mbps
        return OpAdvice(
            op=op,
            style=OperationStyle.BUFFER_PACKING,
            predicted_mbps=packing_mbps,
            alternative_mbps=choice.mbps,
            degraded=DegradedResult(
                fault="deposit-engine-unavailable",
                requested=OperationStyle.CHAINED.value,
                fallback=OperationStyle.BUFFER_PACKING.value,
                nominal_mbps=choice.mbps,
                degraded_mbps=packing_mbps,
            ),
        )
    return OpAdvice(
        op=op,
        style=choice.style,
        predicted_mbps=choice.mbps,
        alternative_mbps=alternative,
    )


def advise_plan(
    machine: Machine,
    plan: CommPlan,
    faults: Optional[FaultPlan] = None,
) -> PlanAdvice:
    """Choose the best implementation per operation of a plan.

    Args:
        machine: The target machine.
        plan: The communication plan to advise.
        faults: Fault plan to respect; defaults to the one installed
            with :func:`repro.faults.injecting`, if any.  Ops whose
            destination has lost its deposit engine are re-advised to
            buffer-packing with an :attr:`OpAdvice.degraded` record.
    """
    if not plan.ops:
        raise ValueError(f"plan {plan.name!r} is empty")
    if faults is None:
        faults = current_fault_plan()
    if faults is not None and faults.is_empty():
        faults = None
    model = machine.model(source="paper" if len(machine.published) else "simulated")

    advice_by_shape: Dict[Tuple, OpAdvice] = {}
    per_op: List[OpAdvice] = []
    histogram: Dict[str, int] = {}
    node_us: Dict[int, float] = {}
    for op in plan.ops:
        deposit_ok = (
            faults.deposit_available(op.dst) if faults is not None else True
        )
        shape = (op.x, op.y, deposit_ok)
        if shape not in advice_by_shape:
            advice_by_shape[shape] = _choose(model, op, deposit_ok=deposit_ok)
        template = advice_by_shape[shape]
        advice = OpAdvice(op, template.style, template.predicted_mbps,
                          template.alternative_mbps, template.degraded)
        per_op.append(advice)
        histogram[advice.style.value] = histogram.get(advice.style.value, 0) + 1
        node_us[op.src] = node_us.get(op.src, 0.0) + (
            op.nbytes / advice.predicted_mbps
        )
    return PlanAdvice(
        plan_name=plan.name,
        per_op=tuple(per_op),
        style_histogram=histogram,
        predicted_step_us=max(node_us.values()),
    )


@dataclass(frozen=True)
class CollectiveAdvice:
    """The model's pick of collective algorithm for one regime.

    Attributes:
        op: The collective operation.
        algorithm: The winning algorithm.
        predicted_ns: Its modelled completion time.
        per_algorithm: Every candidate's modelled time, for audits —
            the winner's entry is the minimum by construction.
        hierarchical: Whether the winning run used intra-node leaders
            (cluster machines only).
    """

    op: str
    algorithm: str
    nodes: int
    nbytes: int
    predicted_ns: float
    per_algorithm: Dict[str, float]
    hierarchical: bool = False


def choose_algorithm(
    op: str,
    machine: Machine,
    nbytes: int,
    nodes: int,
) -> CollectiveAdvice:
    """Pick the cheapest collective algorithm for a (machine, size) regime.

    Every candidate algorithm for ``op`` is priced by actually running
    it through the collective runtime on the machine's published
    calibration (:func:`repro.runtime.collectives.run_collective` with
    paper rates), so the selected algorithm's estimate is <= every
    alternative's *by construction* — the property the crossover test
    suite pins.  Few-round algorithms (binomial tree, recursive
    doubling, Bruck) win while per-round latency dominates; few-byte
    algorithms (ring, pairwise exchange) win once bandwidth does.

    On cluster machines each candidate runs hierarchy-aware when that
    beats the flat schedule, and the advice records which won.
    """
    from ..runtime.collectives import ALGORITHMS, run_collective
    from ..runtime.engine import CommRuntime

    if op not in ALGORITHMS:
        raise ModelError(
            f"unknown collective {op!r}; choose from {sorted(ALGORITHMS)}"
        )
    runtime = CommRuntime(machine, rates="paper")
    timings: Dict[str, float] = {}
    layouts: Dict[str, bool] = {}
    for algorithm in ALGORITHMS[op]:
        candidates = {
            False: run_collective(
                runtime, op, algorithm, nodes, nbytes, hierarchical=False
            ).total_ns
        }
        if getattr(machine, "cores_per_node", 1) > 1:
            candidates[True] = run_collective(
                runtime, op, algorithm, nodes, nbytes, hierarchical=True
            ).total_ns
        layout = min(candidates, key=candidates.get)
        timings[algorithm] = candidates[layout]
        layouts[algorithm] = layout
    winner = min(timings, key=timings.get)
    return CollectiveAdvice(
        op=op,
        algorithm=winner,
        nodes=nodes,
        nbytes=nbytes,
        predicted_ns=timings[winner],
        per_algorithm=timings,
        hierarchical=layouts[winner],
    )


def advise_transpose(
    machine: Machine,
    rows: int,
    cols: int,
    n_nodes: int,
    element_words: int = 1,
) -> Tuple[str, PlanAdvice]:
    """Pick the loop order *and* strategy for a distributed transpose.

    Evaluates both Figure 9 implementations — ``1Qn`` (row order,
    strided stores) and ``nQ1`` (column order, strided loads) — under
    the machine's model and returns the winner with its plan advice.
    """
    best: Tuple[str, PlanAdvice] = ("", None)  # type: ignore[assignment]
    for order in ("row", "col"):
        plan = transpose_2d(
            rows, cols, n_nodes, element_words=element_words, loop_order=order
        )
        advice = advise_plan(machine, plan)
        if best[1] is None or advice.predicted_step_us < best[1].predicted_step_us:
            best = (order, advice)
    return best
