"""Functional execution of communication plans.

A :class:`~repro.compiler.commgen.CommPlan` whose ops carry concrete
offset sets can be *run*: gather the sender's elements in transfer
order, deliver, scatter into the receiver's local storage.  This is
how the integration tests prove that communication generation is not
just producing plausible patterns but actually moves the right data —
a redistribution executed through its plan must equal the direct
assignment.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .commgen import CommPlan
from .distributions import Distribution

__all__ = ["split_by_distribution", "join_by_distribution", "execute_plan"]


def split_by_distribution(
    values: np.ndarray, distribution: Distribution
) -> List[np.ndarray]:
    """Slice a global array into per-node local arrays."""
    if len(values) != distribution.extent:
        raise ValueError(
            f"array of {len(values)} does not match extent {distribution.extent}"
        )
    return [
        values[distribution.local_indices(node)]
        for node in range(distribution.n_nodes)
    ]


def join_by_distribution(
    locals_: Sequence[np.ndarray], distribution: Distribution
) -> np.ndarray:
    """Reassemble a global array from per-node local arrays."""
    result = np.empty(distribution.extent, dtype=locals_[0].dtype)
    for node, local in enumerate(locals_):
        result[distribution.local_indices(node)] = local
    return result


def execute_plan(
    plan: CommPlan,
    source_locals: Sequence[np.ndarray],
    dest_locals: Sequence[np.ndarray],
) -> None:
    """Move data according to the plan, in place on ``dest_locals``.

    Every op must carry offset sets (plans from :func:`redistribute_1d`
    and :func:`indexed_gather` do).  Local (src == dst) traffic is not
    represented in plans and must be handled by the caller — exactly
    as a compiler emits a separate local copy loop.
    """
    for op in plan.ops:
        if op.src_offsets is None or op.dst_offsets is None:
            raise ValueError(
                f"op {op.notation} {op.src}->{op.dst} carries no offsets; "
                "this plan cannot be executed functionally"
            )
        message = source_locals[op.src][op.src_offsets]
        dest_locals[op.dst][op.dst_offsets] = message
