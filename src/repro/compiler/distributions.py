"""HPF-style data distributions (Section 2.1).

High Performance Fortran describes how an array axis is spread over
the nodes of the machine.  The two common regular distributions are
*block* and *cyclic* (the general form is block-cyclic); *irregular*
distributions assign elements through an explicit map array, as
partitioned-mesh applications do.

A :class:`Distribution` answers the two questions communication
generation needs: who owns a global index, and which global indices a
node owns (in local storage order).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Distribution", "Block", "Cyclic", "BlockCyclic", "Irregular"]


class Distribution:
    """How one array axis of ``extent`` elements maps onto ``n_nodes``."""

    def __init__(self, extent: int, n_nodes: int) -> None:
        if extent <= 0:
            raise ValueError(f"extent must be positive, got {extent}")
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.extent = extent
        self.n_nodes = n_nodes

    def owner(self, global_index: int) -> int:
        """The node that stores ``global_index``."""
        return int(self.owners(np.asarray([global_index]))[0])

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        raise NotImplementedError

    def local_indices(self, node: int) -> np.ndarray:
        """Global indices owned by ``node``, in local storage order."""
        raise NotImplementedError

    def local_offset(self, global_indices: np.ndarray) -> np.ndarray:
        """Local storage offset of each global index on its owner."""
        raise NotImplementedError

    def n_local(self, node: int) -> int:
        return int(len(self.local_indices(node)))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range 0..{self.n_nodes - 1}")


class Block(Distribution):
    """BLOCK: node p owns the contiguous slice ``[p*b, (p+1)*b)``.

    The block size is ``ceil(extent / n_nodes)``; the last node may own
    a short block.  Produces contiguous access patterns.
    """

    def __init__(self, extent: int, n_nodes: int) -> None:
        super().__init__(extent, n_nodes)
        self.block = -(-extent // n_nodes)

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        return np.asarray(global_indices) // self.block

    def local_indices(self, node: int) -> np.ndarray:
        self._check_node(node)
        start = node * self.block
        stop = min(start + self.block, self.extent)
        return np.arange(start, max(start, stop), dtype=np.int64)

    def local_offset(self, global_indices: np.ndarray) -> np.ndarray:
        return np.asarray(global_indices) % self.block


class Cyclic(Distribution):
    """CYCLIC: element i lives on node ``i mod n_nodes``.

    Produces strided access patterns with stride ``n_nodes``.
    """

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        return np.asarray(global_indices) % self.n_nodes

    def local_indices(self, node: int) -> np.ndarray:
        self._check_node(node)
        return np.arange(node, self.extent, self.n_nodes, dtype=np.int64)

    def local_offset(self, global_indices: np.ndarray) -> np.ndarray:
        return np.asarray(global_indices) // self.n_nodes


class BlockCyclic(Distribution):
    """CYCLIC(b): blocks of ``b`` elements dealt round-robin."""

    def __init__(self, extent: int, n_nodes: int, block: int) -> None:
        super().__init__(extent, n_nodes)
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        self.block = block

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        return (np.asarray(global_indices) // self.block) % self.n_nodes

    def local_indices(self, node: int) -> np.ndarray:
        self._check_node(node)
        indices = np.arange(self.extent, dtype=np.int64)
        return indices[self.owners(indices) == node]

    def local_offset(self, global_indices: np.ndarray) -> np.ndarray:
        g = np.asarray(global_indices)
        round_number = g // (self.block * self.n_nodes)
        return round_number * self.block + g % self.block


class Irregular(Distribution):
    """An explicit element-to-node map (partitioned meshes, Section 2.1).

    ``node_map[i]`` is the owner of global element ``i``; local storage
    order is ascending global index within each node.
    """

    def __init__(self, node_map: Sequence[int], n_nodes: int) -> None:
        node_map = np.asarray(node_map, dtype=np.int64)
        super().__init__(len(node_map), n_nodes)
        if node_map.min() < 0 or node_map.max() >= n_nodes:
            raise ValueError("node_map entries out of range")
        self.node_map = node_map
        # Precompute local offsets: position of each element within its
        # owner's ascending-global-index storage.
        self._local_offset = np.zeros(self.extent, dtype=np.int64)
        for node in range(n_nodes):
            mine = np.flatnonzero(node_map == node)
            self._local_offset[mine] = np.arange(len(mine))

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        return self.node_map[np.asarray(global_indices)]

    def local_indices(self, node: int) -> np.ndarray:
        self._check_node(node)
        return np.flatnonzero(self.node_map == node).astype(np.int64)

    def local_offset(self, global_indices: np.ndarray) -> np.ndarray:
        return self._local_offset[np.asarray(global_indices)]
