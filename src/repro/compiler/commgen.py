"""Communication-set generation: from array statements to ``xQy`` ops.

This is the compiler step of Section 2.1: given the distributions of
the operands, compute — for every (sender, receiver) pair — which
elements move, derive both sides' local access patterns, and emit the
communication operations the runtime (or the model) consumes.

Two generators cover the paper's workloads:

* :func:`redistribute_1d` — the general array assignment ``B = A``
  between any two distributions (block, cyclic, block-cyclic,
  irregular); patterns are *classified from the actual index sets*,
  so a block->cyclic redistribution really does come out strided.
* :func:`transpose_2d` — the 2-D transpose of Figure 9, where the
  compiler explicitly chooses between strided loads (``nQ1``) and
  strided stores (``1Qn``) by loop order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.patterns import AccessPattern, CONTIGUOUS
from ..memsim.config import WORD_BYTES
from .classify import classify_offsets, effective_pattern
from .distributions import Distribution

__all__ = ["CommOp", "CommPlan", "redistribute_1d", "transpose_2d"]


@dataclass(frozen=True)
class CommOp:
    """One point-to-point communication operation ``xQy``.

    Attributes:
        src / dst: Node ids.
        x: Access pattern of the reads on the sender.
        y: Access pattern of the stores on the receiver.
        nwords: Payload words moved.
        src_offsets / dst_offsets: The concrete local element offsets
            on each side (when the generator computed them), in
            transfer order — what a runtime's gather/scatter loops
            would consume, and what :func:`repro.compiler.executor.execute_plan`
            uses to run the plan functionally.  Excluded from equality.
    """

    src: int
    dst: int
    x: AccessPattern
    y: AccessPattern
    nwords: int
    src_offsets: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )
    dst_offsets: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )

    @property
    def nbytes(self) -> int:
        return self.nwords * WORD_BYTES

    @property
    def notation(self) -> str:
        return f"{self.x.subscript}Q{self.y.subscript}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; concrete offsets are not serialized."""
        return {
            "src": self.src,
            "dst": self.dst,
            "x": self.x.subscript,
            "y": self.y.subscript,
            "nwords": self.nwords,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CommOp":
        try:
            return cls(
                src=int(payload["src"]),
                dst=int(payload["dst"]),
                x=AccessPattern.parse(str(payload["x"])),
                y=AccessPattern.parse(str(payload["y"])),
                nwords=int(payload["nwords"]),
            )
        except KeyError as exc:
            raise ValueError(f"CommOp payload missing key {exc}") from exc


@dataclass
class CommPlan:
    """The communication operations of one array statement.

    Attributes:
        ops: All point-to-point operations (local copies excluded).
        name: Label for reporting.
    """

    ops: List[CommOp]
    name: str = "plan"

    def flows(self) -> List[Tuple[int, int]]:
        return [(op.src, op.dst) for op in self.ops]

    @property
    def total_bytes(self) -> int:
        return sum(op.nbytes for op in self.ops)

    def messages_from(self, node: int) -> List[CommOp]:
        return [op for op in self.ops if op.src == node]

    def pattern_histogram(self) -> Dict[str, int]:
        """How many operations use each ``xQy`` shape."""
        histogram: Dict[str, int] = {}
        for op in self.ops:
            histogram[op.notation] = histogram.get(op.notation, 0) + 1
        return histogram

    def dominant_op(self) -> CommOp:
        """The most common operation shape, with average size.

        Uniform plans (transposes, shifts) have a single shape; for
        irregular plans this is the representative message the
        collective-step simulator runs.
        """
        if not self.ops:
            raise ValueError(f"plan {self.name!r} is empty")
        histogram = self.pattern_histogram()
        winner = max(histogram, key=histogram.get)
        matching = [op for op in self.ops if op.notation == winner]
        mean_words = int(round(np.mean([op.nwords for op in matching])))
        sample = matching[0]
        return CommOp(sample.src, sample.dst, sample.x, sample.y, max(1, mean_words))

    def __len__(self) -> int:
        return len(self.ops)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``repro-comm-plan/1``)."""
        return {
            "schema": "repro-comm-plan/1",
            "name": self.name,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CommPlan":
        schema = payload.get("schema", "repro-comm-plan/1")
        if schema != "repro-comm-plan/1":
            raise ValueError(f"unsupported plan schema {schema!r}")
        ops_payload = payload.get("ops")
        if not isinstance(ops_payload, list):
            raise ValueError("plan payload 'ops' is not a list")
        ops = [CommOp.from_dict(entry) for entry in ops_payload]
        return cls(ops, name=str(payload.get("name", "plan")))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CommPlan":
        """Load a plan serialized by :meth:`to_dict` from a JSON file."""
        raw = json.loads(Path(path).read_text())
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: plan payload is not an object")
        return cls.from_dict(raw)


def redistribute_1d(
    src_dist: Distribution,
    dst_dist: Distribution,
    element_words: int = 1,
    name: str = "redistribute",
) -> CommPlan:
    """Communication plan for ``B = A`` under two distributions.

    Args:
        src_dist / dst_dist: Distributions of A and B over the same
            extent and node count.
        element_words: Words per element (2 for complex, 6 for 3-D
            tensors); multiplies payload and blocks the patterns.
        name: Plan label.
    """
    if src_dist.extent != dst_dist.extent:
        raise ValueError(
            f"extent mismatch: {src_dist.extent} vs {dst_dist.extent}"
        )
    if src_dist.n_nodes != dst_dist.n_nodes:
        raise ValueError(
            f"node-count mismatch: {src_dist.n_nodes} vs {dst_dist.n_nodes}"
        )

    ops: List[CommOp] = []
    for src in range(src_dist.n_nodes):
        mine = src_dist.local_indices(src)
        if len(mine) == 0:
            continue
        destinations = dst_dist.owners(mine)
        src_offsets_all = src_dist.local_offset(mine)
        dst_offsets_all = dst_dist.local_offset(mine)
        for dst in np.unique(destinations):
            dst = int(dst)
            if dst == src:
                continue  # local copy, no communication
            selected = destinations == dst
            src_offsets = src_offsets_all[selected]
            dst_offsets = dst_offsets_all[selected]
            x = _widen(classify_offsets(src_offsets), element_words)
            y = _widen(classify_offsets(dst_offsets), element_words)
            ops.append(
                CommOp(
                    src,
                    dst,
                    x,
                    y,
                    int(selected.sum()) * element_words,
                    src_offsets=src_offsets,
                    dst_offsets=dst_offsets,
                )
            )
    return CommPlan(ops, name=name)


def _widen(pattern: AccessPattern, element_words: int) -> AccessPattern:
    """Scale a pattern from elements to words."""
    if element_words == 1:
        return pattern
    if pattern.is_contiguous or pattern.is_indexed:
        return pattern
    stride = pattern.stride * element_words
    block = pattern.block * element_words
    return AccessPattern.strided(stride, block=block)


def transpose_2d(
    rows: int,
    cols: int,
    n_nodes: int,
    element_words: int = 1,
    loop_order: str = "row",
    name: str = "transpose",
) -> CommPlan:
    """Communication plan for a distributed 2-D transpose (Figure 9).

    The array is block-distributed by rows before and after the
    transpose, so every node exchanges a patch with every other node —
    an all-to-all personalized communication.  ``loop_order`` picks the
    implementation of each patch move:

    * ``"row"``: contiguous loads, strided stores — ``1Q(rows)``;
    * ``"col"``: strided loads, contiguous stores — ``(cols)Q1``.

    Args:
        rows / cols: Global array shape (elements).
        n_nodes: Partition size; must divide both rows and cols.
        element_words: Words per element (2 for the complex 2-D FFT).
        loop_order: ``"row"`` or ``"col"``.
    """
    if rows % n_nodes or cols % n_nodes:
        raise ValueError(
            f"{n_nodes} nodes must evenly divide rows={rows} and cols={cols}"
        )
    if loop_order not in ("row", "col"):
        raise ValueError(f"loop_order must be 'row' or 'col', got {loop_order!r}")

    my_rows = rows // n_nodes
    my_cols = cols // n_nodes
    patch_words = my_rows * my_cols * element_words
    # Word strides of local row-major storage on either side:
    src_row_stride = cols * element_words
    dst_row_stride = rows * element_words
    src_run = my_cols * element_words  # words per patch row on the sender
    dst_run = my_rows * element_words  # words per patch column on the receiver

    def blocked(stride: int, block: int) -> AccessPattern:
        if block >= stride:
            return CONTIGUOUS
        return effective_pattern(AccessPattern.strided(stride, block=block))

    if loop_order == "row":
        # Iterate the patch row-major: runs of src_run contiguous loads,
        # single-element (blocked by element_words) strided stores.
        x = blocked(src_row_stride, src_run)
        y = blocked(dst_row_stride, element_words)
    else:
        # Iterate column-major: strided loads, contiguous runs of stores.
        x = blocked(src_row_stride, element_words)
        y = blocked(dst_row_stride, dst_run)

    ops = [
        CommOp(src, dst, x, y, patch_words)
        for src in range(n_nodes)
        for dst in range(n_nodes)
        if src != dst
    ]
    return CommPlan(ops, name=name)
