"""Communication generation for index-array accesses (Figure 2).

The paper's canonical irregular code is ``A[1:n] = B[X[1:n]]`` where
``X`` holds a permutation: A, B and X may all be distributed, and "the
bottom line is that the compiler at some time has to access the
elements of B, using some intermediate index array T".

:func:`indexed_gather` performs exactly that analysis: for every
element of A it resolves the owner of ``B[X[i]]``, groups the traffic
by (owner-of-B, owner-of-A) pair, computes both sides' local offsets
(the intermediate index arrays T), classifies their access patterns,
and emits the communication plan.  For a random permutation the result
is ``wQy`` traffic — the workload chained transfers win hardest on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .classify import classify_offsets
from .commgen import CommOp, CommPlan
from .distributions import Distribution

__all__ = ["indexed_gather"]


def indexed_gather(
    a_dist: Distribution,
    b_dist: Distribution,
    index_array: Sequence[int],
    element_words: int = 1,
    name: str = "indexed-gather",
) -> CommPlan:
    """Communication plan for ``A[i] = B[X[i]]`` for all i.

    Args:
        a_dist: Distribution of the destination array A.
        b_dist: Distribution of the source array B.
        index_array: X, with values in ``range(b_dist.extent)``;
            distributed alongside A (each node reads the X entries for
            its own A elements, as an HPF compiler would arrange).
        element_words: Words per element.
        name: Plan label.

    Returns:
        A plan whose ops carry the intermediate index sets: on the
        B-owner side the local offsets of the requested elements, on
        the A-owner side the local offsets of their destinations.
    """
    index = np.asarray(index_array, dtype=np.int64)
    if len(index) != a_dist.extent:
        raise ValueError(
            f"index array has {len(index)} entries for an A of extent "
            f"{a_dist.extent}"
        )
    if index.min() < 0 or index.max() >= b_dist.extent:
        raise ValueError("index array values out of range for B")
    if a_dist.n_nodes != b_dist.n_nodes:
        raise ValueError(
            f"node-count mismatch: {a_dist.n_nodes} vs {b_dist.n_nodes}"
        )

    a_positions = np.arange(a_dist.extent, dtype=np.int64)
    a_owner = a_dist.owners(a_positions)
    b_owner = b_dist.owners(index)
    a_offsets = a_dist.local_offset(a_positions)
    b_offsets = b_dist.local_offset(index)

    ops = []
    for src in range(b_dist.n_nodes):
        from_src = b_owner == src
        for dst in np.unique(a_owner[from_src]):
            dst = int(dst)
            if dst == src:
                continue
            selected = from_src & (a_owner == dst)
            src_offsets = b_offsets[selected]
            dst_offsets = a_offsets[selected]
            x = classify_offsets(src_offsets)
            y = classify_offsets(dst_offsets)
            ops.append(
                CommOp(
                    src,
                    dst,
                    x,
                    y,
                    int(selected.sum()) * element_words,
                    src_offsets=src_offsets,
                    dst_offsets=dst_offsets,
                )
            )
    return CommPlan(ops, name=name)
