"""Compiler view of communication (Section 2.1-2.2).

HPF-style distributions, communication-set generation for array
statements, and classification of index sets into the model's access
patterns.  The output — :class:`~repro.compiler.commgen.CommPlan`
objects full of ``xQy`` operations — is what the model predicts and
the runtime executes.
"""

from .advisor import (
    CollectiveAdvice,
    OpAdvice,
    PlanAdvice,
    advise_plan,
    advise_transpose,
    choose_algorithm,
)
from .arrays2d import DistributedArray2D, redistribute_2d
from .classify import CONTIGUOUS_BLOCK_WORDS, classify_offsets, effective_pattern
from .codegen import emit_pseudocode
from .commgen import CommOp, CommPlan, redistribute_1d, transpose_2d
from .distributions import Block, BlockCyclic, Cyclic, Distribution, Irregular
from .executor import execute_plan, join_by_distribution, split_by_distribution
from .gather import indexed_gather

__all__ = [
    "advise_plan",
    "advise_transpose",
    "Block",
    "choose_algorithm",
    "CollectiveAdvice",
    "DistributedArray2D",
    "redistribute_2d",
    "BlockCyclic",
    "classify_offsets",
    "CommOp",
    "CommPlan",
    "CONTIGUOUS_BLOCK_WORDS",
    "Cyclic",
    "Distribution",
    "effective_pattern",
    "emit_pseudocode",
    "execute_plan",
    "indexed_gather",
    "Irregular",
    "OpAdvice",
    "PlanAdvice",
    "join_by_distribution",
    "split_by_distribution",
    "redistribute_1d",
    "transpose_2d",
]
