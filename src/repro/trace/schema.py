"""The on-disk trace format and its validator.

``python -m repro trace`` writes the Chrome Trace Event Format (the
JSON Object Format variant: a top-level object with a ``traceEvents``
array), which both ``chrome://tracing`` and Perfetto load directly.
We use a small, fixed subset:

* ``ph: "X"`` complete events — one per span, with ``ts``/``dur`` in
  microseconds (fractional; simulated time), ``cat`` the span
  category, ``pid`` 0, and ``tid`` the span's track index;
* ``ph: "M"`` metadata events naming each track
  (``thread_name``) so timelines show "sender_cpu" instead of "tid 3";
* ``ph: "C"`` counter events for the final value of every counter
  metric.

Alongside ``traceEvents`` the object carries ``displayTimeUnit``,
``metadata`` (machine, operation, result figures) and ``metrics``
(the :class:`~repro.trace.metrics.MetricsRegistry` snapshot) — extra
top-level keys are explicitly allowed by the trace-event spec.

:func:`validate_chrome_trace` checks structural conformance and is
what the CI trace smoke job runs against the emitted file.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["PHASES", "validate_chrome_trace"]

#: Event phases this exporter may emit.
PHASES = ("X", "M", "C")


def _check_event(event: Any, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    ph = event.get("ph")
    if ph not in PHASES:
        errors.append(f"{where}: ph {ph!r} not in {PHASES}")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing or empty name")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{where}: {key} must be an integer")
    if ph == "X":
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}: {key} must be a number")
            elif value < 0:
                errors.append(f"{where}: {key} is negative ({value})")
        if "cat" in event and not isinstance(event["cat"], str):
            errors.append(f"{where}: cat must be a string")
    elif ph == "M":
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"), str):
            errors.append(f"{where}: metadata event needs args.name")
    elif ph == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"{where}: counter event needs non-empty args")
        elif not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in args.values()
        ):
            errors.append(f"{where}: counter args must be numeric")


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural errors in an exported trace (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level: not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: traceEvents missing or not an array"]
    if not events:
        errors.append("traceEvents: empty (a trace must contain events)")
    for index, event in enumerate(events):
        _check_event(event, index, errors)
    unit = payload.get("displayTimeUnit")
    if unit is not None and unit not in ("ms", "ns"):
        errors.append(f"displayTimeUnit {unit!r} not 'ms' or 'ns'")
    return errors
