"""The tracer: span/counter collection scoped by a context variable.

Design constraints, in priority order:

1. **Zero overhead when off.**  Instrumented code does
   ``tracer = current_tracer()`` once per operation (one
   ``ContextVar.get``) and guards every emission with
   ``if tracer is not None``.  No event objects, no string formatting,
   no dictionary churn happen unless a tracer is installed.
2. **No behavioural coupling.**  A tracer observes the simulation's
   clocks; it never feeds anything back, so traced and untraced runs
   produce bit-identical results (``tests/trace/test_parity.py``).
3. **Simulated time.**  Span timestamps are model nanoseconds.  Code
   that runs inside a nested clock domain (a stage pipeline whose
   chunk times start at 0 within its phase) offsets its spans by the
   tracer's ``offset_ns``, which the enclosing layer sets.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "CounterSample",
    "SpanEvent",
    "Tracer",
    "current_tracer",
    "tracing",
]

_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_active_tracer", default=None
)


@dataclass(frozen=True)
class SpanEvent:
    """One interval of simulated time on one track.

    Attributes:
        name: What ran ("gather", "network", "phase:pack", ...).
        track: The lane the span occupies — a hardware resource
            ("sender_cpu", "network") or a logical lane ("phase",
            "step").
        start_ns: Simulated start time.
        duration_ns: Simulated duration (>= 0).
        category: Coarse grouping used by exporters and the CLI
            ("phase", "stage", "step", "overhead", ...).
        args: Extra structured payload (chunk index, wait time, ...).
    """

    name: str
    track: str
    start_ns: float
    duration_ns: float
    category: str = "span"
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class CounterSample:
    """A named quantity observed at one point (no duration)."""

    name: str
    value: float
    at_ns: float = 0.0


class Tracer:
    """Collects spans and counters for one traced region.

    Not thread-safe by design: a tracer belongs to one context (see
    :func:`tracing`), mirroring how one simulated transfer belongs to
    one call stack.

    Attributes:
        metrics: A :class:`~repro.trace.metrics.MetricsRegistry`
            accumulating counters/histograms alongside the event list.
        offset_ns: Time base added to spans emitted by nested clock
            domains; managed by the enclosing layer (see
            :meth:`shifted`).
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.offset_ns = 0.0
        self._spans: List[SpanEvent] = []
        self._counters: List[CounterSample] = []

    # -- emission -----------------------------------------------------------

    def span(
        self,
        name: str,
        track: str,
        start_ns: float,
        duration_ns: float,
        category: str = "span",
        **args: Any,
    ) -> None:
        """Record one interval; ``start_ns`` is relative to ``offset_ns``."""
        self._spans.append(
            SpanEvent(
                name=name,
                track=track,
                start_ns=self.offset_ns + start_ns,
                duration_ns=duration_ns,
                category=category,
                args=args,
            )
        )

    def count(self, name: str, value: float = 1.0, at_ns: float = 0.0) -> None:
        """Increment counter ``name`` and keep the sample point."""
        self.metrics.inc(name, value)
        self._counters.append(CounterSample(name, value, self.offset_ns + at_ns))

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (distribution metric)."""
        self.metrics.observe(name, value)

    @contextmanager
    def shifted(self, offset_ns: float) -> Iterator["Tracer"]:
        """Temporarily move the time base for a nested clock domain."""
        previous = self.offset_ns
        self.offset_ns = previous + offset_ns
        try:
            yield self
        finally:
            self.offset_ns = previous

    # -- views --------------------------------------------------------------

    def spans(self, category: Optional[str] = None) -> Tuple[SpanEvent, ...]:
        if category is None:
            return tuple(self._spans)
        return tuple(s for s in self._spans if s.category == category)

    def counters(self) -> Tuple[CounterSample, ...]:
        return tuple(self._counters)

    def tracks(self) -> Tuple[str, ...]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self._spans:
            seen.setdefault(event.track, None)
        return tuple(seen)

    def end_ns(self) -> float:
        """Latest span end time (0.0 when empty)."""
        return max((s.end_ns for s in self._spans), default=0.0)

    def __len__(self) -> int:
        return len(self._spans)


def current_tracer() -> Optional[Tracer]:
    """The tracer installed for this context, or ``None`` (tracing off)."""
    return _ACTIVE.get()


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of the ``with`` block.

    Nested blocks shadow the outer tracer; the outer one resumes
    untouched when the inner block exits.

    >>> with tracing() as t:
    ...     assert current_tracer() is t
    >>> current_tracer() is None
    True
    """
    active = tracer if tracer is not None else Tracer()
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)
