"""Trace exporters: Chrome/Perfetto JSON, text timeline, utilization.

All three read the same :class:`~repro.trace.tracer.Tracer`; none
mutate it, so a trace can be exported every way at once.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .tracer import Tracer

__all__ = ["chrome_trace", "render_timeline", "utilization"]

_US_PER_NS = 1e-3


def chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Export as the Chrome Trace Event JSON Object Format.

    The result loads directly in ``chrome://tracing`` and Perfetto;
    see :mod:`repro.trace.schema` for the exact subset emitted.
    """
    tracks = {name: index for index, name in enumerate(tracer.tracks())}
    events: List[Dict[str, Any]] = []
    for name, tid in tracks.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for span in tracer.spans():
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ns * _US_PER_NS,
                "dur": span.duration_ns * _US_PER_NS,
                "pid": 0,
                "tid": tracks[span.track],
                "args": dict(span.args),
            }
        )
    counter_tid = len(tracks)
    end_us = tracer.end_ns() * _US_PER_NS
    for name, value in sorted(tracer.metrics.counters().items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": end_us,
                "pid": 0,
                "tid": counter_tid,
                "args": {"value": value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": dict(metadata or {}),
        "metrics": tracer.metrics.snapshot(),
    }


def utilization(tracer: Tracer, categories: tuple = ("stage",)) -> Dict[str, float]:
    """Busy fraction of each resource track over the traced interval.

    Only span categories that represent actual resource occupancy
    participate (chunk-level ``stage`` spans by default); logical
    lanes like the phase summary track are skipped.
    """
    total = tracer.end_ns()
    if total <= 0:
        return {}
    busy: Dict[str, float] = {}
    for span in tracer.spans():
        if span.category not in categories:
            continue
        busy[span.track] = busy.get(span.track, 0.0) + span.duration_ns
    return {track: ns / total for track, ns in sorted(busy.items())}


def render_timeline(tracer: Tracer, width: int = 64) -> str:
    """A fixed-width terminal timeline, one row per track.

    Each row shows the track's spans as filled cells over the traced
    interval, followed by the track's total busy time.  Intended for
    quick looks; load the Chrome JSON in Perfetto for real digging.
    """
    total = tracer.end_ns()
    if total <= 0:
        return "(empty trace)"
    tracks = tracer.tracks()
    label_width = max(len(t) for t in tracks)
    lines = [
        f"{'':{label_width}}  0 ns {'·' * (width - 12)} {total:,.0f} ns"
    ]
    for track in tracks:
        cells = [" "] * width
        busy_ns = 0.0
        for span in tracer.spans():
            if span.track != track:
                continue
            busy_ns += span.duration_ns
            lo = int(span.start_ns / total * width)
            hi = int(span.end_ns / total * width)
            hi = max(hi, lo + 1)
            for cell in range(lo, min(hi, width)):
                cells[cell] = "█"
        lines.append(
            f"{track:{label_width}}  [{''.join(cells)}] {busy_ns:>12,.0f} ns"
        )
    return "\n".join(lines)
