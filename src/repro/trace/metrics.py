"""Counters and histograms accumulated alongside trace events.

A :class:`MetricsRegistry` is deliberately tiny: names map to floats
(counters) or to value lists summarized on demand (histograms).  It
exists so instrumentation points that have no meaningful position on
the simulated timeline — cache hit tallies inside a memsim kernel,
calibration-cache lookups — still land somewhere inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Union

__all__ = ["HistogramSummary", "MetricsRegistry"]


@dataclass(frozen=True)
class HistogramSummary:
    """Summary statistics of one histogram."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Name -> counter / histogram store."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- counters -----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        """Current value of ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self) -> Mapping[str, float]:
        return dict(self._counters)

    # -- histograms ---------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        self._histograms.setdefault(name, []).append(value)

    def histogram(self, name: str) -> HistogramSummary:
        values = self._histograms.get(name, [])
        if not values:
            return HistogramSummary(count=0, total=0.0, minimum=0.0, maximum=0.0)
        return HistogramSummary(
            count=len(values),
            total=sum(values),
            minimum=min(values),
            maximum=max(values),
        )

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-th percentile (0..100, nearest-rank) of ``name``."""
        values = sorted(self._histograms.get(name, []))
        if not values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = max(0, min(len(values) - 1, round(q / 100.0 * (len(values) - 1))))
        return values[rank]

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Union[float, Dict[str, float]]]:
        """Plain-data view of every metric, for JSON export."""
        out: Dict[str, Union[float, Dict[str, float]]] = {}
        out.update(self._counters)
        for name in self._histograms:
            summary = self.histogram(name)
            out[name] = {
                "count": float(summary.count),
                "total": summary.total,
                "min": summary.minimum,
                "max": summary.maximum,
                "mean": summary.mean,
                "p50": self.percentile(name, 50),
                "p95": self.percentile(name, 95),
            }
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
