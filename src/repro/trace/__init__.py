"""Observability for simulated transfers: structured tracing + metrics.

Every layer of the stack — the point-to-point runtime, the chunked
stage pipeline, collective steps, the memory-system engines and the
calibration cache — can emit structured events into a
:class:`~repro.trace.tracer.Tracer` when one is installed for the
current context:

>>> from repro.trace import tracing
>>> with tracing() as tracer:
...     runtime.transfer(x, y, 65536)           # doctest: +SKIP
>>> tracer.spans()                              # doctest: +SKIP

With no tracer installed (the default) every instrumentation point is
a single ``None`` check, so the hot paths — and their results — are
bit-identical to an uninstrumented build; ``tests/trace`` enforces
both properties.

Timestamps are **simulated nanoseconds** (the model's clock), not wall
time: a trace of a transfer shows where the transfer's nanoseconds
went, which is the paper's Figures 7/8 measured-vs-model question made
inspectable.

Exports: :func:`~repro.trace.export.chrome_trace` renders a
``chrome://tracing`` / Perfetto-loadable JSON,
:func:`~repro.trace.export.render_timeline` a terminal timeline, and
:func:`~repro.trace.export.utilization` per-resource busy fractions.
``python -m repro trace`` wraps all three.
"""

from .metrics import HistogramSummary, MetricsRegistry
from .tracer import (
    CounterSample,
    SpanEvent,
    Tracer,
    current_tracer,
    tracing,
)
from .export import chrome_trace, render_timeline, utilization
from .schema import validate_chrome_trace

__all__ = [
    "CounterSample",
    "HistogramSummary",
    "MetricsRegistry",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "render_timeline",
    "tracing",
    "utilization",
    "validate_chrome_trace",
]
