"""Basic transfers: the atoms of the copy-transfer model.

Section 3.2 of the paper defines seven basic transfers.  Five move data
within a node:

========  ==========================  =============================
notation  name                        executing unit
========  ==========================  =============================
``xCy``   local memory-to-memory copy processor (load/store loop)
``xS0``   load-send                   processor (stores to NI FIFO)
``xF0``   fetch-send                  DMA / fetch engine, background
``0Ry``   receive-store               processor (or co-processor)
``0Dy``   receive-deposit             deposit engine, background
========  ==========================  =============================

and two move data between nodes:

========  ==========================================================
``Nd``    data-only network transfer (block framed, no addresses)
``Nadp``  address-plus-data network transfer (address-data pairs)
========  ==========================================================

A :class:`BasicTransfer` is an immutable value: kind, read pattern,
write pattern, and the set of :class:`~repro.core.resources.Resource`
objects it occupies.  Resource sets drive the legality checks for
parallel composition and the shared-bandwidth constraints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet

from .errors import PatternError
from .patterns import FIXED, AccessPattern
from .resources import NodeRole, Resource, ResourceUnit, resources

__all__ = [
    "TransferKind",
    "BasicTransfer",
    "copy",
    "load_send",
    "fetch_send",
    "receive_store",
    "receive_deposit",
    "network_data",
    "network_adp",
]


class TransferKind(enum.Enum):
    """The seven basic transfer families, keyed by their paper letter."""

    COPY = "C"
    LOAD_SEND = "S"
    FETCH_SEND = "F"
    RECEIVE_STORE = "R"
    RECEIVE_DEPOSIT = "D"
    NETWORK_DATA = "Nd"
    NETWORK_ADP = "Nadp"

    @property
    def letter(self) -> str:
        return self.value

    @property
    def is_network(self) -> bool:
        return self in (TransferKind.NETWORK_DATA, TransferKind.NETWORK_ADP)

    @property
    def is_background(self) -> bool:
        """True for transfers done by dedicated hardware, not a processor."""
        return self in (
            TransferKind.FETCH_SEND,
            TransferKind.RECEIVE_DEPOSIT,
            TransferKind.NETWORK_DATA,
            TransferKind.NETWORK_ADP,
        )


@dataclass(frozen=True)
class BasicTransfer:
    """One basic transfer ``rTw`` with its resource footprint.

    Use the module-level factory functions (:func:`copy`,
    :func:`load_send`, ...) instead of the constructor; they fill in the
    correct fixed-end patterns and default resource sets.

    Attributes:
        kind: The transfer family.
        read: The read (left-subscript) access pattern.
        write: The write (right-subscript) access pattern.
        uses: Resources this transfer occupies while running.
    """

    kind: TransferKind
    read: AccessPattern
    write: AccessPattern
    uses: FrozenSet[Resource] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind.is_network:
            if not (self.read.is_fixed and self.write.is_fixed):
                raise PatternError(
                    "network transfers carry no memory patterns; both ends are fixed"
                )
        elif self.kind in (TransferKind.LOAD_SEND, TransferKind.FETCH_SEND):
            if not self.write.is_fixed:
                raise PatternError(
                    f"{self.kind.name} writes to a fixed NI port; "
                    f"got write pattern {self.write}"
                )
            if self.read.is_fixed:
                raise PatternError(f"{self.kind.name} must read from memory")
        elif self.kind in (TransferKind.RECEIVE_STORE, TransferKind.RECEIVE_DEPOSIT):
            if not self.read.is_fixed:
                raise PatternError(
                    f"{self.kind.name} reads from a fixed NI port; "
                    f"got read pattern {self.read}"
                )
            if self.write.is_fixed:
                raise PatternError(f"{self.kind.name} must write to memory")
        else:  # COPY
            if self.read.is_fixed or self.write.is_fixed:
                raise PatternError("local copies read and write memory patterns")

    @property
    def notation(self) -> str:
        """Paper notation, e.g. ``1C64``, ``wS0``, ``Nadp``."""
        if self.kind.is_network:
            return self.kind.letter
        return f"{self.read.subscript}{self.kind.letter}{self.write.subscript}"

    def __str__(self) -> str:
        return self.notation

    # Convenience for building expressions with operators; the heavy
    # lifting lives in repro.core.composition (imported lazily to avoid
    # a module cycle).

    def _as_term(self):
        from .composition import Term

        return Term(self)

    def __rshift__(self, other):
        return self._as_term() >> other

    def __or__(self, other):
        return self._as_term() | other


# -- factory functions -------------------------------------------------------


def copy(
    read: AccessPattern,
    write: AccessPattern,
    role: NodeRole = NodeRole.LOCAL,
) -> BasicTransfer:
    """A local memory-to-memory copy ``xCy`` executed by the processor."""
    return BasicTransfer(
        TransferKind.COPY,
        read,
        write,
        resources(role, ResourceUnit.CPU, ResourceUnit.MEMORY, ResourceUnit.BUS),
    )


def load_send(read: AccessPattern) -> BasicTransfer:
    """A load-send ``xS0``: the processor copies memory into the NI FIFO."""
    return BasicTransfer(
        TransferKind.LOAD_SEND,
        read,
        FIXED,
        resources(
            NodeRole.SENDER,
            ResourceUnit.CPU,
            ResourceUnit.MEMORY,
            ResourceUnit.BUS,
            ResourceUnit.NI_PORT,
        ),
    )


def fetch_send(read: AccessPattern) -> BasicTransfer:
    """A fetch-send ``xF0``: a DMA/fetch engine feeds the NI in background."""
    return BasicTransfer(
        TransferKind.FETCH_SEND,
        read,
        FIXED,
        resources(
            NodeRole.SENDER,
            ResourceUnit.DMA,
            ResourceUnit.MEMORY,
            ResourceUnit.BUS,
            ResourceUnit.NI_PORT,
        ),
    )


def receive_store(write: AccessPattern, coprocessor: bool = False) -> BasicTransfer:
    """A receive-store ``0Ry``: a processor drains the NI into memory.

    With ``coprocessor=True`` the transfer runs on the node's second
    processor (the Paragon message co-processor used as a deposit engine
    in Section 5.1.4), leaving the main CPU free for parallel work.
    """
    unit = ResourceUnit.COPROCESSOR if coprocessor else ResourceUnit.CPU
    return BasicTransfer(
        TransferKind.RECEIVE_STORE,
        FIXED,
        write,
        resources(
            NodeRole.RECEIVER,
            unit,
            ResourceUnit.MEMORY,
            ResourceUnit.BUS,
            ResourceUnit.NI_PORT,
        ),
    )


def receive_deposit(write: AccessPattern) -> BasicTransfer:
    """A receive-deposit ``0Dy``: dedicated hardware stores incoming data."""
    return BasicTransfer(
        TransferKind.RECEIVE_DEPOSIT,
        FIXED,
        write,
        resources(
            NodeRole.RECEIVER,
            ResourceUnit.DEPOSIT,
            ResourceUnit.MEMORY,
            ResourceUnit.BUS,
            ResourceUnit.NI_PORT,
        ),
    )


def network_data() -> BasicTransfer:
    """A data-only network transfer ``Nd`` (block framing, no addresses)."""
    return BasicTransfer(
        TransferKind.NETWORK_DATA,
        FIXED,
        FIXED,
        frozenset({Resource(ResourceUnit.NETWORK, NodeRole.LOCAL)}),
    )


def network_adp() -> BasicTransfer:
    """An address-plus-data network transfer ``Nadp`` (address-data pairs)."""
    return BasicTransfer(
        TransferKind.NETWORK_ADP,
        FIXED,
        FIXED,
        frozenset({Resource(ResourceUnit.NETWORK, NodeRole.LOCAL)}),
    )
