"""Hardware resources occupied by basic transfers.

The copy-transfer model's composition rules hinge on resource usage
(Section 3.3): transfers that *share* a resource must be composed in
sequence, transfers on *disjoint* resources may run in parallel, and
shared-capacity resources (memory, bus) impose aggregate-bandwidth
constraints.

A :class:`Resource` identifies a unit (CPU, DMA, ...) on a node role
(sender, receiver, or local).  Units are either *exclusive* — only one
basic transfer may occupy them at a time, so overlap forbids parallel
composition — or *capacity* resources that several transfers may share
subject to a bandwidth cap enforced by
:class:`repro.core.constraints.ResourceConstraint`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet

__all__ = ["NodeRole", "ResourceUnit", "Resource", "resources"]


class NodeRole(enum.Enum):
    """Which node of a point-to-point transfer a resource belongs to."""

    LOCAL = "local"
    SENDER = "sender"
    RECEIVER = "receiver"

    def __repr__(self) -> str:
        return f"NodeRole.{self.name}"


class ResourceUnit(enum.Enum):
    """A functional unit that a basic transfer can occupy.

    ``CPU``, ``COPROCESSOR``, ``DMA`` and ``DEPOSIT`` are exclusive: two
    basic transfers on the same node cannot both use them concurrently.
    ``MEMORY``, ``BUS`` and ``NETWORK`` are capacity resources.
    """

    CPU = "cpu"
    COPROCESSOR = "coprocessor"
    DMA = "dma"
    DEPOSIT = "deposit"
    NI_PORT = "ni_port"
    MEMORY = "memory"
    BUS = "bus"
    NETWORK = "network"

    @property
    def is_exclusive(self) -> bool:
        return self in _EXCLUSIVE_UNITS


_EXCLUSIVE_UNITS = frozenset(
    {
        ResourceUnit.CPU,
        ResourceUnit.COPROCESSOR,
        ResourceUnit.DMA,
        ResourceUnit.DEPOSIT,
    }
)


@dataclass(frozen=True)
class Resource:
    """A functional unit on a specific node role.

    >>> Resource(ResourceUnit.CPU, NodeRole.SENDER).is_exclusive
    True
    """

    unit: ResourceUnit
    role: NodeRole

    @property
    def is_exclusive(self) -> bool:
        return self.unit.is_exclusive

    def __str__(self) -> str:
        return f"{self.role.value}:{self.unit.value}"


def resources(role: NodeRole, *units: ResourceUnit) -> FrozenSet[Resource]:
    """Build a resource set for several units on one node role."""
    return frozenset(Resource(unit, role) for unit in units)
