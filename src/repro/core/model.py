"""The copy-transfer model facade.

:class:`CopyTransferModel` bundles everything the model needs for one
machine — a calibrated throughput table, the machine's communication
capabilities, and its standing resource constraints — behind a small
API:

>>> from repro.machines import t3d
>>> model = t3d().model()
>>> from repro.core.patterns import CONTIGUOUS, strided
>>> est = model.estimate(CONTIGUOUS, strided(64), style="chained")
>>> round(est.mbps)
38

which reproduces the ``|1Q'64| = 38 MB/s`` figure of Section 5.1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple, Union

from .calibration import ThroughputTable
from .composition import Expr
from .constraints import ResourceConstraint
from .errors import CompositionError, ModelError
from .operations import (
    CommCapabilities,
    OperationStyle,
    buffer_packing,
    chained,
)
from .patterns import AccessPattern
from .throughput import ThroughputEstimate, evaluate

__all__ = ["CopyTransferModel", "StyleChoice"]

StyleLike = Union[OperationStyle, str]


def _coerce_style(style: StyleLike) -> OperationStyle:
    if isinstance(style, OperationStyle):
        return style
    for candidate in OperationStyle:
        if candidate.value == style or candidate.name.lower() == style.lower():
            return candidate
    raise ModelError(f"unknown operation style {style!r}")


@dataclass(frozen=True)
class StyleChoice:
    """The model's recommendation for one ``xQy`` operation."""

    style: OperationStyle
    expr: Expr
    estimate: ThroughputEstimate
    alternatives: Tuple[Tuple[OperationStyle, ThroughputEstimate], ...] = ()

    @property
    def mbps(self) -> float:
        return self.estimate.mbps


@dataclass
class CopyTransferModel:
    """Throughput predictions for one machine's communication operations.

    Attributes:
        table: Calibrated basic-transfer throughputs (Section 4).
        capabilities: Hardware features available to the operation
            builders.
        constraints: Standing resource constraints applied to every
            estimate (e.g. the duplex-memory cap for all-to-all
            patterns).  Per-call constraints can be added on top.
        name: Label used in reports.
    """

    table: ThroughputTable
    capabilities: CommCapabilities
    constraints: Tuple[ResourceConstraint, ...] = ()
    name: str = "machine"

    def build(
        self,
        x: AccessPattern,
        y: AccessPattern,
        style: StyleLike,
    ) -> Expr:
        """Build the composition expression for ``xQy`` in one style."""
        coerced = _coerce_style(style)
        if coerced is OperationStyle.BUFFER_PACKING:
            return buffer_packing(x, y, self.capabilities)
        return chained(x, y, self.capabilities)

    def estimate_expr(
        self,
        expr: Expr,
        extra_constraints: Sequence[ResourceConstraint] = (),
        validate: bool = True,
        analyze: Union[bool, str] = False,
    ) -> ThroughputEstimate:
        """Evaluate an arbitrary composition under this machine's table.

        With ``analyze=True`` the static linter
        (:func:`repro.analysis.analyze`) runs over the expression with
        this machine's table, capabilities and constraints, and its
        diagnostics are attached to the returned estimate.  The linter
        subsumes validation (its ``CT1xx`` errors mirror
        ``Expr.validate`` exactly), so evaluation proceeds even for
        illegal compositions and the caller can inspect the diagnostics
        instead of catching ``CompositionError``.

        With ``analyze="deep"`` the semantic verifier
        (:func:`repro.analysis.verify_expr`) additionally runs its
        CT21x passes — races, rendezvous deadlocks, interval bounds,
        fault coverage — and appends those diagnostics too.
        """
        if analyze not in (False, True, "deep"):
            raise ValueError(
                f"analyze must be False, True or 'deep', got {analyze!r}"
            )
        constraints = tuple(self.constraints) + tuple(extra_constraints)
        if not analyze:
            return evaluate(expr, self.table, constraints=constraints,
                            validate=validate)
        from ..analysis import analyze as run_linter

        diagnostics = tuple(
            run_linter(
                expr,
                table=self.table,
                capabilities=self.capabilities,
                constraints=constraints,
            )
        )
        if analyze == "deep":
            from ..analysis import verify_expr

            deep = verify_expr(expr, model=self)
            diagnostics = diagnostics + tuple(deep.diagnostics)
        estimate = evaluate(
            expr, self.table, constraints=constraints, validate=False
        )
        return replace(estimate, diagnostics=diagnostics)

    def estimate(
        self,
        x: AccessPattern,
        y: AccessPattern,
        style: StyleLike,
        extra_constraints: Sequence[ResourceConstraint] = (),
        analyze: Union[bool, str] = False,
    ) -> ThroughputEstimate:
        """Predict the throughput of ``xQy`` implemented in ``style``."""
        return self.estimate_expr(
            self.build(x, y, style),
            extra_constraints=extra_constraints,
            analyze=analyze,
        )

    def choose(
        self,
        x: AccessPattern,
        y: AccessPattern,
        extra_constraints: Sequence[ResourceConstraint] = (),
    ) -> StyleChoice:
        """Pick the faster implementation style for ``xQy``.

        Styles the machine cannot implement (e.g. chained without a
        deposit engine) are skipped; at least buffer-packing always
        exists.
        """
        results: Dict[OperationStyle, Tuple[Expr, ThroughputEstimate]] = {}
        for style in OperationStyle:
            try:
                expr = self.build(x, y, style)
            except CompositionError:
                continue
            results[style] = (
                expr,
                self.estimate_expr(expr, extra_constraints=extra_constraints),
            )
        if not results:
            raise ModelError(f"no feasible implementation of {x}Q{y}")
        best_style = max(results, key=lambda s: results[s][1].mbps)
        expr, estimate = results[best_style]
        alternatives = tuple(
            (style, results[style][1])
            for style in OperationStyle
            if style in results and style is not best_style
        )
        return StyleChoice(best_style, expr, estimate, alternatives)

    def q_notation(self, x: AccessPattern, y: AccessPattern, style: StyleLike) -> str:
        """Paper-style name of the operation, e.g. ``1Q'64``."""
        prime = "'" if _coerce_style(style) is OperationStyle.CHAINED else ""
        return f"{x.subscript}Q{prime}{y.subscript}"
