"""Resource constraints: the model's third composition rule.

Section 3.3: "the model can consider additional resource constraints to
limit the total throughput of certain transfers that can occur in
parallel" — e.g. when every node of an all-to-all sends *and* receives
simultaneously, the memory system carries twice the operation's
throughput, so ``2 × |xQy| ≤ |memory bandwidth|`` (Section 3.4.1).

A :class:`ResourceConstraint` expresses ``demand × |Z| ≤ capacity``.
The capacity side is either a literal MB/s figure or a reference to a
basic-transfer entry in the calibration table (so the same constraint
object works across machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .calibration import PatternKey, ThroughputTable
from .errors import ConstraintError
from .patterns import AccessPattern, CONTIGUOUS
from .resources import ResourceUnit
from .transfers import TransferKind

__all__ = ["EntryRef", "ResourceConstraint", "duplex_memory_constraint"]


@dataclass(frozen=True)
class EntryRef:
    """A reference to a calibration-table entry used as a capacity."""

    kind: TransferKind
    read: Union[PatternKey, AccessPattern]
    write: Union[PatternKey, AccessPattern]

    def resolve(self, table: ThroughputTable) -> float:
        read = self.read if isinstance(self.read, AccessPattern) else _pattern(self.read)
        write = (
            self.write if isinstance(self.write, AccessPattern) else _pattern(self.write)
        )
        return table.lookup_kind(self.kind, read, write)


def _pattern(key: Union[PatternKey, AccessPattern]) -> AccessPattern:
    if isinstance(key, AccessPattern):
        return key
    if key == "0":
        return AccessPattern.fixed()
    if key == "1":
        return AccessPattern.contiguous()
    if key == "w":
        return AccessPattern.indexed()
    if isinstance(key, int):
        return AccessPattern.strided(key)
    raise ConstraintError(f"invalid pattern key {key!r}")


@dataclass(frozen=True)
class ResourceConstraint:
    """An aggregate-bandwidth cap ``demand × |Z| ≤ capacity``.

    Attributes:
        name: Human-readable label used in reports ("duplex memory").
        demand: How many times the operation's throughput loads the
            constrained resource (2 when a node sends and receives at
            the same time).
        capacity: The resource's bandwidth in MB/s, or an
            :class:`EntryRef` resolved against the calibration table at
            evaluation time.
        resource: Which capacity unit this constraint polices, when it
            maps onto one (``ResourceUnit.MEMORY`` for the duplex cap).
            The static analyzer uses it to tell covered shared
            resources from uncovered ones; ``None`` means the
            constraint is not tied to a single unit.
    """

    name: str
    demand: float
    capacity: Union[float, EntryRef]
    resource: Optional[ResourceUnit] = None

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ConstraintError(f"demand must be positive, got {self.demand}")
        if isinstance(self.capacity, (int, float)) and self.capacity <= 0:
            raise ConstraintError(
                f"capacity must be positive, got {self.capacity}"
            )

    def limit(self, table: Optional[ThroughputTable]) -> float:
        """The maximum operation throughput this constraint allows."""
        if isinstance(self.capacity, EntryRef):
            if table is None:
                raise ConstraintError(
                    f"constraint {self.name!r} references the calibration "
                    "table but none was supplied"
                )
            capacity = self.capacity.resolve(table)
        else:
            capacity = float(self.capacity)
        return capacity / self.demand


def duplex_memory_constraint(
    read: AccessPattern = CONTIGUOUS,
    write: AccessPattern = CONTIGUOUS,
    demand: float = 2.0,
) -> ResourceConstraint:
    """The paper's send-and-receive-simultaneously memory cap.

    Uses the local copy bandwidth ``xCy`` as a proxy for the memory
    system's total bandwidth, as the formula in Section 3.4 does.
    """
    return ResourceConstraint(
        name="duplex memory bandwidth",
        demand=demand,
        capacity=EntryRef(TransferKind.COPY, read, write),
        resource=ResourceUnit.MEMORY,
    )
