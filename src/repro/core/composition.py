"""Composition of basic transfers into communication operations.

Section 3.3 of the paper gives two concatenation operators:

* sequential composition ``∘`` — the steps time-share a resource, so
  they run one after another on each data element (Python operator
  ``>>`` here);
* parallel composition ``‖`` — the steps use disjoint resources and
  overlap fully (Python operator ``|`` here).

An operation is represented as a small expression tree of
:class:`Term`, :class:`Seq` and :class:`Par` nodes.  The tree is purely
symbolic: it can be printed in the paper's notation, validated against
the model's matching rules, and evaluated for throughput by
:mod:`repro.core.throughput`.

Example — buffer-packing message passing (Section 3.4)::

    from repro.core import patterns as p
    from repro.core import transfers as t
    from repro.core.composition import seq, par

    op = seq(
        t.copy(p.strided(64), p.CONTIGUOUS),
        par(t.load_send(p.CONTIGUOUS), t.network_data(),
            t.receive_deposit(p.CONTIGUOUS)),
        t.copy(p.CONTIGUOUS, p.CONTIGUOUS),
    )
    print(op.notation())   # 64C1 o (1S0 || Nd || 0D1) o 1C1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple, Union

from .errors import CompositionError
from .patterns import FIXED, AccessPattern
from .resources import Resource
from .transfers import BasicTransfer

__all__ = ["Expr", "Term", "Seq", "Par", "seq", "par", "as_expr"]

ExprLike = Union["Expr", BasicTransfer]


class Expr:
    """Base class for composition expressions.

    Subclasses implement the small protocol used by the evaluator:
    boundary patterns (:meth:`read_pattern` / :meth:`write_pattern`),
    the occupied resource set (:meth:`all_resources`), iteration over
    leaf transfers (:meth:`terms`), validation and pretty-printing.
    """

    def read_pattern(self) -> Optional[AccessPattern]:
        """The pattern with which this expression consumes memory data.

        ``None`` means the boundary pattern is ambiguous (several
        parallel branches read from memory); validation involving this
        expression is then skipped rather than guessed at.
        """
        raise NotImplementedError

    def write_pattern(self) -> Optional[AccessPattern]:
        """The pattern with which this expression produces memory data."""
        raise NotImplementedError

    def all_resources(self) -> FrozenSet[Resource]:
        raise NotImplementedError

    def terms(self) -> Iterator[BasicTransfer]:
        """Yield every leaf basic transfer, left to right."""
        raise NotImplementedError

    def validate(self) -> None:
        """Check the model's composition rules; raise on violation."""
        raise NotImplementedError

    def notation(self, top: bool = True) -> str:
        """Render the expression in the paper's notation."""
        raise NotImplementedError

    def __rshift__(self, other: ExprLike) -> "Seq":
        return seq(self, other)

    def __or__(self, other: ExprLike) -> "Par":
        return par(self, other)

    def __str__(self) -> str:
        return self.notation()


def as_expr(value: ExprLike) -> Expr:
    """Wrap a bare :class:`BasicTransfer` into a :class:`Term`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, BasicTransfer):
        return Term(value)
    raise TypeError(f"cannot build an expression from {value!r}")


@dataclass(frozen=True)
class Term(Expr):
    """A leaf node wrapping one basic transfer."""

    transfer: BasicTransfer

    def read_pattern(self) -> Optional[AccessPattern]:
        return self.transfer.read

    def write_pattern(self) -> Optional[AccessPattern]:
        return self.transfer.write

    def all_resources(self) -> FrozenSet[Resource]:
        return self.transfer.uses

    def terms(self) -> Iterator[BasicTransfer]:
        yield self.transfer

    def validate(self) -> None:
        return None

    def notation(self, top: bool = True) -> str:
        return self.transfer.notation


@dataclass(frozen=True)
class Seq(Expr):
    """Sequential composition: parts time-share a resource.

    The matching rule (Section 3.3) requires that the write pattern of
    each part equals the read pattern of the next.  Fixed ends (``0``)
    and ambiguous boundaries (``None``) are exempt: a load-send hands
    data to the network port, not to the next memory stage, so a
    ``1S0`` followed by a ``0D1`` group is legal even though the FIFO
    patterns differ from memory patterns.
    """

    parts: Tuple[Expr, ...]

    def read_pattern(self) -> Optional[AccessPattern]:
        return self.parts[0].read_pattern()

    def write_pattern(self) -> Optional[AccessPattern]:
        return self.parts[-1].write_pattern()

    def all_resources(self) -> FrozenSet[Resource]:
        merged: FrozenSet[Resource] = frozenset()
        for part in self.parts:
            merged |= part.all_resources()
        return merged

    def terms(self) -> Iterator[BasicTransfer]:
        for part in self.parts:
            yield from part.terms()

    def validate(self) -> None:
        for part in self.parts:
            part.validate()
        for left, right in zip(self.parts, self.parts[1:]):
            produced = left.write_pattern()
            consumed = right.read_pattern()
            if produced is None or consumed is None:
                continue
            if produced == FIXED or consumed == FIXED:
                continue
            if not produced.matches(consumed):
                raise CompositionError(
                    f"pattern mismatch in sequence: {left.notation()} writes "
                    f"{produced} but {right.notation()} reads {consumed}"
                )

    def notation(self, top: bool = True) -> str:
        inner = " o ".join(part.notation(top=False) for part in self.parts)
        return inner if top else f"({inner})"


@dataclass(frozen=True)
class Par(Expr):
    """Parallel composition: parts overlap on disjoint resources.

    Exclusive resources (CPUs, DMA engines, deposit engines) may not be
    shared between branches; capacity resources (memory, bus, network)
    may — their aggregate load is policed separately by resource
    constraints.
    """

    parts: Tuple[Expr, ...]

    def _unique_pattern(self, which: str) -> Optional[AccessPattern]:
        candidates = []
        for part in self.parts:
            pattern = (
                part.read_pattern() if which == "read" else part.write_pattern()
            )
            if pattern is None:
                return None
            if not pattern.is_fixed:
                candidates.append(pattern)
        if not candidates:
            return FIXED
        if len(candidates) == 1:
            return candidates[0]
        return None

    def read_pattern(self) -> Optional[AccessPattern]:
        return self._unique_pattern("read")

    def write_pattern(self) -> Optional[AccessPattern]:
        return self._unique_pattern("write")

    def all_resources(self) -> FrozenSet[Resource]:
        merged: FrozenSet[Resource] = frozenset()
        for part in self.parts:
            merged |= part.all_resources()
        return merged

    def terms(self) -> Iterator[BasicTransfer]:
        for part in self.parts:
            yield from part.terms()

    def validate(self) -> None:
        for part in self.parts:
            part.validate()
        seen: dict = {}
        for index, part in enumerate(self.parts):
            for resource in part.all_resources():
                if not resource.is_exclusive:
                    continue
                if resource in seen and seen[resource] != index:
                    raise CompositionError(
                        f"parallel branches share exclusive resource {resource}: "
                        f"{self.parts[seen[resource]].notation()} and "
                        f"{part.notation()}"
                    )
                seen[resource] = index

    def notation(self, top: bool = True) -> str:
        inner = " || ".join(part.notation(top=False) for part in self.parts)
        return inner if top else f"({inner})"


def _flatten(
    cls: type, items: Sequence[ExprLike]
) -> Tuple[Expr, ...]:
    flat: list = []
    for item in items:
        expr = as_expr(item)
        if isinstance(expr, cls):
            flat.extend(expr.parts)  # type: ignore[attr-defined]
        else:
            flat.append(expr)
    return tuple(flat)


def seq(*parts: ExprLike) -> Seq:
    """Compose transfers sequentially (the paper's ``∘``).

    Adjacent ``seq`` calls flatten, so ``seq(a, seq(b, c))`` equals
    ``seq(a, b, c)``; throughput is associative under the harmonic rule
    so no information is lost.
    """
    flat = _flatten(Seq, parts)
    if not flat:
        raise CompositionError("sequential composition needs at least one part")
    return Seq(flat)


def par(*parts: ExprLike) -> Par:
    """Compose transfers in parallel (the paper's ``‖``)."""
    flat = _flatten(Par, parts)
    if not flat:
        raise CompositionError("parallel composition needs at least one part")
    return Par(flat)
