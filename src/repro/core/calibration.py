"""Calibration tables: measured throughputs of basic transfers.

Section 4 of the paper measures a throughput figure (MB/s of *payload*,
with headers, addresses and index loads charged against the rate) for
every basic transfer on each machine.  A :class:`ThroughputTable` holds
such a set of figures and answers lookups for arbitrary transfers:

* exact entries are returned as stored;
* strided lookups between tabulated strides are interpolated linearly
  in ``log2(stride)``, matching the shape of the stride curves in
  Figure 4 (steep fall-off at small strides, flat tail);
* strided lookups beyond the largest tabulated stride return the
  largest-stride entry — the paper's rule that "the throughput for
  stride 64 applies to any larger stride";
* a transfer strided on *both* sides, when not tabulated directly, is
  approximated by charging each side's strided penalty once:
  ``1/r(x,y) = 1/r(x,1) + 1/r(1,y) - 1/r(1,1)``.

Tables are plain data.  They can be authored from the paper's published
numbers (:mod:`repro.machines`) or derived by running the simulators in
:mod:`repro.memsim` / :mod:`repro.netsim` through the measurement
harness (:mod:`repro.machines.measure`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .errors import CalibrationError
from .patterns import AccessPattern, PatternKind
from .transfers import BasicTransfer, TransferKind

__all__ = ["PatternKey", "EntryKey", "pattern_key", "ThroughputTable"]

# A pattern key is "0", "1", "w", or an integer stride.
PatternKey = Union[str, int]
EntryKey = Tuple[TransferKind, PatternKey, PatternKey]


def pattern_key(pattern: AccessPattern) -> PatternKey:
    """Reduce an access pattern to its table key.

    Blocked strided patterns key by their stride alone: the tables do
    not distinguish block sizes, which affect throughput only weakly
    compared to the stride itself.
    """
    if pattern.kind is PatternKind.FIXED:
        return "0"
    if pattern.kind is PatternKind.CONTIGUOUS:
        return "1"
    if pattern.kind is PatternKind.INDEXED:
        return "w"
    assert pattern.stride is not None
    return pattern.stride


def _parse_key(key: Union[PatternKey, AccessPattern]) -> PatternKey:
    if isinstance(key, AccessPattern):
        return pattern_key(key)
    if isinstance(key, int):
        return key
    if key in ("0", "1", "w"):
        return key
    raise CalibrationError(f"invalid pattern key {key!r}")


class ThroughputTable:
    """A named mapping from basic transfers to throughput in MB/s.

    >>> table = ThroughputTable("demo")
    >>> table.set(TransferKind.COPY, "1", "1", 93.0)
    >>> table.set(TransferKind.COPY, "1", 64, 67.9)
    >>> from repro.core import transfers, patterns
    >>> table.lookup(transfers.copy(patterns.CONTIGUOUS, patterns.strided(128)))
    67.9
    """

    def __init__(self, name: str = "unnamed") -> None:
        self.name = name
        self._entries: Dict[EntryKey, float] = {}

    # -- population --------------------------------------------------------

    def set(
        self,
        kind: TransferKind,
        read: Union[PatternKey, AccessPattern],
        write: Union[PatternKey, AccessPattern],
        mbps: float,
    ) -> None:
        """Record the throughput of one basic transfer."""
        if not (isinstance(mbps, (int, float)) and math.isfinite(mbps) and mbps > 0):
            raise CalibrationError(
                f"throughput must be a positive finite number, got {mbps!r}"
            )
        self._entries[(kind, _parse_key(read), _parse_key(write))] = float(mbps)

    def set_transfer(self, transfer: BasicTransfer, mbps: float) -> None:
        """Record the throughput keyed by an existing transfer object."""
        self.set(transfer.kind, transfer.read, transfer.write, mbps)

    def merge(self, other: "ThroughputTable", overwrite: bool = True) -> None:
        """Copy entries from ``other`` into this table."""
        for key, value in other._entries.items():
            if overwrite or key not in self._entries:
                self._entries[key] = value

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[EntryKey, float]]:
        return iter(sorted(self._entries.items(), key=lambda item: repr(item[0])))

    def has(
        self,
        kind: TransferKind,
        read: Union[PatternKey, AccessPattern],
        write: Union[PatternKey, AccessPattern],
    ) -> bool:
        return (kind, _parse_key(read), _parse_key(write)) in self._entries

    def get(
        self,
        kind: TransferKind,
        read: Union[PatternKey, AccessPattern],
        write: Union[PatternKey, AccessPattern],
    ) -> Optional[float]:
        """Exact-entry fetch; ``None`` when absent (no interpolation)."""
        return self._entries.get((kind, _parse_key(read), _parse_key(write)))

    def to_dict(self) -> Dict[str, float]:
        """Serialize to ``{"1C64": 67.9, ...}`` style keys."""
        result = {}
        for (kind, read, write), value in self._entries.items():
            if kind.is_network:
                result[kind.letter] = value
            else:
                result[f"{read}{kind.letter}{write}"] = value
        return result

    # -- lookup ---------------------------------------------------------------

    def lookup(self, transfer: BasicTransfer) -> float:
        """Throughput for a basic transfer, interpolating strides.

        Raises :class:`CalibrationError` when no entry (or usable
        interpolation anchor) exists, naming the missing key so a
        calibration gap is easy to diagnose.
        """
        return self.lookup_kind(transfer.kind, transfer.read, transfer.write)

    def lookup_kind(
        self,
        kind: TransferKind,
        read: AccessPattern,
        write: AccessPattern,
    ) -> float:
        rkey = pattern_key(read)
        wkey = pattern_key(write)
        exact = self._entries.get((kind, rkey, wkey))
        if exact is not None:
            return exact

        read_strided = isinstance(rkey, int)
        write_strided = isinstance(wkey, int)

        if read_strided and write_strided:
            return self._two_sided_strided(kind, rkey, wkey)
        if read_strided:
            return self._interpolate(kind, side="read", stride=rkey, other=wkey)
        if write_strided:
            return self._interpolate(kind, side="write", stride=wkey, other=rkey)

        raise CalibrationError(
            f"table {self.name!r} has no entry for {rkey}{kind.letter}{wkey}"
        )

    def _stride_points(
        self, kind: TransferKind, side: str, other: PatternKey
    ) -> List[Tuple[int, float]]:
        """All (stride, rate) anchors on one side, plus contiguous as stride 1."""
        points: List[Tuple[int, float]] = []
        for (entry_kind, rkey, wkey), rate in self._entries.items():
            if entry_kind is not kind:
                continue
            this, that = (rkey, wkey) if side == "read" else (wkey, rkey)
            if that != other:
                continue
            if isinstance(this, int):
                points.append((this, rate))
            elif this == "1":
                points.append((1, rate))
        points.sort()
        return points

    def _interpolate(
        self, kind: TransferKind, side: str, stride: int, other: PatternKey
    ) -> float:
        points = self._stride_points(kind, side, other)
        anchors = [p for p in points if p[0] >= 2]
        if not anchors:
            raise CalibrationError(
                f"table {self.name!r} has no strided {side} anchors for "
                f"{kind.letter} against pattern {other!r}"
            )
        if stride >= anchors[-1][0]:
            # Paper's rule: large strides behave like the largest tabulated one.
            return anchors[-1][1]
        below = max((p for p in points if p[0] <= stride), default=None)
        above = min((p for p in points if p[0] >= stride), default=None)
        if below is None:
            return above[1]
        if above is None or below[0] == above[0]:
            return below[1]
        # Linear in log2(stride): matches the Figure 4 fall-off shape.
        span = math.log2(above[0]) - math.log2(below[0])
        frac = (math.log2(stride) - math.log2(below[0])) / span
        return below[1] + frac * (above[1] - below[1])

    def _two_sided_strided(
        self, kind: TransferKind, rstride: int, wstride: int
    ) -> float:
        """Approximate ``xCy`` with both sides strided.

        Charges each side's penalty once on top of the contiguous rate:
        ``1/r = 1/r(x,1) + 1/r(1,y) - 1/r(1,1)``.
        """
        base = self._entries.get((kind, "1", "1"))
        if base is None:
            raise CalibrationError(
                f"table {self.name!r} needs a 1{kind.letter}1 entry to "
                f"approximate {rstride}{kind.letter}{wstride}"
            )
        read_rate = self._interpolate(kind, "read", rstride, "1")
        write_rate = self._interpolate(kind, "write", wstride, "1")
        inverse = 1.0 / read_rate + 1.0 / write_rate - 1.0 / base
        if inverse <= 0:
            raise CalibrationError(
                f"inconsistent anchors for {rstride}{kind.letter}{wstride} "
                f"in table {self.name!r}"
            )
        return 1.0 / inverse

    def __repr__(self) -> str:
        return f"ThroughputTable({self.name!r}, entries={len(self._entries)})"
