"""Exception hierarchy for the copy-transfer model.

All errors raised by :mod:`repro.core` derive from :class:`ModelError`, so
callers can catch one type to handle any model-level failure while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ModelError(Exception):
    """Base class for all copy-transfer model errors."""


class PatternError(ModelError):
    """An access pattern is malformed or used in an illegal position."""


class CompositionError(ModelError):
    """A composition violates the model's concatenation rules.

    Raised when sequential composition chains transfers whose access
    patterns do not match (the write pattern of one step must equal the
    read pattern of the next), or when parallel composition combines
    transfers that share an exclusive resource.
    """


class CalibrationError(ModelError):
    """A throughput table lookup failed or a table entry is invalid."""


class ConstraintError(ModelError):
    """A resource constraint is malformed (e.g. non-positive capacity)."""


class FaultError(ModelError):
    """An injected fault made an operation impossible.

    Raised when a fault plan leaves no legal way to proceed: a failed
    link partitions the topology, or a fault spec is malformed.
    Recoverable faults (deposit-engine loss with a packing fallback,
    fragment loss within the retry budget) never raise; they degrade.
    """


class TransferAbortedError(FaultError):
    """A transfer exhausted its retry budget and gave up.

    Carries the endpoints of the aborted transfer (when known) so
    higher layers — notably the load engine's circuit breakers — can
    attribute the abort to a specific (src, dst) link without parsing
    the message.  Anonymous transfers leave both as ``None``.
    """

    def __init__(
        self,
        message: str,
        src: "int | None" = None,
        dst: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst


class LoadError(ModelError):
    """The traffic engine was asked something impossible.

    Raised for malformed load profiles and overload-protection specs,
    percentile queries on an empty latency store, and invalid
    latency-curve sweeps.
    """
