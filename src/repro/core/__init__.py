"""The copy-transfer model (the paper's primary contribution).

Public surface:

* :mod:`repro.core.patterns` — access patterns (``0``, ``1``, stride, ω);
* :mod:`repro.core.transfers` — the seven basic transfers;
* :mod:`repro.core.composition` — sequential / parallel composition;
* :mod:`repro.core.calibration` — measured throughput tables;
* :mod:`repro.core.constraints` — aggregate-bandwidth constraints;
* :mod:`repro.core.throughput` — the three evaluation rules;
* :mod:`repro.core.operations` — buffer-packing and chained ``xQy``;
* :mod:`repro.core.model` — per-machine facade.
"""

from .calibration import ThroughputTable
from .composition import Expr, Par, Seq, Term, par, seq
from .constraints import EntryRef, ResourceConstraint, duplex_memory_constraint
from .latency import LatencyModel
from .errors import (
    CalibrationError,
    CompositionError,
    ConstraintError,
    FaultError,
    ModelError,
    PatternError,
    TransferAbortedError,
)
from .model import CopyTransferModel, StyleChoice
from .serialization import dump_table, load_table, table_from_dict, table_to_dict
from .operations import (
    CommCapabilities,
    DepositSupport,
    OperationStyle,
    buffer_packing,
    chained,
)
from .patterns import CONTIGUOUS, FIXED, INDEXED, AccessPattern, PatternKind, strided
from .resources import NodeRole, Resource, ResourceUnit
from .throughput import EvalNode, ThroughputEstimate, evaluate
from .transfers import (
    BasicTransfer,
    TransferKind,
    copy,
    fetch_send,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)

__all__ = [
    "AccessPattern",
    "BasicTransfer",
    "CalibrationError",
    "CommCapabilities",
    "CompositionError",
    "ConstraintError",
    "FaultError",
    "CONTIGUOUS",
    "CopyTransferModel",
    "DepositSupport",
    "EntryRef",
    "EvalNode",
    "Expr",
    "dump_table",
    "FIXED",
    "INDEXED",
    "LatencyModel",
    "load_table",
    "ModelError",
    "NodeRole",
    "OperationStyle",
    "Par",
    "PatternError",
    "TransferAbortedError",
    "PatternKind",
    "Resource",
    "ResourceConstraint",
    "ResourceUnit",
    "Seq",
    "StyleChoice",
    "Term",
    "ThroughputEstimate",
    "ThroughputTable",
    "TransferKind",
    "buffer_packing",
    "chained",
    "copy",
    "duplex_memory_constraint",
    "evaluate",
    "fetch_send",
    "load_send",
    "network_adp",
    "network_data",
    "par",
    "receive_deposit",
    "receive_store",
    "seq",
    "strided",
]
