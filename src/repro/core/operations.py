"""Builders for the compiler-level communication operation ``xQy``.

``xQy`` is a local-memory to remote-memory copy with read pattern ``x``
on the sender and write pattern ``y`` on the receiver — the operation a
parallelizing compiler emits for an array assignment (Section 3.4).
The paper studies two implementation strategies:

**Buffer-packing** (Section 3.4, 5.1.1, 5.1.3)::

    xQy = xC1 o (1S0 || Nd || 0D1) o 1Cy

gather into a contiguous buffer, ship the block over the data-only
network, scatter at the receiver.  PVM-style libraries force the
gather/scatter copies even when both patterns are contiguous.

**Chained** (Section 5.1.2, 5.1.4)::

    1Q'1 = 1S0 || Nd   || 0D1
    xQ'y = xS0 || Nadp || 0Dy

the sender reads the elements in their home pattern and streams them
straight to the network; a deposit engine (or a dedicated co-processor)
performs the scatter in the background.  Non-contiguous remote stores
ship address-data pairs, halving the useful wire bandwidth.

Which concrete basic transfers appear (DMA fetch-send vs processor
load-send, deposit engine vs co-processor receive-store) depends on the
machine; :class:`CommCapabilities` captures the relevant hardware
features so the builders stay machine-independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .composition import Expr, par, seq
from .errors import CompositionError
from .patterns import CONTIGUOUS, AccessPattern
from .resources import NodeRole
from .transfers import (
    copy,
    fetch_send,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)

__all__ = [
    "DepositSupport",
    "CommCapabilities",
    "OperationStyle",
    "buffer_packing",
    "chained",
]


class DepositSupport(enum.Enum):
    """What write patterns the receiver's background engine can handle."""

    NONE = "none"
    CONTIGUOUS = "contiguous"
    ANY = "any"


@dataclass(frozen=True)
class CommCapabilities:
    """The hardware features that shape ``xQy`` implementations.

    Attributes:
        deposit: What the deposit engine supports.  The T3D annex
            processes address-data pairs for any pattern (``ANY``); the
            Paragon DMA handles only aligned contiguous blocks
            (``CONTIGUOUS``).
        dma_send: Whether a fetch-send ``1F0`` exists for contiguous
            sends (Paragon line-transfer unit: yes; T3D: no).
        coprocessor_receive: Whether a second processor can act as a
            deposit engine via ``0Ry`` (Paragon message co-processor).
        pack_even_contiguous: Whether the library forces gather/scatter
            copies for contiguous patterns too (PVM semantics).
        overlap_unpack: Whether the receiver's scatter copy can overlap
            the network stage (Paragon with the co-processor tending
            the DMA engines, Section 5.1.3).
    """

    deposit: DepositSupport = DepositSupport.NONE
    dma_send: bool = False
    coprocessor_receive: bool = False
    pack_even_contiguous: bool = True
    overlap_unpack: bool = False

    @property
    def chained_receiver_available(self) -> bool:
        return self.deposit is DepositSupport.ANY or self.coprocessor_receive


class OperationStyle(enum.Enum):
    """The two implementation strategies compared by the paper."""

    BUFFER_PACKING = "buffer-packing"
    CHAINED = "chained"


def _packing_middle(caps: CommCapabilities) -> Expr:
    """The contiguous-block network stage of a buffer-packing transfer."""
    sender = fetch_send(CONTIGUOUS) if caps.dma_send else load_send(CONTIGUOUS)
    if caps.deposit in (DepositSupport.ANY, DepositSupport.CONTIGUOUS):
        receiver = receive_deposit(CONTIGUOUS)
    else:
        receiver = receive_store(CONTIGUOUS)
    return par(sender, network_data(), receiver)


def buffer_packing(
    x: AccessPattern,
    y: AccessPattern,
    caps: CommCapabilities,
) -> Expr:
    """Build the buffer-packing implementation of ``xQy``.

    The gather copy is emitted unless ``x`` is contiguous and the
    library allows skipping it (``pack_even_contiguous=False``);
    likewise for the scatter copy and ``y``.
    """
    if x.is_fixed or y.is_fixed:
        raise CompositionError("xQy patterns must address memory, not a FIFO")
    middle = _packing_middle(caps)
    need_gather = caps.pack_even_contiguous or not x.is_contiguous
    need_scatter = caps.pack_even_contiguous or not y.is_contiguous

    parts = []
    if need_gather:
        parts.append(copy(x, CONTIGUOUS, role=NodeRole.SENDER))
    if need_scatter and caps.overlap_unpack:
        parts.append(par(middle, copy(CONTIGUOUS, y, role=NodeRole.RECEIVER)))
    else:
        parts.append(middle)
        if need_scatter:
            parts.append(copy(CONTIGUOUS, y, role=NodeRole.RECEIVER))
    if len(parts) == 1:
        return parts[0]
    return seq(*parts)


def chained(
    x: AccessPattern,
    y: AccessPattern,
    caps: CommCapabilities,
) -> Expr:
    """Build the chained implementation ``xQ'y``.

    Requires a receiver that can scatter in the background: a
    general-pattern deposit engine or a co-processor receive-store.
    Contiguous-to-contiguous transfers ride the data-only network;
    anything else ships address-data pairs.
    """
    if x.is_fixed or y.is_fixed:
        raise CompositionError("xQy patterns must address memory, not a FIFO")
    contiguous_both = x.is_contiguous and y.is_contiguous
    if contiguous_both:
        network = network_data()
    else:
        network = network_adp()

    if caps.deposit is DepositSupport.ANY:
        receiver = receive_deposit(y)
    elif caps.deposit is DepositSupport.CONTIGUOUS and y.is_contiguous:
        receiver = receive_deposit(y)
    elif caps.coprocessor_receive:
        receiver = receive_store(y, coprocessor=True)
    else:
        raise CompositionError(
            f"no background receiver for write pattern {y}: chained "
            "transfers need a general deposit engine or a co-processor"
        )
    return par(load_send(x), network, receiver)
