"""Serialization of calibration tables and model summaries.

Calibration tables are the interface between measurement campaigns and
model users, so they need a stable on-disk form.  The format is plain
JSON with paper-notation keys::

    {
      "name": "Cray T3D (published)",
      "entries": {"1C1": 93.0, "1C64": 67.9, "Nd": 69.0, ...}
    }

Keys parse back through the same notation rules the library prints
with (``<read><letter><write>``, ``Nd``, ``Nadp``), so a table survives
a round trip bit-exactly.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Union

from .calibration import ThroughputTable
from .errors import CalibrationError
from .transfers import TransferKind

__all__ = ["table_to_dict", "table_from_dict", "dump_table", "load_table"]

_NOTATION = re.compile(r"^(?P<read>0|1|w|\d+(?:x\d+)?)"
                       r"(?P<kind>[CSFRD])"
                       r"(?P<write>0|1|w|\d+(?:x\d+)?)$")

_KIND_BY_LETTER = {
    "C": TransferKind.COPY,
    "S": TransferKind.LOAD_SEND,
    "F": TransferKind.FETCH_SEND,
    "R": TransferKind.RECEIVE_STORE,
    "D": TransferKind.RECEIVE_DEPOSIT,
}


def _parse_side(text: str) -> Union[str, int]:
    if text in ("0", "1", "w"):
        return text
    if "x" in text:
        # Blocked strides key by the stride alone in tables.
        text = text.partition("x")[0]
    return int(text)


def table_to_dict(table: ThroughputTable) -> Dict:
    """Serialize a table to a JSON-compatible dict."""
    return {"name": table.name, "entries": table.to_dict()}


def table_from_dict(payload: Dict) -> ThroughputTable:
    """Rebuild a table from :func:`table_to_dict` output."""
    if "entries" not in payload:
        raise CalibrationError("payload has no 'entries' field")
    table = ThroughputTable(payload.get("name", "unnamed"))
    for key, rate in payload["entries"].items():
        if key == "Nd":
            table.set(TransferKind.NETWORK_DATA, "0", "0", rate)
            continue
        if key == "Nadp":
            table.set(TransferKind.NETWORK_ADP, "0", "0", rate)
            continue
        match = _NOTATION.match(key)
        if not match:
            raise CalibrationError(f"unparseable table key {key!r}")
        table.set(
            _KIND_BY_LETTER[match.group("kind")],
            _parse_side(match.group("read")),
            _parse_side(match.group("write")),
            rate,
        )
    return table


def dump_table(table: ThroughputTable, path: str) -> None:
    """Write a table to a JSON file."""
    with open(path, "w") as handle:
        json.dump(table_to_dict(table), handle, indent=2, sort_keys=True)


def load_table(path: str) -> ThroughputTable:
    """Read a table from a JSON file."""
    with open(path) as handle:
        return table_from_dict(json.load(handle))
