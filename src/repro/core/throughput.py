"""Throughput evaluation of composition expressions.

Implements the three rules of Section 3.3:

* parallel composition — ``|Z| = min(|X|, |Y|)``;
* sequential composition — ``|Z| = 1 / (1/|X| + 1/|Y|)``;
* resource constraints — ``demand × |Z| ≤ capacity``, applied by
  capping the final figure.

:func:`evaluate` walks an expression tree, looks up each leaf in a
:class:`~repro.core.calibration.ThroughputTable`, folds the rules, and
returns a :class:`ThroughputEstimate` carrying both the headline MB/s
figure and a full per-node breakdown for reporting and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .calibration import ThroughputTable
from .composition import Expr, Par, Seq, Term
from .constraints import ResourceConstraint
from .errors import ModelError

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic

__all__ = ["EvalNode", "ConstraintReport", "ThroughputEstimate", "evaluate"]


@dataclass(frozen=True)
class EvalNode:
    """One node of the evaluated expression tree.

    Attributes:
        notation: The sub-expression in paper notation.
        rule: Which rule produced the rate: ``"lookup"``, ``"min"``
            (parallel) or ``"harmonic"`` (sequential).
        mbps: The sub-expression's throughput.
        children: Evaluations of the sub-parts (empty for leaves).
        bottleneck: For parallel nodes, the notation of the slowest
            branch; for sequential nodes, of the branch contributing
            the largest share of time.  ``None`` for leaves.
    """

    notation: str
    rule: str
    mbps: float
    children: Tuple["EvalNode", ...] = ()
    bottleneck: Optional[str] = None

    def render(self, indent: int = 0) -> str:
        """Multi-line human-readable breakdown."""
        pad = "  " * indent
        line = f"{pad}{self.notation}  [{self.rule}]  {self.mbps:.1f} MB/s"
        if self.bottleneck:
            line += f"  (bottleneck: {self.bottleneck})"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class ConstraintReport:
    """How one resource constraint affected the estimate."""

    name: str
    limit_mbps: float
    binding: bool


@dataclass(frozen=True)
class ThroughputEstimate:
    """The result of evaluating a communication operation.

    ``mbps`` is the constrained end-to-end throughput; ``unconstrained_mbps``
    the figure before resource constraints; ``root`` the evaluation tree.
    ``diagnostics`` carries the static analyzer's findings when the
    estimate was requested with ``analyze=True`` (see
    :meth:`repro.core.model.CopyTransferModel.estimate`); an
    error-severity diagnostic means the composition is illegal and the
    figure is indicative at best.
    """

    mbps: float
    unconstrained_mbps: float
    root: EvalNode
    constraints: Tuple[ConstraintReport, ...] = ()
    diagnostics: Tuple["Diagnostic", ...] = ()

    @property
    def constrained(self) -> bool:
        """Whether any resource constraint reduced the estimate."""
        return any(report.binding for report in self.constraints)

    def render(self) -> str:
        lines = [self.root.render()]
        for report in self.constraints:
            marker = "BINDING" if report.binding else "slack"
            lines.append(
                f"constraint {report.name}: limit {report.limit_mbps:.1f} MB/s "
                f"[{marker}]"
            )
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        lines.append(f"estimate: {self.mbps:.1f} MB/s")
        return "\n".join(lines)


def _evaluate_node(expr: Expr, table: ThroughputTable) -> EvalNode:
    if isinstance(expr, Term):
        rate = table.lookup(expr.transfer)
        return EvalNode(expr.notation(), "lookup", rate)
    if isinstance(expr, Par):
        children = tuple(_evaluate_node(part, table) for part in expr.parts)
        slowest = min(children, key=lambda node: node.mbps)
        return EvalNode(
            expr.notation(),
            "min",
            slowest.mbps,
            children,
            bottleneck=slowest.notation,
        )
    if isinstance(expr, Seq):
        children = tuple(_evaluate_node(part, table) for part in expr.parts)
        for node in children:
            if node.mbps <= 0.0:
                raise ModelError(
                    f"sequential composition {expr.notation()} contains the "
                    f"zero-throughput step {node.notation}; the harmonic "
                    "rule is undefined for a step that moves no data"
                )
        inverse = sum(1.0 / node.mbps for node in children)
        dominant = max(children, key=lambda node: 1.0 / node.mbps)
        return EvalNode(
            expr.notation(),
            "harmonic",
            1.0 / inverse,
            children,
            bottleneck=dominant.notation,
        )
    raise ModelError(f"cannot evaluate expression node {expr!r}")


def evaluate(
    expr: Expr,
    table: ThroughputTable,
    constraints: Sequence[ResourceConstraint] = (),
    validate: bool = True,
) -> ThroughputEstimate:
    """Estimate the throughput of a communication operation.

    Args:
        expr: The operation as a composition expression.
        table: Calibrated basic-transfer throughputs for the machine.
        constraints: Resource constraints to apply on top of the
            composition rules.
        validate: Run the composition legality checks first.  Disable
            only when evaluating deliberately illegal compositions for
            ablation studies.

    Returns:
        A :class:`ThroughputEstimate` with the constrained figure and
        the full evaluation tree.
    """
    if validate:
        expr.validate()
    root = _evaluate_node(expr, table)
    reports: List[ConstraintReport] = []
    capped = root.mbps
    for constraint in constraints:
        limit = constraint.limit(table)
        binding = limit < capped
        if binding:
            capped = limit
        reports.append(ConstraintReport(constraint.name, limit, binding))
    return ThroughputEstimate(
        mbps=capped,
        unconstrained_mbps=root.mbps,
        root=root,
        constraints=tuple(reports),
    )
