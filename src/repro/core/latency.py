"""Latency extension of the throughput-oriented model.

The copy-transfer model is deliberately throughput-only (Section 3.1):
for the large transfers of data-parallel programs, per-message latency
washes out.  Figure 1 and the SOR row of Table 6 show where that
assumption frays — small messages are overhead-bound.  This module
adds the classic two-parameter finishing touch:

    time(n) = t0 + n / B

with startup time ``t0`` and asymptotic bandwidth ``B``, giving the
textbook half-performance length ``n_1/2 = t0 * B`` — the message size
at which half of B is realized.  :meth:`LatencyModel.fit` recovers the
parameters from a measured size/throughput curve (e.g. a Figure 1
sweep) by least squares on the time domain, where the model is linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from .errors import ModelError

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """``time(n) = t0 + n/B`` in ns and MB/s.

    Attributes:
        startup_ns: The fixed per-message cost t0.
        asymptotic_mbps: The large-message bandwidth B.
    """

    startup_ns: float
    asymptotic_mbps: float

    def __post_init__(self) -> None:
        if self.startup_ns < 0:
            raise ModelError(f"negative startup time {self.startup_ns}")
        if self.asymptotic_mbps <= 0:
            raise ModelError(
                f"asymptotic bandwidth must be positive, got {self.asymptotic_mbps}"
            )

    # -- predictions ---------------------------------------------------------

    def time_ns(self, nbytes: int) -> float:
        """Predicted transfer time for ``nbytes``."""
        return self.startup_ns + nbytes / self.asymptotic_mbps * 1000.0

    def throughput(self, nbytes: int) -> float:
        """Predicted effective throughput (MB/s) for ``nbytes``."""
        if nbytes <= 0:
            raise ModelError(f"need a positive size, got {nbytes}")
        return nbytes / self.time_ns(nbytes) * 1000.0

    @property
    def half_performance_bytes(self) -> float:
        """n_1/2: the size at which half the asymptotic rate is reached."""
        return self.startup_ns * self.asymptotic_mbps / 1000.0

    # -- fitting -------------------------------------------------------------

    @classmethod
    def fit(cls, curve: Iterable[Tuple[int, float]]) -> "LatencyModel":
        """Fit t0 and B from (nbytes, MB/s) samples.

        Linear least squares on ``time = t0 + n * (1/B)``; needs at
        least two distinct sizes.
        """
        samples: List[Tuple[int, float]] = [
            (int(n), float(rate)) for n, rate in curve
        ]
        if len({n for n, __ in samples}) < 2:
            raise ModelError("fitting needs at least two distinct sizes")
        if any(rate <= 0 for __, rate in samples):
            raise ModelError("throughput samples must be positive")

        times = [(n, n / rate * 1000.0) for n, rate in samples]
        count = len(times)
        sum_n = sum(n for n, __ in times)
        sum_t = sum(t for __, t in times)
        sum_nn = sum(n * n for n, __ in times)
        sum_nt = sum(n * t for n, t in times)
        denominator = count * sum_nn - sum_n * sum_n
        inverse_bandwidth = (count * sum_nt - sum_n * sum_t) / denominator
        startup = (sum_t - inverse_bandwidth * sum_n) / count
        if inverse_bandwidth <= 0:
            raise ModelError("samples imply non-positive bandwidth")
        return cls(
            startup_ns=max(0.0, startup),
            asymptotic_mbps=1000.0 / inverse_bandwidth,
        )

    def __str__(self) -> str:
        return (
            f"t0={self.startup_ns / 1000.0:.1f}us, "
            f"B={self.asymptotic_mbps:.1f} MB/s, "
            f"n1/2={self.half_performance_bytes / 1024.0:.1f} KB"
        )
