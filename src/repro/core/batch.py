"""Batched vectorized evaluation of many model queries at once.

The paper's headline artifacts are *grids* of estimate queries
(Tables 1-3, Figures 7/8), and serving "what if" traffic means
answering hundreds of estimates cheaply.  The scalar path answers one
query at a time: build an expression, walk its tree, fold the three
Section 3.3 rules, apply constraints.  This module answers a whole
list in a handful of numpy passes:

* queries are grouped by expression **shape** (the tree structure with
  leaves erased); every query in a group folds through identical
  operations, so the group evaluates as elementwise array math with
  one lane per query;
* parallel composition folds with :func:`numpy.minimum`, sequential
  composition accumulates reciprocals in the scalar evaluator's exact
  left-to-right order, and resource constraints apply as
  :func:`numpy.where` caps — each lane reproduces the scalar fold's
  IEEE-754 operation sequence, so results are **bit-identical** to
  :func:`repro.core.throughput.evaluate` (asserted by
  ``tests/properties/test_batch_parity.py``);
* lanes the vector path cannot express — a composition that fails
  validation, a missing calibration entry, a nonpositive leaf rate
  (the scalar evaluator's zero-throughput ``ModelError`` domain) —
  fall back to the scalar oracle one at a time, in input order, so
  they raise exactly what the equivalent Python loop would have
  raised.  This is the same envelope discipline as the memsim
  fastpath (:class:`~repro.memsim.fastpath.FastpathUnsupported`).

The same machinery solves the runtime's chunked stage pipelines for
many transfers at once (:func:`solve_pipeline_group`): lanes sharing a
pipeline *structure* (chunking and resource-sharing topology) advance
chunk by chunk as arrays, replicating
:meth:`repro.runtime.stages.StagePipeline.run`'s recurrence
elementwise.  The sweep engine's batch strategy
(:mod:`repro.sweep.batch`) builds on both halves.

This module deliberately imports nothing from :mod:`repro.runtime` or
:mod:`repro.sweep` — it is pure core + numpy, and the higher layers
feed it plain arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .calibration import ThroughputTable
from .composition import Expr, Par, Seq, Term
from .constraints import ResourceConstraint
from .errors import CompositionError, ModelError
from .operations import OperationStyle
from .patterns import AccessPattern
from .throughput import evaluate

__all__ = [
    "BATCH_VERSION",
    "BatchUnsupported",
    "BatchChoice",
    "evaluate_many",
    "estimate_many",
    "advise_many",
    "solve_pipeline_group",
    "expr_shape",
]

#: Semantic version of the batched evaluation strategy.  Folded into
#: the calibration/measurement cache keys (see
#: :func:`repro.machines.measure.measurement_cache_key`) so disk
#: entries written under one batching semantics can never be served to
#: a process running another.
BATCH_VERSION = "1"


class BatchUnsupported(ModelError):
    """A query falls outside the vectorized path's envelope.

    Raised internally (and caught internally) to route individual
    lanes to the scalar oracle; it never escapes the public functions.
    Mirrors the fastpath discipline: the batch path refuses rather
    than approximates.
    """


# -- expression shape grouping -------------------------------------------------


def expr_shape(expr: Expr) -> Tuple:
    """The tree structure of an expression with leaves erased.

    Two expressions with equal shapes fold through an identical
    sequence of min / harmonic / lookup operations, differing only in
    leaf rates — exactly the property that lets them share one
    vectorized evaluation.
    """
    if isinstance(expr, Term):
        return ("T",)
    if isinstance(expr, Par):
        return ("P", tuple(expr_shape(part) for part in expr.parts))
    if isinstance(expr, Seq):
        return ("S", tuple(expr_shape(part) for part in expr.parts))
    raise BatchUnsupported(f"cannot batch expression node {expr!r}")


def _leaves(expr: Expr, out: List[Term]) -> None:
    """Collect leaf terms in depth-first order (the fold's gather order)."""
    if isinstance(expr, Term):
        out.append(expr)
        return
    if isinstance(expr, (Par, Seq)):
        for part in expr.parts:
            _leaves(part, out)
        return
    raise BatchUnsupported(f"cannot batch expression node {expr!r}")


def _fold(shape: Tuple, columns: List[np.ndarray], cursor: List[int]) -> np.ndarray:
    """Vectorized Section 3.3 fold over one shape group.

    ``columns[i]`` holds leaf ``i``'s rate across lanes (depth-first
    leaf order); ``cursor`` tracks consumption so nested folds pull
    the right columns.  Each operation mirrors the scalar evaluator:

    * ``min(children, key=mbps)`` becomes successive ``np.minimum``
      (exact: min of floats is order-independent);
    * ``sum(1.0 / child for child in children)`` becomes an explicit
      left-to-right accumulation from 0.0 (``0.0 + x == x`` exactly,
      so the association matches Python's ``sum``);
    * the harmonic rate is ``1.0 / inverse``, as in the scalar code.
    """
    tag = shape[0]
    if tag == "T":
        column = columns[cursor[0]]
        cursor[0] += 1
        return column
    children = [_fold(child, columns, cursor) for child in shape[1]]
    if tag == "P":
        rate = children[0]
        for child in children[1:]:
            rate = np.minimum(rate, child)
        return rate
    # Sequential: the scalar evaluator raises on a nonpositive child;
    # those lanes were already routed to the scalar oracle, so every
    # remaining lane divides by strictly positive rates.
    inverse = np.zeros_like(children[0])
    for child in children:
        inverse = inverse + 1.0 / child
    return 1.0 / inverse


@dataclass
class _ShapeGroup:
    shape: Tuple
    lanes: List[int]
    rate_rows: List[List[float]]


def evaluate_many(
    exprs: Sequence[Expr],
    table: ThroughputTable,
    constraints: Sequence[ResourceConstraint] = (),
    validate: bool = True,
) -> List[float]:
    """Constrained throughputs of many expressions under one table.

    Bit-identical to
    ``[evaluate(e, table, constraints, validate).mbps for e in exprs]``
    — including raising the first error that loop would raise —
    while folding shape-mates as array operations.
    """
    out: List[Optional[float]] = [None] * len(exprs)
    fallback: List[int] = []
    groups: Dict[Tuple, _ShapeGroup] = {}

    validated: Dict[Expr, bool] = {}
    gathered: Dict[Expr, Tuple[Tuple, List[float]]] = {}

    for index, expr in enumerate(exprs):
        try:
            if expr not in gathered:
                if validate and expr not in validated:
                    expr.validate()
                    validated[expr] = True
                shape = expr_shape(expr)
                terms: List[Term] = []
                _leaves(expr, terms)
                rates = [table.lookup(term.transfer) for term in terms]
                if any(rate <= 0.0 for rate in rates):
                    # The scalar evaluator's zero-throughput ModelError
                    # domain (or a legal nonpositive Par result): let
                    # the oracle decide, lane by lane.
                    raise BatchUnsupported("nonpositive leaf rate")
                gathered[expr] = (shape, rates)
            shape, rates = gathered[expr]
        except Exception:
            fallback.append(index)
            continue
        group = groups.setdefault(shape, _ShapeGroup(shape, [], []))
        group.lanes.append(index)
        group.rate_rows.append(rates)

    limits = [constraint.limit(table) for constraint in constraints]
    for group in groups.values():
        columns = [
            np.asarray(column, dtype=np.float64)
            for column in zip(*group.rate_rows)
        ]
        capped = _fold(group.shape, columns, [0])
        for limit in limits:
            capped = np.where(limit < capped, limit, capped)
        for lane, value in zip(group.lanes, capped):
            out[lane] = float(value)

    # Scalar oracle for the rest, in input order: the first failing
    # lane raises exactly what the plain loop's first failure would.
    for index in sorted(fallback):
        out[index] = evaluate(
            exprs[index], table, constraints=constraints, validate=validate
        ).mbps
    return [value for value in out if value is not None]


# -- model-level batched queries ----------------------------------------------

Query = Tuple[AccessPattern, AccessPattern, Union[OperationStyle, str]]


@dataclass(frozen=True)
class BatchChoice:
    """The batched advisor's pick for one ``xQy`` pair."""

    style: OperationStyle
    mbps: float


def estimate_many(model, queries: Sequence[Query]) -> List[float]:
    """Throughput estimates for many ``(x, y, style)`` queries.

    Bit-identical to
    ``[model.estimate(x, y, style).mbps for x, y, style in queries]``,
    including the error the loop's first failing query would raise.
    Duplicate queries are classified and built once.
    """
    exprs: List[Optional[Expr]] = []
    built: Dict[Tuple, Optional[Expr]] = {}
    for x, y, style in queries:
        key = (x, y, style if isinstance(style, str) else style.value)
        if key not in built:
            try:
                built[key] = model.build(x, y, style)
            except Exception:
                built[key] = None
        exprs.append(built[key])

    good = [expr for expr in exprs if expr is not None]
    values = iter(
        evaluate_many(good, model.table, constraints=tuple(model.constraints))
    )
    out: List[float] = []
    for expr, (x, y, style) in zip(exprs, queries):
        if expr is None:
            # Canonical error path: rebuild through the scalar facade.
            out.append(model.estimate(x, y, style).mbps)
        else:
            out.append(next(values))
    return out


def advise_many(
    model, pairs: Sequence[Tuple[AccessPattern, AccessPattern]]
) -> List[BatchChoice]:
    """Batched style advisor: the faster style for each ``xQy`` pair.

    Agrees with :meth:`repro.core.model.CopyTransferModel.choose` on
    both the winning style (ties broken in ``OperationStyle``
    declaration order, like the scalar advisor's ``max``) and the
    winning throughput, bit for bit.
    """
    feasible: List[Tuple[int, OperationStyle, Expr]] = []
    for index, (x, y) in enumerate(pairs):
        for style in OperationStyle:
            try:
                expr = model.build(x, y, style)
            except CompositionError:
                continue
            feasible.append((index, style, expr))
    values = evaluate_many(
        [expr for __, __, expr in feasible],
        model.table,
        constraints=tuple(model.constraints),
    )
    best: Dict[int, BatchChoice] = {}
    for (index, style, __), mbps in zip(feasible, values):
        incumbent = best.get(index)
        if incumbent is None or mbps > incumbent.mbps:
            best[index] = BatchChoice(style, mbps)
    choices: List[BatchChoice] = []
    for index, (x, y) in enumerate(pairs):
        if index not in best:
            raise ModelError(f"no feasible implementation of {x}Q{y}")
        choices.append(best[index])
    return choices


# -- vectorized stage pipelines ------------------------------------------------


@dataclass(frozen=True)
class _PhaseStructure:
    """Shared structure of one phase across a lane group.

    ``resource_slots[i]`` maps stage ``i`` to a dense resource index
    (first-occurrence order), so stages sharing a slot serialize the
    way same-named resources do in the scalar pipeline.
    """

    chunk_bytes: int
    resource_slots: Tuple[int, ...]


def solve_pipeline_group(
    nbytes: int,
    structures: Sequence[Tuple[int, Tuple[int, ...]]],
    rates: Sequence[np.ndarray],
    overheads: Sequence[np.ndarray],
    startups: Sequence[np.ndarray],
) -> np.ndarray:
    """Total pipeline nanoseconds for a group of same-structure lanes.

    Args:
        nbytes: Payload size (shared by the group — part of its
            structure signature).
        structures: Per phase, ``(chunk_bytes, resource_slots)`` where
            ``resource_slots[i]`` is stage ``i``'s dense resource
            index within the phase.
        rates / overheads / startups: Per phase, float64 arrays of
            shape ``(n_stages, n_lanes)`` with each stage's
            ``rate_mbps``, ``chunk_overhead_ns`` and ``startup_ns``
            per lane.

    Returns:
        Shape ``(n_lanes,)`` array: the sum over phases of each
        phase's pipeline finish time, accumulated in phase order —
        exactly the scalar runtime's ``total_ns += result.ns`` loop.

    The inner recurrence replicates
    :meth:`repro.runtime.stages.StagePipeline.run` operation for
    operation (max, then ``size/rate*1000.0 + overhead`` with the
    startup added after, per chunk per stage), so each lane's result
    is bit-identical to running its stages through the scalar
    pipeline.
    """
    n_lanes = rates[0].shape[1] if rates else 0
    total = np.zeros(n_lanes, dtype=np.float64)
    for (chunk_bytes, slots), phase_rates, phase_overheads, phase_startups in zip(
        structures, rates, overheads, startups
    ):
        full_chunks, tail = divmod(nbytes, chunk_bytes)
        sizes = [chunk_bytes] * full_chunks + ([tail] if tail else [])
        n_slots = max(slots) + 1
        free = np.zeros((n_slots, n_lanes), dtype=np.float64)
        finish = np.zeros(n_lanes, dtype=np.float64)
        for chunk_index, size in enumerate(sizes):
            ready = np.zeros(n_lanes, dtype=np.float64)
            for position, slot in enumerate(slots):
                start = np.maximum(ready, free[slot])
                duration = size / phase_rates[position] * 1000.0
                duration = duration + phase_overheads[position]
                if chunk_index == 0:
                    duration = duration + phase_startups[position]
                ready = start + duration
                free[slot] = ready
            finish = ready
        total = total + finish
    return total
