"""Memory access patterns for the copy-transfer model.

The paper (Section 3.2) annotates every basic transfer with a *read*
pattern (typeset as a left subscript) and a *write* pattern (right
subscript).  Four kinds of pattern occur:

``0`` (fixed)
    The source or destination is a single fixed location, e.g. the head
    or tail of a network-interface FIFO.

``1`` (contiguous)
    A dense run of words, as produced by HPF *block* distributions.

``s`` for ``s >= 2`` (strided)
    Words (or short blocks of words) separated by a constant stride,
    as produced by *cyclic* and *block-cyclic* distributions.

``ω`` (indexed)
    An arbitrary word sequence given by an index array, as produced by
    irregular distributions and sparse-matrix code.  Reading the index
    array is part of the access and is charged against the transfer's
    throughput, never reported separately (Section 2.2).

:class:`AccessPattern` is an immutable value object; instances compare by
value and can key dictionaries (the calibration tables in
:mod:`repro.core.calibration` rely on this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .errors import PatternError

__all__ = [
    "PatternKind",
    "AccessPattern",
    "FIXED",
    "CONTIGUOUS",
    "INDEXED",
    "strided",
]


class PatternKind(enum.Enum):
    """The four access-pattern families of the copy-transfer model."""

    FIXED = "fixed"
    CONTIGUOUS = "contiguous"
    STRIDED = "strided"
    INDEXED = "indexed"

    def __repr__(self) -> str:
        return f"PatternKind.{self.name}"


@dataclass(frozen=True)
class AccessPattern:
    """An immutable memory access pattern.

    Build instances through the module-level constants and the
    :func:`strided` helper (or the equivalent classmethods) rather than
    calling the constructor directly:

    >>> from repro.core.patterns import CONTIGUOUS, INDEXED, strided
    >>> strided(64).subscript
    '64'
    >>> CONTIGUOUS.subscript
    '1'
    >>> INDEXED.subscript
    'w'

    Attributes:
        kind: Which of the four pattern families this is.
        stride: The constant word stride; only meaningful for
            ``PatternKind.STRIDED`` (``None`` otherwise).
        block: Number of consecutive words moved at each stride point
            (2 for complex numbers, 6 for 3-D tensors, per Section 2.2).
            Defaults to 1 and is only meaningful for strided patterns.
    """

    kind: PatternKind
    stride: Optional[int] = None
    block: int = 1

    def __post_init__(self) -> None:
        if self.kind is PatternKind.STRIDED:
            if self.stride is None or self.stride < 2:
                raise PatternError(
                    f"strided pattern needs an integer stride >= 2, got {self.stride!r}"
                )
            if self.block < 1 or self.block >= self.stride:
                raise PatternError(
                    f"block size must satisfy 1 <= block < stride, got "
                    f"block={self.block}, stride={self.stride}"
                )
        else:
            if self.stride is not None:
                raise PatternError(
                    f"{self.kind.value} pattern must not carry a stride"
                )
            if self.block != 1:
                raise PatternError(
                    f"{self.kind.value} pattern must not carry a block size"
                )

    # -- constructors -----------------------------------------------------

    @classmethod
    def fixed(cls) -> "AccessPattern":
        """The pattern ``0``: a single fixed location (FIFO port)."""
        return cls(PatternKind.FIXED)

    @classmethod
    def contiguous(cls) -> "AccessPattern":
        """The pattern ``1``: a dense run of words."""
        return cls(PatternKind.CONTIGUOUS)

    @classmethod
    def strided(cls, stride: int, block: int = 1) -> "AccessPattern":
        """The pattern ``s``: constant-stride access, optionally blocked."""
        return cls(PatternKind.STRIDED, stride=stride, block=block)

    @classmethod
    def indexed(cls) -> "AccessPattern":
        """The pattern ``ω``: accesses driven by an index array."""
        return cls(PatternKind.INDEXED)

    @classmethod
    def parse(cls, text: str) -> "AccessPattern":
        """Parse a subscript string back into a pattern.

        Accepts the paper's notation: ``"0"``, ``"1"``, a decimal stride
        such as ``"64"``, and ``"w"`` / ``"ω"`` / ``"omega"`` for indexed.
        A blocked stride is written ``"64x2"`` (stride 64, block 2).

        >>> AccessPattern.parse("64") == strided(64)
        True
        """
        text = text.strip()
        if text in ("w", "ω", "omega"):
            return cls.indexed()
        if text == "0":
            return cls.fixed()
        if text == "1":
            return cls.contiguous()
        if "x" in text:
            stride_text, __, block_text = text.partition("x")
            try:
                return cls.strided(int(stride_text), block=int(block_text))
            except ValueError as exc:
                raise PatternError(f"cannot parse pattern {text!r}") from exc
        try:
            return cls.strided(int(text))
        except ValueError as exc:
            raise PatternError(f"cannot parse pattern {text!r}") from exc

    # -- predicates --------------------------------------------------------

    @property
    def is_fixed(self) -> bool:
        return self.kind is PatternKind.FIXED

    @property
    def is_contiguous(self) -> bool:
        return self.kind is PatternKind.CONTIGUOUS

    @property
    def is_strided(self) -> bool:
        return self.kind is PatternKind.STRIDED

    @property
    def is_indexed(self) -> bool:
        return self.kind is PatternKind.INDEXED

    @property
    def is_memory_pattern(self) -> bool:
        """True for patterns that touch the memory system (not a FIFO)."""
        return not self.is_fixed

    @property
    def needs_addresses_on_wire(self) -> bool:
        """Whether remote stores with this pattern must ship addresses.

        Contiguous remote stores can be described by a base address and a
        length, so data-only network transfers suffice.  Strided and
        indexed remote stores require address-data pairs (Section 3.2,
        ``N_adp``).
        """
        return self.is_strided or self.is_indexed

    # -- presentation -------------------------------------------------------

    @property
    def subscript(self) -> str:
        """The ASCII subscript used in the paper's notation.

        Indexed renders as ``"w"`` (the paper's ω) so that operation names
        like ``wQw`` stay plain ASCII.
        """
        if self.is_fixed:
            return "0"
        if self.is_contiguous:
            return "1"
        if self.is_indexed:
            return "w"
        if self.block != 1:
            return f"{self.stride}x{self.block}"
        return str(self.stride)

    def __str__(self) -> str:
        return self.subscript

    def matches(self, other: "AccessPattern") -> bool:
        """Whether this pattern can feed ``other`` in a sequential chain.

        The paper's matching rule is exact equality of the intermediate
        pattern; ``matches`` exists as a named operation so the rule is
        easy to find and to extend.
        """
        return self == other


#: The pattern ``0``: a fixed location such as a network FIFO.
FIXED = AccessPattern.fixed()

#: The pattern ``1``: contiguous words.
CONTIGUOUS = AccessPattern.contiguous()

#: The pattern ``ω``: index-array driven accesses.
INDEXED = AccessPattern.indexed()


def strided(stride: int, block: int = 1) -> AccessPattern:
    """Shorthand for :meth:`AccessPattern.strided`."""
    return AccessPattern.strided(stride, block=block)
