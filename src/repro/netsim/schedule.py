"""Phase scheduling for all-to-all personalized communication.

Section 4.3 leans on a strong claim: "even dense patterns like the
complete exchange or personalized all-to-all communication can be
scheduled with minimal congestion on T3D tori of up to 1024 compute
nodes" (citing Hinrichs et al. [8]).  The collective runtime assumes
it; this module substantiates it.

An AAPC *schedule* splits the n·(n-1) flows of a complete exchange
into n-1 phases of one send and one receive per node.  Each phase is a
permutation, so the peak link load per phase is far below the load of
firing all flows at once.  Two classic phase families:

* **shift** — phase k sends ``i -> (i + k) mod n``; works for any n;
* **xor** — phase k sends ``i -> i XOR k``; needs n a power of two, and
  on power-of-two tori each phase is a coordinate-wise reflection with
  provably minimal link contention.

:func:`schedule_congestion` evaluates a schedule's worst per-phase
link load on a concrete topology, which is what the runtime's
``scheduled=True`` congestion assumption rests on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .topology import Topology

__all__ = [
    "aapc_phases_shift",
    "aapc_phases_xor",
    "schedule_congestion",
    "best_aapc_schedule",
    "partition_into_phases",
    "scheduled_congestion",
]

Flow = Tuple[int, int]
Phase = List[Flow]


def aapc_phases_shift(n_nodes: int) -> List[Phase]:
    """The shift schedule: phase k is the permutation ``i -> i + k``."""
    if n_nodes < 2:
        return []
    return [
        [(i, (i + k) % n_nodes) for i in range(n_nodes)]
        for k in range(1, n_nodes)
    ]


def aapc_phases_xor(n_nodes: int) -> List[Phase]:
    """The XOR schedule: phase k is the involution ``i -> i ^ k``.

    Requires a power-of-two node count; every phase is a perfect
    pairwise exchange, which dimension-order routing on power-of-two
    tori carries with minimal contention.
    """
    if n_nodes < 2:
        return []
    if n_nodes & (n_nodes - 1):
        raise ValueError(f"XOR schedule needs a power-of-two size, got {n_nodes}")
    return [
        [(i, i ^ k) for i in range(n_nodes)] for k in range(1, n_nodes)
    ]


def schedule_congestion(
    topology: Topology, phases: Sequence[Phase]
) -> Tuple[float, List[float]]:
    """Worst and per-phase link loads of a schedule on a topology.

    Returns ``(max_over_phases, per_phase_loads)``.  A schedule is
    "minimal congestion" in the paper's sense when the max stays at a
    small constant while the unscheduled pattern's worst-link load
    grows with machine size.
    """
    per_phase = [topology.max_link_congestion(phase) for phase in phases]
    return (max(per_phase) if per_phase else 0, per_phase)


def best_aapc_schedule(topology: Topology) -> Tuple[str, float, List[Phase]]:
    """Pick the lower-congestion schedule family for this topology.

    Returns ``(name, worst_phase_congestion, phases)``.
    """
    n = topology.n_nodes
    candidates: Dict[str, List[Phase]] = {"shift": aapc_phases_shift(n)}
    if n >= 2 and not (n & (n - 1)):
        candidates["xor"] = aapc_phases_xor(n)
    scored = {
        name: schedule_congestion(topology, phases)[0]
        for name, phases in candidates.items()
    }
    winner = min(scored, key=scored.get)
    return winner, scored[winner], candidates[winner]


def _is_complete_exchange(flows: Sequence[Flow]) -> int:
    """If ``flows`` is an AAPC over nodes 0..n-1, return n, else 0."""
    if not flows:
        return 0
    nodes = {node for flow in flows for node in flow}
    n = len(nodes)
    if nodes != set(range(n)):
        return 0
    if len(flows) != n * (n - 1) or len(set(flows)) != len(flows):
        return 0
    return n


def partition_into_phases(flows: Sequence[Flow]) -> List[Phase]:
    """Split flows into contention-free phases (one send/recv per node).

    Complete exchanges use the shift schedule; any other pattern is
    partitioned greedily — each flow goes into the first phase where
    both its endpoints are still free, which for permutation-like
    patterns (shifts, halo exchanges) yields one or two phases.
    """
    n = _is_complete_exchange(flows)
    if n:
        return aapc_phases_shift(n)
    phases: List[Phase] = []
    sources: List[set] = []
    destinations: List[set] = []
    for src, dst in flows:
        if src == dst:
            continue
        for index, phase in enumerate(phases):
            if src not in sources[index] and dst not in destinations[index]:
                phase.append((src, dst))
                sources[index].add(src)
                destinations[index].add(dst)
                break
        else:
            phases.append([(src, dst)])
            sources.append({src})
            destinations.append({dst})
    return phases


#: Cache of scheduled-congestion results: the per-flow routing work is
#: the slow part and patterns repeat across styles and benches.
_SCHEDULED_CACHE: Dict = {}


def scheduled_congestion(topology: Topology, flows: Sequence[Flow]) -> float:
    """Worst per-phase link congestion of the phase-scheduled pattern."""
    key = (
        type(topology).__name__,
        topology.dims,
        topology.wrap,
        topology.routing_key(),
        tuple(sorted(set(flows))),
    )
    cached = _SCHEDULED_CACHE.get(key)
    if cached is None:
        phases = partition_into_phases(flows)
        cached, __ = schedule_congestion(topology, phases)
        _SCHEDULED_CACHE[key] = cached
    return cached
