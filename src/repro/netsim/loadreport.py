"""Link-load analysis: where a traffic pattern actually congests.

``Topology.max_link_congestion`` answers "how bad"; this module
answers "where and why" — per-dimension load statistics and the worst
links, which is how one sees the Paragon's aspect-ratio problem
(Section 4.3) concretely: on a 4x16 mesh the column dimension's links
carry several times the row dimension's load under an all-to-all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .topology import Link, Topology

__all__ = ["DimensionLoad", "LinkLoadReport", "link_load_report"]

Flow = Tuple[int, int]


@dataclass(frozen=True)
class DimensionLoad:
    """Aggregate load of one topology dimension."""

    dim: int
    max_load: int
    mean_load: float
    links_used: int


@dataclass(frozen=True)
class LinkLoadReport:
    """Where a traffic pattern loads the network.

    Attributes:
        total_hops: Sum of route lengths over all flows.
        max_load: The worst single link's flow count (the congestion).
        hottest: The most-loaded links, worst first.
        by_dimension: Per-dimension aggregates.
    """

    total_hops: int
    max_load: int
    hottest: Tuple[Tuple[Link, int], ...]
    by_dimension: Tuple[DimensionLoad, ...]

    def render(self) -> str:
        lines = [
            f"total hops: {self.total_hops}, worst link load: {self.max_load}"
        ]
        for dimension in self.by_dimension:
            lines.append(
                f"  dim {dimension.dim}: max {dimension.max_load}, "
                f"mean {dimension.mean_load:.1f} over "
                f"{dimension.links_used} links"
            )
        for link, load in self.hottest:
            lines.append(
                f"  hot: {link.src}->{link.dst} (dim {link.dim}) carries {load}"
            )
        return "\n".join(lines)


def link_load_report(
    topology: Topology,
    flows: Sequence[Flow],
    hottest: int = 3,
) -> LinkLoadReport:
    """Route ``flows`` and summarize the resulting link loads."""
    loads: Dict[Link, int] = topology.link_loads(flows)
    total_hops = sum(loads.values())
    max_load = max(loads.values()) if loads else 0

    by_dimension: List[DimensionLoad] = []
    for dim in range(len(topology.dims)):
        dim_loads = [load for link, load in loads.items() if link.dim == dim]
        if dim_loads:
            by_dimension.append(
                DimensionLoad(
                    dim=dim,
                    max_load=max(dim_loads),
                    mean_load=sum(dim_loads) / len(dim_loads),
                    links_used=len(dim_loads),
                )
            )
        else:
            by_dimension.append(
                DimensionLoad(dim=dim, max_load=0, mean_load=0.0, links_used=0)
            )

    worst = sorted(loads.items(), key=lambda item: -item[1])[:hottest]
    return LinkLoadReport(
        total_hops=total_hops,
        max_load=max_load,
        hottest=tuple(worst),
        by_dimension=tuple(by_dimension),
    )
