"""Network bandwidth model: payload rates under congestion.

Section 4.3's view of the network is deliberately coarse: the raw link
speed exceeds what endpoints can use, so all that matters is

* the sustainable *payload* rate of a link for each framing mode —
  data-only (``Nd``) blocks, or address-data pairs (``Nadp``) where a
  remote-store address accompanies every word, roughly halving the
  useful rate;
* an endpoint processing cap per mode (the T3D annex handles incoming
  address-data pairs no faster than ~62 MB/s even on an idle network);
* the *congestion* factor: how many flows share the worst link.  "For
  a throughput oriented model it is irrelevant whether the data are
  multiplexed at a per flit or a per message level."

Two machine quirks feed the congestion factor (both from Section 4.3):
on the T3D two adjacent nodes share one network port, so the minimal
congestion is two unless half the processors idle; on the Paragon,
skewed mesh aspect ratios raise congestion for some patterns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import inf
from typing import Iterable, Optional, Tuple

from .topology import Topology

__all__ = ["FramingMode", "NetworkConfig", "NetworkModel"]


class FramingMode(enum.Enum):
    """What travels on the wire alongside the payload words."""

    DATA_ONLY = "data"
    ADDRESS_DATA_PAIRS = "adp"


@dataclass(frozen=True)
class NetworkConfig:
    """Bandwidth parameters of one machine's interconnect.

    Attributes:
        raw_link_mbps: Hardware peak on the wires (reported for
            context; not used in rate computations).
        payload_data_mbps: Sustained payload rate of one link for
            data-only framing at congestion one.
        payload_adp_mbps: Ditto for address-data-pair framing.
        endpoint_data_cap_mbps: Per-node injection/extraction cap for
            data-only transfers (``inf`` if the wire always binds).
        endpoint_adp_cap_mbps: Ditto for address-data pairs.
        port_sharing: Nodes sharing one network access point (2 on the
            T3D).
        default_congestion: The congestion the machine's applications
            typically see; the paper's bold Table 4 column (2 for both
            machines).
    """

    raw_link_mbps: float = 300.0
    payload_data_mbps: float = 140.0
    payload_adp_mbps: float = 78.0
    endpoint_data_cap_mbps: float = inf
    endpoint_adp_cap_mbps: float = inf
    port_sharing: int = 1
    default_congestion: int = 2


class NetworkModel:
    """Payload bandwidth per flow for a framing mode and congestion.

    >>> from repro.machines import t3d
    >>> net = t3d().network_model()
    >>> round(net.rate(FramingMode.DATA_ONLY, congestion=2))
    70
    """

    def __init__(self, config: NetworkConfig, topology: Optional[Topology] = None):
        self.config = config
        self.topology = topology

    def rate(
        self,
        mode: FramingMode,
        congestion: Optional[float] = None,
    ) -> float:
        """Per-flow payload bandwidth in MB/s.

        Args:
            mode: The framing mode.
            congestion: Worst-link sharing factor; defaults to the
                machine's typical value.
        """
        if congestion is None:
            congestion = self.config.default_congestion
        if congestion < 1:
            raise ValueError(f"congestion must be >= 1, got {congestion}")
        if mode is FramingMode.DATA_ONLY:
            wire = self.config.payload_data_mbps
            cap = self.config.endpoint_data_cap_mbps
        else:
            wire = self.config.payload_adp_mbps
            cap = self.config.endpoint_adp_cap_mbps
        return min(cap, wire / congestion)

    def congestion_for(
        self,
        flows: Iterable[Tuple[int, int]],
        active_nodes: Optional[int] = None,
    ) -> float:
        """Congestion of a traffic pattern on this machine's topology.

        Combines the worst link load (from dimension-order routing)
        with the access-point sharing quirk: with port sharing ``s``
        and all nodes active, congestion cannot drop below ``s``.

        Args:
            flows: The (src, dst) traffic pattern.
            active_nodes: How many nodes participate (defaults to all);
                used to decide whether port sharing binds.
        """
        if self.topology is None:
            raise ValueError("this network model has no topology attached")
        flows = list(flows)
        link_congestion = self.topology.max_link_congestion(flows)
        floor = 1
        if self.config.port_sharing > 1:
            if active_nodes is None or active_nodes > self.topology.n_nodes // 2:
                floor = self.config.port_sharing
        return float(max(link_congestion, floor, 1))

    def rate_for_pattern(
        self,
        mode: FramingMode,
        flows: Iterable[Tuple[int, int]],
        active_nodes: Optional[int] = None,
    ) -> float:
        """Per-flow payload bandwidth under a concrete traffic pattern."""
        congestion = self.congestion_for(flows, active_nodes=active_nodes)
        return self.rate(mode, congestion=congestion)
