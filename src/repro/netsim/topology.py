"""Interconnect topologies: k-ary meshes and tori.

Both of the paper's machines use "a simple mesh topology with fast
links" (Section 4.3): the T3D a 3-D torus, the Paragon a 2-D mesh
(whose unfortunate aspect ratios, e.g. 112x16, can cause congestion).
Dimension-order routing is used throughout, as on the real machines.

A *flow* is a (source, destination) node pair; :meth:`Topology.link_loads`
routes a set of flows and counts how many cross each directed link,
from which the paper's *congestion* figure — how much more data the
worst link carries than it can support at peak speed — follows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import FaultError

__all__ = ["Link", "Topology", "Mesh", "Torus"]

Coordinate = Tuple[int, ...]
Flow = Tuple[int, int]


@dataclass(frozen=True)
class Link:
    """A directed physical link between neighbouring nodes.

    ``dim`` is the dimension the link runs along; ``positive`` its
    direction; ``src``/``dst`` the node ids it connects.
    """

    src: int
    dst: int
    dim: int
    positive: bool


class Topology:
    """Base class: an n-dimensional grid with dimension-order routing."""

    def __init__(self, dims: Sequence[int], wraparound: bool) -> None:
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"invalid dimensions {dims!r}")
        self.dims = tuple(dims)
        self.wraparound = wraparound

    @property
    def n_nodes(self) -> int:
        product = 1
        for d in self.dims:
            product *= d
        return product

    # -- node naming -------------------------------------------------------

    def coordinates(self, node: int) -> Coordinate:
        """Node id -> grid coordinate (row-major, last dim fastest)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range 0..{self.n_nodes - 1}")
        coordinate: List[int] = []
        remainder = node
        for size in reversed(self.dims):
            coordinate.append(remainder % size)
            remainder //= size
        return tuple(reversed(coordinate))

    def node_id(self, coordinate: Coordinate) -> int:
        if len(coordinate) != len(self.dims):
            raise ValueError(
                f"coordinate {coordinate!r} has wrong rank for dims {self.dims}"
            )
        node = 0
        for position, size in zip(coordinate, self.dims):
            if not 0 <= position < size:
                raise ValueError(f"coordinate {coordinate!r} out of bounds")
            node = node * size + position
        return node

    # -- routing ------------------------------------------------------------

    def _steps(self, start: int, goal: int, size: int) -> Iterable[Tuple[int, int, bool]]:
        """Single-dimension hops from start to goal: (from, to, positive)."""
        if start == goal:
            return
        if self.wraparound:
            forward = (goal - start) % size
            backward = (start - goal) % size
            positive = forward <= backward
        else:
            positive = goal > start
        position = start
        while position != goal:
            nxt = (position + (1 if positive else -1)) % size
            yield position, nxt, positive
            position = nxt

    def route(
        self,
        src: int,
        dst: int,
        avoid: Optional[FrozenSet[Tuple[int, int]]] = None,
    ) -> List[Link]:
        """Dimension-order route as a list of directed links.

        Args:
            avoid: Directed ``(src, dst)`` node pairs whose links must
                not be used (failed hardware).  When the dimension-order
                route would cross one, the route falls back to the
                shortest detour around the failed links; an unreachable
                destination raises :class:`~repro.core.errors.FaultError`.
        """
        src_coord = list(self.coordinates(src))
        dst_coord = self.coordinates(dst)
        links: List[Link] = []
        for dim in range(len(self.dims)):
            for here, there, positive in self._steps(
                src_coord[dim], dst_coord[dim], self.dims[dim]
            ):
                from_coord = tuple(src_coord[:dim] + [here] + src_coord[dim + 1 :])
                to_coord = tuple(src_coord[:dim] + [there] + src_coord[dim + 1 :])
                links.append(
                    Link(self.node_id(from_coord), self.node_id(to_coord), dim, positive)
                )
            src_coord[dim] = dst_coord[dim]
        if avoid and any((link.src, link.dst) in avoid for link in links):
            return self._route_avoiding(src, dst, avoid)
        return links

    def neighbour_links(self, node: int) -> List[Link]:
        """The directed links leaving ``node``, in deterministic order."""
        coord = self.coordinates(node)
        links: List[Link] = []
        for dim, size in enumerate(self.dims):
            if size == 1:
                continue
            for positive in (True, False):
                step = 1 if positive else -1
                neighbour = coord[dim] + step
                if self.wraparound:
                    neighbour %= size
                elif not 0 <= neighbour < size:
                    continue
                if self.wraparound and size == 2 and not positive:
                    # Both directions reach the same neighbour.
                    continue
                to_coord = coord[:dim] + (neighbour,) + coord[dim + 1 :]
                links.append(Link(node, self.node_id(to_coord), dim, positive))
        return links

    def _route_avoiding(
        self, src: int, dst: int, avoid: FrozenSet[Tuple[int, int]]
    ) -> List[Link]:
        """Shortest route around failed links (deterministic BFS)."""
        parents: Dict[int, Link] = {}
        frontier = deque([src])
        seen = {src}
        while frontier:
            here = frontier.popleft()
            if here == dst:
                break
            for link in self.neighbour_links(here):
                if (link.src, link.dst) in avoid or link.dst in seen:
                    continue
                seen.add(link.dst)
                parents[link.dst] = link
                frontier.append(link.dst)
        if dst not in seen:
            raise FaultError(
                f"no route from node {src} to node {dst}: failed links "
                f"disconnect the destination"
            )
        path: List[Link] = []
        node = dst
        while node != src:
            link = parents[node]
            path.append(link)
            node = link.src
        path.reverse()
        return path

    def routing_key(self) -> Tuple:
        """Hashable token identifying this topology's routing behaviour.

        Fault-degraded topologies override this so congestion caches
        keyed on ``(dims, wraparound)`` never mix healthy and degraded
        routing results.
        """
        return ()

    def link_loads(self, flows: Iterable[Flow]) -> Dict[Link, int]:
        """How many flows traverse each directed link."""
        loads: Dict[Link, int] = {}
        for src, dst in flows:
            if src == dst:
                continue
            for link in self.route(src, dst):
                loads[link] = loads.get(link, 0) + 1
        return loads

    def max_link_congestion(self, flows: Iterable[Flow]) -> int:
        """The worst link load (the paper's congestion figure)."""
        loads = self.link_loads(flows)
        return max(loads.values()) if loads else 0

    def all_links(self) -> List[Link]:
        links = []
        for node in range(self.n_nodes):
            coord = self.coordinates(node)
            for dim, size in enumerate(self.dims):
                for positive in (True, False):
                    step = 1 if positive else -1
                    neighbour = coord[dim] + step
                    if self.wraparound:
                        neighbour %= size
                    elif not 0 <= neighbour < size:
                        continue
                    if size == 1 or (self.wraparound and size == 2 and not positive):
                        # Avoid double-counting the single wrap link.
                        continue
                    to_coord = coord[:dim] + (neighbour,) + coord[dim + 1 :]
                    links.append(Link(node, self.node_id(to_coord), dim, positive))
        return links


class Mesh(Topology):
    """An n-dimensional mesh without wraparound (Intel Paragon: 2-D)."""

    def __init__(self, *dims: int) -> None:
        super().__init__(dims, wraparound=False)

    def __repr__(self) -> str:
        return f"Mesh{self.dims}"


class Torus(Topology):
    """An n-dimensional torus (Cray T3D: 3-D)."""

    def __init__(self, *dims: int) -> None:
        super().__init__(dims, wraparound=True)

    def __repr__(self) -> str:
        return f"Torus{self.dims}"
