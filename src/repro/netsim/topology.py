"""Interconnect topologies: k-ary meshes and tori.

Both of the paper's machines use "a simple mesh topology with fast
links" (Section 4.3): the T3D a 3-D torus, the Paragon a 2-D mesh
(whose unfortunate aspect ratios, e.g. 112x16, can cause congestion).
Dimension-order routing is used throughout, as on the real machines.

Wraparound is a *per-dimension* property: a classic torus wraps every
dimension, a mesh none, and modern machines mix — a Cray XE/Gemini
partition is typically a torus in X and Z but may be left open in Y,
and its Y links carry half the bandwidth of X/Z ones
(:class:`GeminiTorus`).  :meth:`Topology.link_weight` exposes the
per-link relative capacity so congestion accounting can weight loads;
the base grid keeps every link at weight one.

A *flow* is a (source, destination) node pair; :meth:`Topology.link_loads`
routes a set of flows and counts how many cross each directed link,
from which the paper's *congestion* figure — how much more data the
worst link carries than it can support at peak speed — follows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import FaultError

__all__ = ["Link", "Topology", "Mesh", "Torus", "GeminiTorus"]

Coordinate = Tuple[int, ...]
Flow = Tuple[int, int]

#: Wraparound spec: one bool for every dimension, or a single bool
#: applied to all of them.
WrapSpec = Union[bool, Sequence[bool]]


@dataclass(frozen=True)
class Link:
    """A directed physical link between neighbouring nodes.

    ``dim`` is the dimension the link runs along; ``positive`` its
    direction; ``src``/``dst`` the node ids it connects.
    """

    src: int
    dst: int
    dim: int
    positive: bool


class Topology:
    """Base class: an n-dimensional grid with dimension-order routing."""

    def __init__(self, dims: Sequence[int], wraparound: WrapSpec) -> None:
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"invalid dimensions {dims!r}")
        self.dims = tuple(dims)
        if isinstance(wraparound, bool):
            self.wrap: Tuple[bool, ...] = (wraparound,) * len(self.dims)
        else:
            wrap = tuple(bool(w) for w in wraparound)
            if len(wrap) != len(self.dims):
                raise ValueError(
                    f"wraparound {wraparound!r} has wrong rank for "
                    f"dims {self.dims}"
                )
            self.wrap = wrap

    @property
    def wraparound(self) -> bool:
        """True when every dimension wraps (the classic torus case).

        Kept for callers that only distinguish mesh from torus; code
        that routes must consult the per-dimension :attr:`wrap` tuple.
        """
        return all(self.wrap)

    @property
    def n_nodes(self) -> int:
        product = 1
        for d in self.dims:
            product *= d
        return product

    # -- node naming -------------------------------------------------------

    def coordinates(self, node: int) -> Coordinate:
        """Node id -> grid coordinate (row-major, last dim fastest)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range 0..{self.n_nodes - 1}")
        coordinate: List[int] = []
        remainder = node
        for size in reversed(self.dims):
            coordinate.append(remainder % size)
            remainder //= size
        return tuple(reversed(coordinate))

    def node_id(self, coordinate: Coordinate) -> int:
        if len(coordinate) != len(self.dims):
            raise ValueError(
                f"coordinate {coordinate!r} has wrong rank for dims {self.dims}"
            )
        node = 0
        for position, size in zip(coordinate, self.dims):
            if not 0 <= position < size:
                raise ValueError(f"coordinate {coordinate!r} out of bounds")
            node = node * size + position
        return node

    # -- routing ------------------------------------------------------------

    def _steps(
        self, start: int, goal: int, size: int, wrap: bool
    ) -> Iterable[Tuple[int, int, bool]]:
        """Single-dimension hops from start to goal: (from, to, positive)."""
        if start == goal:
            return
        if wrap:
            forward = (goal - start) % size
            backward = (start - goal) % size
            positive = forward <= backward
        else:
            positive = goal > start
        position = start
        while position != goal:
            nxt = (position + (1 if positive else -1)) % size
            yield position, nxt, positive
            position = nxt

    def route(
        self,
        src: int,
        dst: int,
        avoid: Optional[FrozenSet[Tuple[int, int]]] = None,
    ) -> List[Link]:
        """Dimension-order route as a list of directed links.

        Args:
            avoid: Directed ``(src, dst)`` node pairs whose links must
                not be used (failed hardware).  When the dimension-order
                route would cross one, the route falls back to the
                shortest detour around the failed links; an unreachable
                destination raises :class:`~repro.core.errors.FaultError`.
        """
        src_coord = list(self.coordinates(src))
        dst_coord = self.coordinates(dst)
        links: List[Link] = []
        for dim in range(len(self.dims)):
            for here, there, positive in self._steps(
                src_coord[dim], dst_coord[dim], self.dims[dim], self.wrap[dim]
            ):
                from_coord = tuple(src_coord[:dim] + [here] + src_coord[dim + 1 :])
                to_coord = tuple(src_coord[:dim] + [there] + src_coord[dim + 1 :])
                links.append(
                    Link(self.node_id(from_coord), self.node_id(to_coord), dim, positive)
                )
            src_coord[dim] = dst_coord[dim]
        if avoid and any((link.src, link.dst) in avoid for link in links):
            return self._route_avoiding(src, dst, avoid)
        return links

    def neighbour_links(self, node: int) -> List[Link]:
        """The directed links leaving ``node``, in deterministic order."""
        coord = self.coordinates(node)
        links: List[Link] = []
        for dim, size in enumerate(self.dims):
            if size == 1:
                continue
            wrap = self.wrap[dim]
            for positive in (True, False):
                step = 1 if positive else -1
                neighbour = coord[dim] + step
                if wrap:
                    neighbour %= size
                elif not 0 <= neighbour < size:
                    continue
                if wrap and size == 2 and not positive:
                    # Both directions reach the same neighbour.
                    continue
                to_coord = coord[:dim] + (neighbour,) + coord[dim + 1 :]
                links.append(Link(node, self.node_id(to_coord), dim, positive))
        return links

    def _route_avoiding(
        self, src: int, dst: int, avoid: FrozenSet[Tuple[int, int]]
    ) -> List[Link]:
        """Shortest route around failed links (deterministic BFS)."""
        parents: Dict[int, Link] = {}
        frontier = deque([src])
        seen = {src}
        while frontier:
            here = frontier.popleft()
            if here == dst:
                break
            for link in self.neighbour_links(here):
                if (link.src, link.dst) in avoid or link.dst in seen:
                    continue
                seen.add(link.dst)
                parents[link.dst] = link
                frontier.append(link.dst)
        if dst not in seen:
            raise FaultError(
                f"no route from node {src} to node {dst}: failed links "
                f"disconnect the destination"
            )
        path: List[Link] = []
        node = dst
        while node != src:
            link = parents[node]
            path.append(link)
            node = link.src
        path.reverse()
        return path

    def link_weight(self, link: Link) -> float:
        """Relative capacity of one link (1.0 = a full-speed link).

        Anisotropic interconnects override this; congestion accounting
        divides a link's flow count by its weight, so a half-capacity
        link carrying ``L`` flows congests like a full link carrying
        ``2 L``.
        """
        return 1.0

    def routing_key(self) -> Tuple:
        """Hashable token identifying this topology's routing behaviour.

        Fault-degraded and anisotropic topologies override this so
        congestion caches keyed on ``(dims, wrap)`` never mix results
        from topologies that route or weight links differently.
        """
        return ()

    def link_loads(self, flows: Iterable[Flow]) -> Dict[Link, int]:
        """How many flows traverse each directed link."""
        loads: Dict[Link, int] = {}
        for src, dst in flows:
            if src == dst:
                continue
            for link in self.route(src, dst):
                loads[link] = loads.get(link, 0) + 1
        return loads

    def max_link_congestion(self, flows: Iterable[Flow]) -> float:
        """The worst weighted link load (the paper's congestion figure)."""
        loads = self.link_loads(flows)
        if not loads:
            return 0
        return max(
            load / self.link_weight(link) for link, load in loads.items()
        )

    def all_links(self) -> List[Link]:
        links = []
        for node in range(self.n_nodes):
            coord = self.coordinates(node)
            for dim, size in enumerate(self.dims):
                wrap = self.wrap[dim]
                for positive in (True, False):
                    step = 1 if positive else -1
                    neighbour = coord[dim] + step
                    if wrap:
                        neighbour %= size
                    elif not 0 <= neighbour < size:
                        continue
                    if size == 1 or (wrap and size == 2 and not positive):
                        # Avoid double-counting the single wrap link.
                        continue
                    to_coord = coord[:dim] + (neighbour,) + coord[dim + 1 :]
                    links.append(Link(node, self.node_id(to_coord), dim, positive))
        return links


class Mesh(Topology):
    """An n-dimensional mesh without wraparound (Intel Paragon: 2-D)."""

    def __init__(self, *dims: int) -> None:
        super().__init__(dims, wraparound=False)

    def __repr__(self) -> str:
        return f"Mesh{self.dims}"


class Torus(Topology):
    """An n-dimensional torus (Cray T3D: 3-D)."""

    def __init__(self, *dims: int) -> None:
        super().__init__(dims, wraparound=True)

    def __repr__(self) -> str:
        return f"Torus{self.dims}"


class GeminiTorus(Topology):
    """A Cray XE/Gemini-class 3-D torus with anisotropic links.

    Gemini routers gang two link channels in the X and Z dimensions but
    only one in Y, so a Y link sustains roughly half the bandwidth of
    an X or Z link; dense patterns congest on the Y dimension first.
    ``dim_capacity`` carries those relative capacities and
    :meth:`link_weight` feeds them into the (weighted) congestion
    accounting.  Wraparound is per dimension: full partitions close the
    torus everywhere, but small or oddly-cabled ones may leave a
    dimension open (``wrap=(True, False, True)``).
    """

    #: Gemini's relative per-dimension link capacities (X, Y, Z).
    DEFAULT_CAPACITY: Tuple[float, ...] = (1.0, 0.5, 1.0)

    def __init__(
        self,
        *dims: int,
        dim_capacity: Optional[Sequence[float]] = None,
        wrap: WrapSpec = True,
    ) -> None:
        super().__init__(dims, wraparound=wrap)
        if dim_capacity is None:
            dim_capacity = self.DEFAULT_CAPACITY[: len(self.dims)]
        capacity = tuple(float(c) for c in dim_capacity)
        if len(capacity) != len(self.dims):
            raise ValueError(
                f"dim_capacity {dim_capacity!r} has wrong rank for "
                f"dims {self.dims}"
            )
        if any(c <= 0.0 for c in capacity):
            raise ValueError(f"dim_capacity must be positive, got {capacity}")
        self.dim_capacity = capacity

    def link_weight(self, link: Link) -> float:
        return self.dim_capacity[link.dim]

    def routing_key(self) -> Tuple:
        return ("gemini", self.dim_capacity, self.wrap)

    def __repr__(self) -> str:
        return f"GeminiTorus{self.dims}"
