"""Communication traffic patterns of the paper's workloads.

Each generator returns a list of (source, destination) node-id flows,
which the topology routes to derive link loads and congestion.  The
three application kernels of Section 6 map onto these:

* the 2-D FFT / air-shed **transpose** is an all-to-all personalized
  communication (every node exchanges a patch with every other);
* the **SOR** ghost exchange is a cyclic shift between neighbours;
* the **FEM** halo exchange talks to a handful of graph neighbours.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "all_to_all",
    "cyclic_shift",
    "fan_in",
    "transpose_exchange",
    "neighbor_exchange",
]

Flow = Tuple[int, int]


def all_to_all(n_nodes: int, include_self: bool = False) -> List[Flow]:
    """All-to-all personalized communication (AAPC)."""
    return [
        (src, dst)
        for src in range(n_nodes)
        for dst in range(n_nodes)
        if include_self or src != dst
    ]


def cyclic_shift(n_nodes: int, offset: int = 1) -> List[Flow]:
    """Every node sends to its ``offset``-th successor (SOR exchange)."""
    return [(src, (src + offset) % n_nodes) for src in range(n_nodes)]


def fan_in(n_nodes: int, root: int = 0) -> List[Flow]:
    """N-to-1 fan-in: every node sends to ``root`` (gather/reduction).

    The serialization stress case: the root's receive engine serves
    every flow, so an unphased schedule races all senders against one
    deposit engine and one processor.
    """
    return [(src, root) for src in range(n_nodes) if src != root]


def transpose_exchange(n_nodes: int) -> List[Flow]:
    """The flows of a distributed matrix transpose.

    With rows block-distributed before and columns block-distributed
    after, every node holds a patch for every other node — an AAPC.
    Kept as its own generator so application code reads like the paper.
    """
    return all_to_all(n_nodes)


def neighbor_exchange(adjacency: Sequence[Sequence[int]]) -> List[Flow]:
    """Halo-exchange flows from a partition adjacency structure.

    ``adjacency[p]`` lists the partitions that share boundary nodes
    with partition ``p`` (the FEM solver's communication graph).
    """
    flows: List[Flow] = []
    for src, neighbours in enumerate(adjacency):
        for dst in neighbours:
            if dst != src:
                flows.append((src, dst))
    return flows
