"""Interconnection-network simulator (substrate).

Topologies with dimension-order routing, traffic patterns, and the
payload-bandwidth-under-congestion model of Section 4.3.
"""

from .loadreport import DimensionLoad, link_load_report, LinkLoadReport
from .network import FramingMode, NetworkConfig, NetworkModel
from .patterns import all_to_all, cyclic_shift, neighbor_exchange, transpose_exchange
from .schedule import (
    aapc_phases_shift,
    aapc_phases_xor,
    best_aapc_schedule,
    partition_into_phases,
    schedule_congestion,
    scheduled_congestion,
)
from .topology import Link, Mesh, Topology, Torus

__all__ = [
    "aapc_phases_shift",
    "aapc_phases_xor",
    "all_to_all",
    "best_aapc_schedule",
    "cyclic_shift",
    "DimensionLoad",
    "FramingMode",
    "Link",
    "link_load_report",
    "LinkLoadReport",
    "Mesh",
    "neighbor_exchange",
    "NetworkConfig",
    "NetworkModel",
    "partition_into_phases",
    "schedule_congestion",
    "scheduled_congestion",
    "Topology",
    "Torus",
    "transpose_exchange",
]
