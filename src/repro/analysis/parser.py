"""Parse the paper's composition notation back into ``Expr`` trees.

The pretty-printer (:meth:`Expr.notation`) renders expressions like::

    64C1 o (1S0 || Nd || 0D1) o 1C1

This module inverts it so the CLI (``python -m repro lint``) and tests
can analyze arbitrary expressions written as strings.  Accepted tokens:

* basic transfers — ``<read><letter><write>`` with patterns ``0``,
  ``1``, a stride like ``64`` (optionally blocked: ``64x2``) or ``w`` /
  ``ω`` for indexed, and letters ``C`` (copy), ``S`` (load-send),
  ``F`` (fetch-send), ``R`` (receive-store), ``D`` (receive-deposit);
* network transfers — ``Nd`` and ``Nadp``;
* operators — ``o`` / ``∘`` for sequential, ``||`` / ``‖`` for
  parallel, with parentheses for grouping.  ``||`` binds tighter than
  ``o``, matching how the printer parenthesizes.

Parsed copies are placed on the node role the chain implies: copies
before any send/network transfer gather on the sender, copies after a
receive land on the receiver, and copies in a purely local expression
stay local.  ``parse_expr("...").notation()`` round-trips up to
whitespace and redundant parentheses.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..core.composition import Expr, Term, par, seq
from ..core.errors import ModelError
from ..core.patterns import AccessPattern
from ..core.resources import NodeRole
from ..core.transfers import (
    BasicTransfer,
    TransferKind,
    copy,
    fetch_send,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)

__all__ = ["NotationError", "parse_expr"]


class NotationError(ModelError):
    """A composition-notation string cannot be parsed."""


_PATTERN = r"(?:\d+x\d+|\d+|[01wω])"
_TOKEN = re.compile(
    rf"\s*(?:(?P<net>Nadp|Nd)"
    rf"|(?P<leaf>(?P<read>{_PATTERN})(?P<kind>[CSFRD])(?P<write>{_PATTERN}))"
    rf"|(?P<par>\|\||‖)"
    rf"|(?P<seq>o\b|∘)"
    rf"|(?P<open>\()"
    rf"|(?P<close>\)))"
)


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.tokens: List[Tuple[str, str, int]] = []
        self._scan()
        self.index = 0

    def _scan(self) -> None:
        pos = 0
        while pos < len(self.text):
            match = _TOKEN.match(self.text, pos)
            if match is None:
                remainder = self.text[pos:].strip()
                if not remainder:
                    break
                raise NotationError(
                    f"cannot tokenize notation at offset {pos}: {remainder[:20]!r}"
                )
            for name in ("net", "leaf", "par", "seq", "open", "close"):
                value = match.group(name)
                if value is not None:
                    self.tokens.append((name, value, match.start(name)))
                    break
            pos = match.end()

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise NotationError(f"unexpected end of notation {self.text!r}")
        self.index += 1
        return token


def _build_leaf(text: str, offset: int) -> BasicTransfer:
    match = _TOKEN.match(text)
    assert match is not None and match.group("leaf")
    read = AccessPattern.parse(match.group("read"))
    write = AccessPattern.parse(match.group("write"))
    kind = match.group("kind")
    if kind == "C":
        return copy(read, write)
    if kind == "S":
        _expect_fixed(write, text, "S", "write", offset)
        return load_send(read)
    if kind == "F":
        _expect_fixed(write, text, "F", "write", offset)
        return fetch_send(read)
    if kind == "R":
        _expect_fixed(read, text, "R", "read", offset)
        return receive_store(write)
    assert kind == "D"
    _expect_fixed(read, text, "D", "read", offset)
    return receive_deposit(write)


def _expect_fixed(
    pattern: AccessPattern, text: str, letter: str, side: str, offset: int
) -> None:
    if not pattern.is_fixed:
        raise NotationError(
            f"transfer {text!r} at offset {offset}: the {side} side of "
            f"{letter!r} is a fixed NI port and must be written 0"
        )


def _parse_sequence(tokens: _Tokenizer) -> Expr:
    parts = [_parse_parallel(tokens)]
    while True:
        token = tokens.peek()
        if token is None or token[0] != "seq":
            break
        tokens.next()
        parts.append(_parse_parallel(tokens))
    if len(parts) == 1:
        return parts[0]
    return seq(*parts)


def _parse_parallel(tokens: _Tokenizer) -> Expr:
    parts = [_parse_atom(tokens)]
    while True:
        token = tokens.peek()
        if token is None or token[0] != "par":
            break
        tokens.next()
        parts.append(_parse_atom(tokens))
    if len(parts) == 1:
        return parts[0]
    return par(*parts)


def _parse_atom(tokens: _Tokenizer) -> Expr:
    name, value, offset = tokens.next()
    if name == "open":
        inner = _parse_sequence(tokens)
        closing = tokens.next()
        if closing[0] != "close":
            raise NotationError(
                f"expected ')' at offset {closing[2]}, got {closing[1]!r}"
            )
        return inner
    if name == "net":
        return Term(network_adp() if value == "Nadp" else network_data())
    if name == "leaf":
        return Term(_build_leaf(value, offset))
    raise NotationError(f"unexpected token {value!r} at offset {offset}")


def _assign_copy_roles(expr: Expr) -> Expr:
    """Re-home parsed copies onto the node role the chain implies.

    In a point-to-point chain, reorganizing copies before the network
    stage run on the sender and copies after it run on the receiver;
    expressions with no network stage are node-local.  Roles matter for
    the exclusive-resource rule: a gather on the sender does not
    conflict with a scatter on the receiver.
    """
    terms = list(expr.terms())
    network_seen = any(t.kind.is_network for t in terms)
    if not network_seen:
        return expr
    state = {"before_network": True}

    def rebuild(node: Expr) -> Expr:
        if isinstance(node, Term):
            transfer = node.transfer
            if transfer.kind.is_network:
                state["before_network"] = False
                return node
            if transfer.kind is not TransferKind.COPY:
                if transfer.kind in (
                    TransferKind.RECEIVE_STORE,
                    TransferKind.RECEIVE_DEPOSIT,
                ):
                    state["before_network"] = False
                return node
            role = (
                NodeRole.SENDER if state["before_network"] else NodeRole.RECEIVER
            )
            return Term(copy(transfer.read, transfer.write, role=role))
        rebuilt = tuple(rebuild(part) for part in node.parts)  # type: ignore[attr-defined]
        return type(node)(rebuilt)  # type: ignore[call-arg]

    return rebuild(expr)


def parse_expr(text: str) -> Expr:
    """Parse composition notation into an :class:`Expr` tree.

    >>> parse_expr("64C1 o (1S0 || Nd || 0D1) o 1C1").notation()
    '64C1 o (1S0 || Nd || 0D1) o 1C1'

    Raises :class:`NotationError` on malformed input and
    :class:`~repro.core.errors.PatternError` on malformed patterns.
    """
    tokens = _Tokenizer(text)
    if tokens.peek() is None:
        raise NotationError("empty composition notation")
    expr = _parse_sequence(tokens)
    trailing = tokens.peek()
    if trailing is not None:
        raise NotationError(
            f"trailing input at offset {trailing[2]}: {trailing[1]!r}"
        )
    return _assign_copy_roles(expr)
