"""Tree utilities shared by the linter: walking and span computation.

Every node of a composition expression is addressed by a *path* — the
tuple of child indices from the root (the root itself is ``()``).  The
span map ties each path to the character range the node occupies in the
root's ``notation()`` rendering, so diagnostics can point precisely at
the offending step of an expression like ``64C1 o (1S0 || Nd || 0D1)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..core.composition import Expr, Par, Seq
from .diagnostics import Span

__all__ = ["Path", "walk", "compute_spans"]

Path = Tuple[int, ...]

#: Separators used by ``Seq.notation`` / ``Par.notation``.
_SEPARATORS = {Seq: " o ", Par: " || "}


def walk(expr: Expr, path: Path = ()) -> Iterator[Tuple[Path, Expr]]:
    """Yield ``(path, node)`` for every node, depth-first, root first."""
    yield path, expr
    if isinstance(expr, (Seq, Par)):
        for index, part in enumerate(expr.parts):
            yield from walk(part, path + (index,))


def compute_spans(expr: Expr) -> Dict[Path, Span]:
    """Map every node path to its span in ``expr.notation()``.

    Mirrors the rendering rules of :meth:`Expr.notation`: sequence
    parts join with ``" o "``, parallel parts with ``" || "``, and
    nested composite nodes are parenthesized.
    """
    spans: Dict[Path, Span] = {}
    _fill(expr, top=True, offset=0, path=(), spans=spans)
    return spans


def _fill(
    expr: Expr, top: bool, offset: int, path: Path, spans: Dict[Path, Span]
) -> None:
    text = expr.notation(top=top)
    spans[path] = Span(offset, offset + len(text))
    if not isinstance(expr, (Seq, Par)):
        return
    separator = _SEPARATORS[type(expr)]
    cursor = offset if top else offset + 1  # skip the opening paren
    for index, part in enumerate(expr.parts):
        _fill(part, top=False, offset=cursor, path=path + (index,), spans=spans)
        cursor += len(part.notation(top=False)) + len(separator)
