"""Schema validation for ``repro-lint-report/1`` payloads.

The CLI's ``lint --json`` output is consumed by CI jobs and external
tooling; this validator (mirroring :mod:`repro.faults.report`) pins
its shape so producers fail loudly when the schema drifts.

The payload shape::

    {
      "schema": "repro-lint-report/1",
      "results": [{"notation": "...", "diagnostics": [...]}, ...],
      "counts": {"error": 0, "warning": 1, "advice": 2},
      "ok": true
    }
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["LINT_SCHEMA", "validate_lint_report"]

LINT_SCHEMA = "repro-lint-report/1"

_SEVERITIES = ("error", "warning", "advice")


def _check_diagnostics(
    diagnostics: Any, where: str, errors: List[str]
) -> List[Any]:
    if not isinstance(diagnostics, list):
        errors.append(f"{where} is not a list")
        return []
    for index, entry in enumerate(diagnostics):
        label = f"{where}[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{label} is not an object")
            continue
        for key in ("rule", "severity", "message"):
            if not isinstance(entry.get(key), str):
                errors.append(f"{label}.{key} is not a string")
        if entry.get("severity") not in _SEVERITIES:
            errors.append(f"{label}.severity is {entry.get('severity')!r}")
        span = entry.get("span")
        if span is not None and not (
            isinstance(span, list)
            and len(span) == 2
            and all(isinstance(v, int) for v in span)
        ):
            errors.append(f"{label}.span is not a [start, end] pair")
    return diagnostics


def validate_lint_report(payload: Any) -> List[str]:
    """Structurally check one lint-report payload.

    Returns a list of problems; an empty list means the payload
    conforms to ``repro-lint-report/1``.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != LINT_SCHEMA:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected {LINT_SCHEMA!r}"
        )
    if not isinstance(payload.get("ok"), bool):
        errors.append("ok is not a boolean")
    results = payload.get("results")
    all_diagnostics: List[Any] = []
    if not isinstance(results, list):
        errors.append("results is not a list")
    else:
        for index, result in enumerate(results):
            where = f"results[{index}]"
            if not isinstance(result, dict):
                errors.append(f"{where} is not an object")
                continue
            if not isinstance(result.get("notation"), str):
                errors.append(f"{where}.notation is not a string")
            all_diagnostics.extend(
                _check_diagnostics(
                    result.get("diagnostics"), f"{where}.diagnostics", errors
                )
            )
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        errors.append("counts is not an object")
    else:
        unknown = sorted(set(counts) - set(_SEVERITIES))
        if unknown:
            errors.append(f"counts has unknown severities {unknown}")
        for severity in _SEVERITIES:
            if not isinstance(counts.get(severity), int):
                errors.append(f"counts[{severity!r}] is not an integer")
        if not errors:
            tallied = {severity: 0 for severity in _SEVERITIES}
            for entry in all_diagnostics:
                if isinstance(entry, dict) and entry.get("severity") in tallied:
                    tallied[entry["severity"]] += 1
            if any(counts[s] != tallied[s] for s in _SEVERITIES):
                errors.append("counts do not match the diagnostics lists")
    return errors
