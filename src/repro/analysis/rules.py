"""The linter's rule registry and built-in rules.

Rules are small functions registered with the :func:`rule` decorator.
An *expression* rule receives an :class:`AnalysisContext` (the tree,
its notation and span map, and — when available — the machine's
calibration table, capabilities and standing constraints) and yields
:class:`Finding` objects; the linter turns findings into
:class:`~repro.analysis.diagnostics.Diagnostic` instances carrying the
rule's id and severity.  A *plan* rule does the same over a
:class:`PlanContext` wrapping a compiler-emitted
:class:`~repro.compiler.commgen.CommPlan`.

Severity policy: only the ``CT1xx`` rules — exact static mirrors of
``Expr.validate()`` — are error severity, so *the analyzer reports an
error if and only if validation would raise* (a property test enforces
this).  Model-misapplication findings are warnings and performance
findings are advice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..core.calibration import ThroughputTable, pattern_key
from ..core.composition import Expr, Par, Seq, Term
from ..core.constraints import ResourceConstraint
from ..core.errors import CalibrationError, CompositionError
from ..core.operations import CommCapabilities, chained
from ..core.patterns import CONTIGUOUS, FIXED, AccessPattern
from ..core.resources import Resource, ResourceUnit
from ..core.transfers import BasicTransfer, TransferKind
from .diagnostics import Severity, Span
from .tree import Path, walk

if TYPE_CHECKING:
    from ..compiler.commgen import CommPlan

__all__ = [
    "AnalysisContext",
    "PlanContext",
    "Finding",
    "Rule",
    "RULES",
    "rule",
    "expression_rules",
    "plan_rules",
    "verify_rules",
]


@dataclass(frozen=True)
class Finding:
    """One raw rule hit: where it is and what to say about it.

    ``path`` addresses the offending node of the expression tree
    (``None`` for findings with no single anchor, e.g. plan-scope
    rules); the linter resolves it to a notation span.  Verify-scope
    rules, which work on the lowered plan IR rather than the tree,
    attach a ready-made ``span`` directly instead.
    """

    message: str
    path: Optional[Path] = None
    hint: Optional[str] = None
    span: Optional[Span] = None


@dataclass
class AnalysisContext:
    """Everything an expression rule may inspect.

    ``table``, ``capabilities`` and ``constraints`` are optional: the
    linter runs with whatever the caller can supply, and rules that
    need a missing ingredient simply stay silent.
    """

    expr: Expr
    notation: str
    spans: Mapping[Path, Span]
    table: Optional[ThroughputTable] = None
    capabilities: Optional[CommCapabilities] = None
    constraints: Tuple[ResourceConstraint, ...] = ()

    def leaves(self) -> Iterator[Tuple[Path, BasicTransfer]]:
        """Yield ``(path, transfer)`` for every leaf term."""
        for path, node in walk(self.expr):
            if isinstance(node, Term):
                yield path, node.transfer


@dataclass
class PlanContext:
    """Everything a plan rule may inspect.

    ``model`` (a :class:`~repro.core.model.CopyTransferModel`, untyped
    here to avoid an import cycle) and ``style`` are optional, like the
    optional fields of :class:`AnalysisContext`.  ``machine`` and
    ``capabilities`` carry the target machine's identity so rule
    messages can name the implicated engine; the linter fills them in
    from the model when available.
    """

    plan: "CommPlan"
    model: Optional[object] = None
    style: Optional[str] = None
    machine: Optional[str] = None
    capabilities: Optional[CommCapabilities] = None


CheckFn = Callable[..., Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    rule_id: str
    severity: Severity
    title: str
    scope: str  # "expr", "plan" or "verify"
    check: CheckFn = field(compare=False)


#: All registered rules, keyed by rule id.
RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str, severity: Severity, title: str, scope: str = "expr"
) -> Callable[[CheckFn], CheckFn]:
    """Register a rule function under ``rule_id``."""

    def decorator(check: CheckFn) -> CheckFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        if scope not in ("expr", "plan", "verify"):
            raise ValueError(f"unknown rule scope {scope!r}")
        RULES[rule_id] = Rule(rule_id, severity, title, scope, check)
        return check

    return decorator


def expression_rules() -> List[Rule]:
    return [r for r in RULES.values() if r.scope == "expr"]


def plan_rules() -> List[Rule]:
    return [r for r in RULES.values() if r.scope == "plan"]


def verify_rules() -> List[Rule]:
    return [r for r in RULES.values() if r.scope == "verify"]


# ---------------------------------------------------------------------------
# CT1xx — composition legality (static mirror of Expr.validate)
# ---------------------------------------------------------------------------


@rule(
    "CT101",
    Severity.ERROR,
    "sequential pattern mismatch",
)
def ct101_seq_pattern_mismatch(ctx: AnalysisContext) -> Iterator[Finding]:
    """Write pattern of step *n* must match the read pattern of step *n+1*.

    Mirrors the Section 3.3 matching rule enforced by ``Seq.validate``:
    fixed ends (``0``) and ambiguous boundaries are exempt.
    """
    for path, node in walk(ctx.expr):
        if not isinstance(node, Seq):
            continue
        for index, (left, right) in enumerate(zip(node.parts, node.parts[1:])):
            produced = left.write_pattern()
            consumed = right.read_pattern()
            if produced is None or consumed is None:
                continue
            if produced == FIXED or consumed == FIXED:
                continue
            if not produced.matches(consumed):
                yield Finding(
                    message=(
                        f"sequential step {index + 1} ({left.notation(top=False)}) "
                        f"writes pattern {produced} but step {index + 2} "
                        f"({right.notation(top=False)}) reads pattern {consumed}"
                    ),
                    path=path + (index + 1,),
                    hint=(
                        f"insert a reorganizing copy {produced}C{consumed} "
                        "between the steps, or change one side's pattern"
                    ),
                )


@rule(
    "CT102",
    Severity.ERROR,
    "parallel branches share an exclusive resource",
)
def ct102_par_exclusive_conflict(ctx: AnalysisContext) -> Iterator[Finding]:
    """Parallel branches must occupy disjoint exclusive resources.

    Mirrors ``Par.validate``: CPUs, co-processors, DMA and deposit
    engines serve one basic transfer at a time, so two branches of a
    ``‖`` that both need one cannot overlap (Section 3.3).
    """
    for path, node in walk(ctx.expr):
        if not isinstance(node, Par):
            continue
        seen: Dict[Resource, int] = {}
        reported: Set[Tuple[Resource, int, int]] = set()
        for index, part in enumerate(node.parts):
            for resource in sorted(part.all_resources(), key=str):
                if not resource.is_exclusive:
                    continue
                if resource in seen and seen[resource] != index:
                    key = (resource, seen[resource], index)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        message=(
                            f"parallel branches {seen[resource] + 1} "
                            f"({node.parts[seen[resource]].notation(top=False)}) and "
                            f"{index + 1} ({part.notation(top=False)}) both occupy "
                            f"exclusive resource {resource}"
                        ),
                        path=path + (index,),
                        hint=(
                            "run the branches sequentially, or move one onto a "
                            "background engine (DMA fetch-send, deposit engine, "
                            "co-processor receive-store)"
                        ),
                    )
                else:
                    seen[resource] = index


@rule(
    "CT103",
    Severity.ERROR,
    "degenerate empty composition",
)
def ct103_empty_composition(ctx: AnalysisContext) -> Iterator[Finding]:
    """A ``Seq`` or ``Par`` node with no parts cannot be evaluated.

    The ``seq()`` / ``par()`` builders refuse to construct these, but a
    directly instantiated node (or one produced by a buggy transform)
    would crash pattern queries with an ``IndexError`` deep inside the
    evaluator; flag it here instead.
    """
    for path, node in walk(ctx.expr):
        if isinstance(node, (Seq, Par)) and len(node.parts) == 0:
            kind = "sequential" if isinstance(node, Seq) else "parallel"
            yield Finding(
                message=f"empty {kind} composition node has no parts",
                path=path,
                hint="build expressions with seq()/par(), which reject empty part lists",
            )


# ---------------------------------------------------------------------------
# CT2xx — model misapplication (legal composition, unreliable estimate)
# ---------------------------------------------------------------------------

#: Capacity resources whose aggregate load the model polices with
#: resource constraints (Section 3.4.1 uses the memory system's total
#: bandwidth; the bus and the NI port are capped the same way).
_CAPPED_CAPACITY_UNITS = (
    ResourceUnit.MEMORY,
    ResourceUnit.BUS,
    ResourceUnit.NI_PORT,
)


def _constraint_covers(constraint: ResourceConstraint, unit: ResourceUnit) -> bool:
    if constraint.resource is not None:
        return constraint.resource is unit
    return unit.value.replace("_", " ") in constraint.name.lower()


@rule(
    "CT201",
    Severity.WARNING,
    "shared capacity resource with no covering constraint",
)
def ct201_uncovered_shared_capacity(ctx: AnalysisContext) -> Iterator[Finding]:
    """Parallel branches sharing memory/bus/NI bandwidth need a constraint.

    Capacity resources may legally be shared between branches, but the
    min rule then overstates throughput unless a
    :class:`ResourceConstraint` caps the aggregate load — the paper's
    ``2 × |xQy| ≤ |memory bandwidth|`` duplex cap (Section 3.4.1).
    """
    for path, node in walk(ctx.expr):
        if not isinstance(node, Par):
            continue
        users: Dict[Resource, int] = {}
        for part in node.parts:
            branch_resources = part.all_resources()
            for resource in branch_resources:
                if resource.is_exclusive:
                    continue
                if resource.unit not in _CAPPED_CAPACITY_UNITS:
                    continue
                users[resource] = users.get(resource, 0) + 1
        for resource in sorted(users, key=str):
            if users[resource] < 2:
                continue
            if any(_constraint_covers(c, resource.unit) for c in ctx.constraints):
                continue
            yield Finding(
                message=(
                    f"{users[resource]} parallel branches share capacity "
                    f"resource {resource} but no resource constraint caps "
                    "their aggregate bandwidth"
                ),
                path=path,
                hint=(
                    "add a ResourceConstraint (e.g. duplex_memory_constraint()) "
                    "so the estimate respects the shared bandwidth"
                ),
            )


@rule(
    "CT202",
    Severity.WARNING,
    "missing calibration-table entry",
)
def ct202_missing_calibration(ctx: AnalysisContext) -> Iterator[Finding]:
    """Every leaf transfer needs a table entry or interpolation anchors.

    Evaluating the expression would raise ``CalibrationError`` at the
    first gap (Section 4's tables must cover every basic transfer an
    operation uses); report all gaps up front instead.
    """
    if ctx.table is None:
        return
    seen: Set[Tuple[TransferKind, object, object]] = set()
    for path, transfer in ctx.leaves():
        key = (
            transfer.kind,
            pattern_key(transfer.read),
            pattern_key(transfer.write),
        )
        if key in seen:
            continue
        try:
            ctx.table.lookup(transfer)
        except CalibrationError as exc:
            seen.add(key)
            yield Finding(
                message=(
                    f"no calibration for {transfer.notation}: {exc}"
                ),
                path=path,
                hint=(
                    f"add a {transfer.notation} entry (or strided anchors) to "
                    f"table {ctx.table.name!r}, or recalibrate with "
                    "machines.measure.measure_table"
                ),
            )


@rule(
    "CT203",
    Severity.WARNING,
    "data-only network framing under a scattered pattern",
)
def ct203_wrong_network_framing(ctx: AnalysisContext) -> Iterator[Finding]:
    """Scattered remote stores must ship address-data pairs (``Nadp``).

    A data-only transfer ``Nd`` describes its payload by base address
    and length, which only works when both memory ends of the chain are
    contiguous; strided and indexed patterns need addresses on the wire
    (Section 3.2).  Check every ``Par`` that contains an ``Nd`` leaf.
    """
    for path, node in walk(ctx.expr):
        if not isinstance(node, Par):
            continue
        network_index: Optional[int] = None
        for index, part in enumerate(node.parts):
            if isinstance(part, Term) and part.transfer.kind is TransferKind.NETWORK_DATA:
                network_index = index
                break
        if network_index is None:
            continue
        for index, part in enumerate(node.parts):
            if index == network_index:
                continue
            for transfer in part.terms():
                offender: Optional[AccessPattern] = None
                if transfer.kind in (TransferKind.LOAD_SEND, TransferKind.FETCH_SEND):
                    if transfer.read.needs_addresses_on_wire:
                        offender = transfer.read
                elif transfer.kind in (
                    TransferKind.RECEIVE_STORE,
                    TransferKind.RECEIVE_DEPOSIT,
                ):
                    if transfer.write.needs_addresses_on_wire:
                        offender = transfer.write
                if offender is not None:
                    yield Finding(
                        message=(
                            f"data-only network transfer Nd paired with "
                            f"{transfer.notation}, whose pattern {offender} "
                            "needs addresses on the wire"
                        ),
                        path=path + (network_index,),
                        hint=(
                            "use Nadp (address-data pairs) for non-contiguous "
                            "chained transfers; it halves useful wire bandwidth "
                            "but makes the scatter addressable"
                        ),
                    )


@rule(
    "CT204",
    Severity.WARNING,
    "index-array read not charged against indexed throughput",
)
def ct204_uncharged_index_read(ctx: AnalysisContext) -> Iterator[Finding]:
    """Indexed rates must be slower than the contiguous rate.

    Section 2.2: reading the index array is part of an ω access and is
    charged against the transfer's throughput.  A calibration in which
    an indexed transfer is at least as fast as its contiguous twin has
    almost certainly omitted that charge.
    """
    if ctx.table is None:
        return
    seen: Set[Tuple[TransferKind, object, object]] = set()
    for path, transfer in ctx.leaves():
        if not (transfer.read.is_indexed or transfer.write.is_indexed):
            continue
        key = (
            transfer.kind,
            pattern_key(transfer.read),
            pattern_key(transfer.write),
        )
        if key in seen:
            continue
        seen.add(key)
        twin_read = CONTIGUOUS if transfer.read.is_indexed else transfer.read
        twin_write = CONTIGUOUS if transfer.write.is_indexed else transfer.write
        try:
            indexed_rate = ctx.table.lookup(transfer)
            twin_rate = ctx.table.lookup_kind(transfer.kind, twin_read, twin_write)
        except CalibrationError:
            continue  # CT202 reports the gap
        if indexed_rate >= twin_rate:
            twin_notation = (
                f"{twin_read.subscript}{transfer.kind.letter}{twin_write.subscript}"
            )
            yield Finding(
                message=(
                    f"{transfer.notation} is calibrated at {indexed_rate:.1f} MB/s, "
                    f"not slower than its contiguous twin {twin_notation} at "
                    f"{twin_rate:.1f} MB/s — the index-array read appears uncharged"
                ),
                path=path,
                hint=(
                    "recalibrate the ω entries with the index-array reads "
                    "charged against payload throughput (Section 2.2)"
                ),
            )


# ---------------------------------------------------------------------------
# CT3xx — performance advice (legal, well-modelled, but improvable)
# ---------------------------------------------------------------------------


def _contains_kinds(expr: Expr) -> Set[TransferKind]:
    return {t.kind for t in expr.terms()}


@rule(
    "CT301",
    Severity.ADVICE,
    "buffer packing where the model predicts chaining is faster",
)
def ct301_packing_beaten_by_chained(ctx: AnalysisContext) -> Iterator[Finding]:
    """The paper's headline result, surfaced as advice.

    When an expression has the buffer-packing shape (reorganizing
    copies around a network stage) and the machine can chain — stream
    elements in their home pattern with a background receiver — compare
    the two estimates and suggest the chained form if it wins
    (Sections 3.4, 5.1.2).
    """
    if ctx.table is None or ctx.capabilities is None:
        return
    kinds = _contains_kinds(ctx.expr)
    if TransferKind.COPY not in kinds:
        return
    if not kinds & {TransferKind.NETWORK_DATA, TransferKind.NETWORK_ADP}:
        return
    x = ctx.expr.read_pattern()
    y = ctx.expr.write_pattern()
    if x is None or y is None or x.is_fixed or y.is_fixed:
        return
    try:
        chained_expr = chained(x, y, ctx.capabilities)
    except CompositionError:
        return  # machine cannot chain this operation
    from ..core.throughput import evaluate

    try:
        packing_mbps = evaluate(
            ctx.expr, ctx.table, constraints=ctx.constraints, validate=False
        ).mbps
        chained_mbps = evaluate(
            chained_expr, ctx.table, constraints=ctx.constraints, validate=False
        ).mbps
    except CalibrationError:
        return  # CT202 reports the gap
    if chained_mbps > packing_mbps * 1.02:
        yield Finding(
            message=(
                f"buffer packing reaches {packing_mbps:.1f} MB/s but the chained "
                f"form {chained_expr.notation()} is predicted at "
                f"{chained_mbps:.1f} MB/s "
                f"({chained_mbps / packing_mbps:.1f}x)"
            ),
            path=(),
            hint=(
                "stream elements in their home pattern and let the deposit "
                "engine (or co-processor) scatter in the background "
                "(Section 5.1.2)"
            ),
        )


@rule(
    "CT302",
    Severity.ADVICE,
    "redundant reorganizing copy",
)
def ct302_redundant_copy(ctx: AnalysisContext) -> Iterator[Finding]:
    """A copy whose read and write patterns already match moves nothing.

    ``1C1`` composed into a pipeline re-reads and re-writes every word
    without changing its layout — the forced packing copy of PVM-style
    libraries that the paper's Figure 1 shows halving throughput.
    Flagged as advice because a library may force it for buffering.
    """
    for path, transfer in ctx.leaves():
        if transfer.kind is not TransferKind.COPY:
            continue
        if transfer.read.matches(transfer.write):
            yield Finding(
                message=(
                    f"copy {transfer.notation} reads and writes the same "
                    f"pattern {transfer.read}; it reorganizes nothing"
                ),
                path=path,
                hint=(
                    "drop the copy (or use a library that skips packing for "
                    "matching patterns) to avoid touching every word twice"
                ),
            )


# ---------------------------------------------------------------------------
# CT4xx — compiler-plan rules
# ---------------------------------------------------------------------------


@rule(
    "CT401",
    Severity.WARNING,
    "dead communication operation (zero payload)",
    scope="plan",
)
def ct401_zero_byte_op(ctx: PlanContext) -> Iterator[Finding]:
    """A plan operation that moves zero words is dead weight.

    It still pays per-message library overhead and occupies a slot in
    every collective schedule step, for no data moved.
    """
    for index, op in enumerate(ctx.plan.ops):
        if op.nwords <= 0:
            yield Finding(
                message=(
                    f"plan {ctx.plan.name!r} op[{index}] {op.notation} "
                    f"({op.src}->{op.dst}) transfers {op.nwords} words"
                ),
                hint="filter empty communication sets before emitting the plan",
            )


@rule(
    "CT402",
    Severity.WARNING,
    "self-message emitted as communication",
    scope="plan",
)
def ct402_self_message(ctx: PlanContext) -> Iterator[Finding]:
    """``src == dst`` should be a local copy, not a network operation.

    The communication generators exclude node-local traffic
    (``redistribute_1d`` skips it explicitly); a plan containing one
    would be charged network and NI costs for data that never leaves
    the node.
    """
    for index, op in enumerate(ctx.plan.ops):
        if op.src == op.dst:
            yield Finding(
                message=(
                    f"plan {ctx.plan.name!r} op[{index}] {op.notation} sends "
                    f"node {op.src} to itself"
                ),
                hint=(
                    f"emit a local copy {op.x.subscript}C{op.y.subscript} "
                    "instead of a network operation"
                ),
            )


@rule(
    "CT403",
    Severity.ERROR,
    "plan operation infeasible in the requested style",
    scope="plan",
)
def ct403_infeasible_style(ctx: PlanContext) -> Iterator[Finding]:
    """Every operation shape a plan needs must be implementable.

    With an explicit style, every shape must build in that style; with
    no style, at least one of the paper's two strategies must exist for
    each shape (a chained-only request fails on machines without a
    background receiver, Section 5.1.2).
    """
    if ctx.model is None:
        return
    build = ctx.model.build  # type: ignore[attr-defined]
    seen: Set[Tuple[str, str]] = set()
    for op in ctx.plan.ops:
        shape = (op.x.subscript, op.y.subscript)
        if shape in seen:
            continue
        seen.add(shape)
        if ctx.style is not None:
            styles = [ctx.style]
        else:
            styles = ["buffer-packing", "chained"]
        errors = []
        for style in styles:
            try:
                build(op.x, op.y, style)
            except CompositionError as exc:
                errors.append(str(exc))
        if len(errors) == len(styles):
            on_machine = (
                f" on machine {ctx.machine!r}" if ctx.machine else ""
            )
            hint = (
                "choose a feasible style, or target a machine with a "
                "general deposit engine / co-processor receiver"
            )
            caps = ctx.capabilities
            if caps is not None:
                missing = []
                if caps.deposit.value != "any":
                    missing.append(
                        f"deposit support is {caps.deposit.value!r}"
                    )
                if not caps.coprocessor_receive:
                    missing.append("no co-processor receiver")
                if missing:
                    hint = (
                        f"{'; '.join(missing)} — choose a feasible style, "
                        "or target a machine with a general deposit "
                        "engine / co-processor receiver"
                    )
            yield Finding(
                message=(
                    f"plan {ctx.plan.name!r} needs {op.notation}{on_machine} "
                    f"but no requested style is feasible: {'; '.join(errors)}"
                ),
                hint=hint,
            )
