"""Structured diagnostics emitted by the copy-transfer plan linter.

A :class:`Diagnostic` is one finding of the static analyzer: a rule id
(``CT101``), a severity, a human-readable message, an optional source
span over the expression's ``notation()`` string, and an optional
fix-it hint.  Diagnostics are plain immutable data with no dependency
on the rest of the package, so any layer (core model, runtime engine,
CLI, CI tooling) can carry them without import cycles.

Severity bands mirror the rule-id bands:

* ``CT1xx`` — **error**: the composition violates the model's
  concatenation rules (Section 3.3); evaluating it is meaningless.
* ``CT2xx`` — **warning**: the composition is legal but the model is
  being misapplied (missing calibration, uncovered shared resource,
  wrong network framing) and the estimate will be unreliable.
* ``CT3xx`` — **advice**: the composition is legal and well-modelled,
  but the model predicts a faster alternative exists.
* ``CT4xx`` — **warning**, plan scope: a compiler-emitted
  communication plan contains a degenerate operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Severity",
    "Span",
    "Diagnostic",
    "has_errors",
    "max_severity",
    "render_report",
]


class Severity(enum.Enum):
    """How serious a finding is; orderable (``ERROR`` is highest)."""

    ADVICE = "advice"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"advice": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __repr__(self) -> str:
        return f"Severity.{self.name}"


@dataclass(frozen=True)
class Span:
    """Character offsets ``[start, end)`` into a notation string."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def underline(self, text: str) -> str:
        """A caret line pointing at this span within ``text``."""
        width = max(1, min(self.end, len(text)) - self.start)
        return " " * self.start + "^" * width


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    Attributes:
        rule: Rule identifier, e.g. ``"CT101"``.
        severity: Error / warning / advice.
        message: Human-readable description naming the offending parts.
        notation: The analyzed expression in paper notation (empty for
            plan-scope diagnostics, which identify the operation in the
            message instead).
        span: Where in ``notation`` the finding anchors, when known.
        hint: A fix-it suggestion, when the rule has one.
    """

    rule: str
    severity: Severity
    message: str
    notation: str = ""
    span: Optional[Span] = None
    hint: Optional[str] = None

    def render(self) -> str:
        """Multi-line report: header, source excerpt, caret, hint."""
        lines = [f"{self.rule} {self.severity.value}: {self.message}"]
        if self.notation:
            lines.append(f"    {self.notation}")
            if self.span is not None:
                lines.append(f"    {self.span.underline(self.notation)}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation for ``--json`` / CI consumers."""
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.notation:
            payload["notation"] = self.notation
        if self.span is not None:
            payload["span"] = [self.span.start, self.span.end]
        if self.hint:
            payload["hint"] = self.hint
        return payload


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any diagnostic is error severity."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for a clean result."""
    best: Optional[Severity] = None
    for diagnostic in diagnostics:
        if best is None or best < diagnostic.severity:
            best = diagnostic.severity
    return best


def render_report(diagnostics: Iterable[Diagnostic]) -> str:
    """Render a list of diagnostics plus a one-line summary."""
    items: List[Diagnostic] = sorted(
        diagnostics,
        key=lambda d: (-d.severity.rank, d.rule, d.span.start if d.span else -1),
    )
    if not items:
        return "no findings"
    counts: Dict[str, int] = {}
    for diagnostic in items:
        key = diagnostic.severity.value
        counts[key] = counts.get(key, 0) + 1
    summary = ", ".join(
        f"{counts[name]} {name}"
        + ("s" if counts[name] != 1 and name != "advice" else "")
        for name in ("error", "warning", "advice")
        if name in counts
    )
    blocks: Tuple[str, ...] = tuple(d.render() for d in items)
    return "\n".join(blocks + (summary,))
