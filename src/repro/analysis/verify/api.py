"""High-level verification entry points.

One call per verifiable artefact:

* :func:`verify_expr` — a composition expression (the model tier);
* :func:`verify_plan` — a compiler-emitted
  :class:`~repro.compiler.commgen.CommPlan`;
* :func:`verify_step` — a runtime
  :class:`~repro.runtime.collective.CommunicationStep`, whose flow
  list is reified into a plan and verified against the runtime's own
  table and machine.

Each lowers its input to the plan IR, gathers whatever optional
ingredients the target supports — the static throughput bracket, the
model's concrete estimate, the fault-coverage table — runs every
verify pass, and returns a :class:`VerifyResult` that renders to
stable JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from ...core.composition import Expr
from ...core.errors import CompositionError, ModelError
from ...core.model import CopyTransferModel
from ...core.operations import OperationStyle
from ...core.throughput import evaluate
from ...faults.policy import RetryPolicy
from ...memsim.config import WORD_BYTES
from ..diagnostics import Diagnostic, Severity
from .bounds import PhaseBound, phase_bounds
from .coverage import CoverageContext, CoverageEntry, fault_coverage
from .ir import PlanIR, lower_expr, lower_plan
from .passes import VerifyContext, run_verify

if TYPE_CHECKING:
    from ...compiler.commgen import CommPlan
    from ...runtime.collective import CommunicationStep

__all__ = [
    "VerifyResult",
    "verify_expr",
    "verify_plan",
    "verify_step",
    "DEFAULT_NBYTES",
]

#: Message size verified by default — the paper's 128 KiB grid points.
DEFAULT_NBYTES = 131072

StyleLike = Union[OperationStyle, str, None]


def _style_value(style: StyleLike) -> Optional[str]:
    if style is None:
        return None
    if isinstance(style, OperationStyle):
        return style.value
    return OperationStyle(style).value


@dataclass(frozen=True)
class VerifyResult:
    """Everything one verification run established about its target."""

    target: str
    ir: PlanIR
    diagnostics: Tuple[Diagnostic, ...]
    bounds: Tuple[PhaseBound, ...] = ()
    coverage: Tuple[CoverageEntry, ...] = ()
    estimate_mbps: Optional[float] = None
    machine: Optional[str] = None
    style: Optional[str] = None
    schedule: Optional[str] = None
    discipline: Optional[str] = None

    @property
    def ok(self) -> bool:
        """No verify finding and no error-severity diagnostic."""
        return not any(
            d.rule.startswith("CT21") or d.severity is Severity.ERROR
            for d in self.diagnostics
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly payload (stable key order via sort_keys)."""
        return {
            "target": self.target,
            "machine": self.machine,
            "style": self.style,
            "schedule": self.schedule,
            "discipline": self.discipline,
            "ok": self.ok,
            "estimate_mbps": self.estimate_mbps,
            "bounds": [
                {
                    "phase": row.phase,
                    "mbps_lo": row.mbps_lo,
                    "mbps_hi": row.mbps_hi,
                    "lo_ns": row.lo_ns,
                    "hi_ns": row.hi_ns,
                }
                for row in self.bounds
            ],
            "coverage": {
                entry.fault_class: {
                    "covered": entry.covered,
                    "reason": entry.reason,
                }
                for entry in self.coverage
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"verify {self.target}: {'ok' if self.ok else 'FINDINGS'}"]
        if self.estimate_mbps is not None:
            lines.append(f"  estimate: {self.estimate_mbps:.1f} MB/s")
        for row in self.bounds:
            lines.append(
                f"  {row.phase}: [{row.mbps_lo:.1f}, {row.mbps_hi:.1f}] "
                f"MB/s = [{row.lo_ns:.0f}, {row.hi_ns:.0f}] ns"
            )
        uncovered = [e for e in self.coverage if not e.covered]
        if self.coverage:
            lines.append(
                f"  fault coverage: "
                f"{len(self.coverage) - len(uncovered)}/{len(self.coverage)} "
                "classes covered"
            )
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        return "\n".join(lines)


def _coverage_for(
    model: Optional[CopyTransferModel],
    style: Optional[str],
    retry_policy: Optional[RetryPolicy],
) -> Tuple[CoverageEntry, ...]:
    context = CoverageContext(
        capabilities=model.capabilities if model is not None else None,
        style=style,
        machine=model.name if model is not None else None,
        retry_policy=retry_policy,
    )
    return tuple(fault_coverage(context))


def verify_expr(
    expr: Expr,
    model: Optional[CopyTransferModel] = None,
    nbytes: int = DEFAULT_NBYTES,
    style: StyleLike = None,
    retry_policy: Optional[RetryPolicy] = None,
    only: Optional[Sequence[str]] = None,
    name: str = "expr",
) -> VerifyResult:
    """Verify one composition expression.

    Without a model, only the structural passes (races over the
    expression's own resource claims) can fire; with one, the bounds
    pass brackets the model's concrete estimate and the coverage pass
    judges the machine's capabilities.
    """
    style_value = _style_value(style)
    machine = model.name if model is not None else None
    ir = lower_expr(expr, machine=machine, name=name)
    bounds: Tuple[PhaseBound, ...] = ()
    estimate_mbps: Optional[float] = None
    if model is not None:
        bounds = tuple(
            phase_bounds(expr, model.table, nbytes, model.constraints)
        )
        try:
            estimate_mbps = evaluate(
                expr,
                model.table,
                constraints=model.constraints,
                validate=False,
            ).mbps
        except ModelError:
            estimate_mbps = None  # CT1xx/CT202 territory, not CT214's
    coverage = _coverage_for(model, style_value, retry_policy)
    context = VerifyContext(
        ir=ir,
        estimate_mbps=estimate_mbps,
        bounds=bounds,
        coverage=coverage,
    )
    return VerifyResult(
        target=name,
        ir=ir,
        diagnostics=run_verify(context, only=only),
        bounds=bounds,
        coverage=coverage,
        estimate_mbps=estimate_mbps,
        machine=machine,
        style=style_value,
    )


def verify_plan(
    plan: "CommPlan",
    model: Optional[CopyTransferModel] = None,
    style: StyleLike = None,
    schedule: str = "phased",
    discipline: str = "interleaved",
    retry_policy: Optional[RetryPolicy] = None,
    only: Optional[Sequence[str]] = None,
) -> VerifyResult:
    """Verify a compiler-emitted communication plan.

    The race pass judges the plan under the requested ``schedule``
    (phased or eager), the deadlock pass under the requested messaging
    ``discipline``.  With a model, the plan's dominant operation is
    built and bracketed, so a plan target also exercises the bounds
    pass.
    """
    style_value = _style_value(style)
    machine = model.name if model is not None else None
    ir = lower_plan(
        plan,
        capabilities=model.capabilities if model is not None else None,
        machine=machine,
        style=style_value,
        schedule=schedule,
        discipline=discipline,
    )
    bounds: Tuple[PhaseBound, ...] = ()
    estimate_mbps: Optional[float] = None
    if model is not None and len(plan.ops) > 0:
        op = plan.dominant_op()
        expr: Optional[Expr] = None
        if style_value is not None:
            try:
                expr = model.build(op.x, op.y, style_value)
            except CompositionError:
                expr = None  # CT403's report, not a bounds failure
        else:
            try:
                expr = model.choose(op.x, op.y).expr
            except ModelError:
                expr = None
        if expr is not None:
            bounds = tuple(
                phase_bounds(
                    expr, model.table, op.nbytes, model.constraints
                )
            )
            try:
                estimate_mbps = evaluate(
                    expr,
                    model.table,
                    constraints=model.constraints,
                    validate=False,
                ).mbps
            except ModelError:
                estimate_mbps = None
    coverage = _coverage_for(model, style_value, retry_policy)
    context = VerifyContext(
        ir=ir,
        estimate_mbps=estimate_mbps,
        bounds=bounds,
        coverage=coverage,
    )
    return VerifyResult(
        target=f"plan:{plan.name}",
        ir=ir,
        diagnostics=run_verify(context, only=only),
        bounds=bounds,
        coverage=coverage,
        estimate_mbps=estimate_mbps,
        machine=machine,
        style=style_value,
        schedule=schedule,
        discipline=discipline,
    )


def verify_step(
    step: "CommunicationStep",
    style: StyleLike = None,
    schedule: str = "phased",
    discipline: str = "interleaved",
    retry_policy: Optional[RetryPolicy] = None,
    only: Optional[Sequence[str]] = None,
) -> VerifyResult:
    """Verify a runtime collective step before executing it.

    The step's flow list is reified into a
    :class:`~repro.compiler.commgen.CommPlan` (same patterns and
    payload on every flow) and verified against a model assembled from
    the step's own runtime: its calibration table and its machine's
    capabilities, so the verdict matches what the step would execute.
    """
    from ...compiler.commgen import CommOp, CommPlan

    runtime = step.runtime
    nwords = max(1, step.bytes_per_flow // WORD_BYTES)
    plan = CommPlan(
        ops=[
            CommOp(src=src, dst=dst, x=step.x, y=step.y, nwords=nwords)
            for src, dst in step.flows
        ],
        name=f"step[{len(step.flows)} flows]",
    )
    model = CopyTransferModel(
        table=runtime.table,
        capabilities=runtime.machine.capabilities,
        name=runtime.machine.name,
    )
    return verify_plan(
        plan,
        model=model,
        style=style,
        schedule=schedule,
        discipline=discipline,
        retry_policy=retry_policy,
        only=only,
    )


def _merge_counts(
    results: Sequence[VerifyResult],
) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for result in results:
        for diagnostic in result.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
    return counts


def results_payload(results: Sequence[VerifyResult]) -> Dict[str, Any]:
    """The ``repro-verify-report/1`` envelope over several results."""
    from .report import SCHEMA

    payload_results: List[Dict[str, Any]] = [
        result.to_dict() for result in results
    ]
    return {
        "schema": SCHEMA,
        "ok": all(result.ok for result in results),
        "counts": _merge_counts(results),
        "results": payload_results,
    }
