"""The plan IR: one graph shape for everything the verifier checks.

The verifier's passes (:mod:`repro.analysis.verify.passes`) should not
care whether a schedule came from a composition expression, a
compiler-emitted :class:`~repro.compiler.commgen.CommPlan`, a
collective step's flow list, or the runtime's staged pipelines.  This
module lowers all four into one representation:

* an :class:`IRNode` is a unit of concurrent work — a basic transfer,
  a plan operation, or a pipeline stage — carrying the resources it
  claims **exclusively** (CPU, DMA, deposit engine, co-processor) and
  the capacity resources it merely **shares** (memory, bus, network);
* an :class:`IREdge` is an ordering dependency: the source must finish
  before the destination starts.  Two nodes with no directed path
  between them *may run concurrently* — that is the whole concurrency
  model, and it is what the race pass checks claims against;
* a :class:`NodeSchedule` is the per-node sequence of blocking
  rendezvous :class:`CommAction`\\ s a plan implies under a given
  messaging discipline — what the deadlock pass simulates.

Resource claims are plain strings.  Expression lowering uses the
``role:unit`` rendering of :class:`~repro.core.resources.Resource`
(``"sender:cpu"``); plan lowering scopes claims to concrete nodes
(``"node3:deposit"``); pipeline lowering reuses the runtime's stage
resource names (``"receiver_deposit"``).  Two claims conflict exactly
when the strings are equal, so each lowering controls its own aliasing
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ...core.composition import Expr, Par, Seq, Term
from ...core.operations import CommCapabilities, DepositSupport
from ...core.patterns import AccessPattern
from ..diagnostics import Span
from ..tree import compute_spans

if TYPE_CHECKING:
    from ...compiler.commgen import CommPlan
    from ...runtime.engine import _Phase

__all__ = [
    "IRNode",
    "IREdge",
    "CommAction",
    "NodeSchedule",
    "PlanIR",
    "lower_expr",
    "lower_plan",
    "lower_pipeline",
    "phase_partition",
]

#: Messaging disciplines the plan lowering can derive schedules for.
DISCIPLINES = ("interleaved", "blocking-sends")

#: Concurrency structures the plan lowering supports.
SCHEDULES = ("phased", "eager")


@dataclass(frozen=True)
class IRNode:
    """One unit of concurrently schedulable work.

    Attributes:
        node_id: Unique id within the graph (``"op3"``, ``"e0.1"``).
        kind: ``"op"`` (expression leaf or plan operation), ``"stage"``
            (pipeline stage) or ``"phase"`` (a pure ordering barrier,
            claiming nothing).
        label: Human-readable name used in diagnostics.
        exclusive: Resources this node needs to itself.
        shared: Capacity resources this node loads but may share.
        nbytes: Payload attributed to the node (0 for barriers).
        span: Source span over the root expression's notation, for
            expression-derived nodes.
    """

    node_id: str
    kind: str
    label: str
    exclusive: FrozenSet[str] = frozenset()
    shared: FrozenSet[str] = frozenset()
    nbytes: int = 0
    span: Optional[Span] = None


@dataclass(frozen=True)
class IREdge:
    """``src`` must complete before ``dst`` may start."""

    src: str
    dst: str
    kind: str = "order"


@dataclass(frozen=True)
class CommAction:
    """One blocking rendezvous action in a node's local program.

    ``tag`` identifies the message (the plan's op index), so a send
    and a receive match only when they describe the same operation.
    """

    kind: str  # "send" | "recv"
    peer: int
    tag: int

    def describe(self) -> str:
        verb = "send to" if self.kind == "send" else "recv from"
        return f"{verb} node {self.peer} (op {self.tag})"


@dataclass(frozen=True)
class NodeSchedule:
    """The ordered rendezvous actions one node executes."""

    node: int
    actions: Tuple[CommAction, ...]


@dataclass(frozen=True)
class PlanIR:
    """The common lowered form every verifier pass consumes."""

    name: str
    nodes: Tuple[IRNode, ...] = ()
    edges: Tuple[IREdge, ...] = ()
    schedules: Tuple[NodeSchedule, ...] = ()
    machine: Optional[str] = None
    notation: str = ""

    def node_by_id(self, node_id: str) -> IRNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def successors(self) -> Dict[str, Tuple[str, ...]]:
        out: Dict[str, List[str]] = {node.node_id: [] for node in self.nodes}
        for edge in self.edges:
            out[edge.src].append(edge.dst)
        return {key: tuple(value) for key, value in out.items()}

    def reachability(self) -> Dict[str, FrozenSet[str]]:
        """Transitive successor sets (a node does not reach itself)."""
        successors = self.successors()
        reach: Dict[str, FrozenSet[str]] = {}

        def visit(node_id: str) -> FrozenSet[str]:
            if node_id in reach:
                return reach[node_id]
            reach[node_id] = frozenset()  # cycle guard; graphs are DAGs
            seen: Set[str] = set()
            for succ in successors[node_id]:
                seen.add(succ)
                seen |= visit(succ)
            reach[node_id] = frozenset(seen)
            return reach[node_id]

        for node in self.nodes:
            visit(node.node_id)
        return reach

    def concurrent_claims(
        self,
    ) -> List[Tuple[str, Tuple[IRNode, ...]]]:
        """Exclusive resources claimed by two or more concurrent nodes.

        Returns ``(resource, claimants)`` pairs where every pair of
        claimants is mutually unordered — the race pass's raw material.
        Claimants sharing an ordering path are dropped: ordered nodes
        may legally reuse an engine.
        """
        reach = self.reachability()
        by_resource: Dict[str, List[IRNode]] = {}
        for node in self.nodes:
            for resource in node.exclusive:
                by_resource.setdefault(resource, []).append(node)
        conflicts: List[Tuple[str, Tuple[IRNode, ...]]] = []
        for resource in sorted(by_resource):
            claimants = by_resource[resource]
            if len(claimants) < 2:
                continue
            racy: List[IRNode] = []
            for index, node in enumerate(claimants):
                for other in claimants[index + 1:]:
                    ordered = (
                        other.node_id in reach[node.node_id]
                        or node.node_id in reach[other.node_id]
                    )
                    if not ordered:
                        if node not in racy:
                            racy.append(node)
                        if other not in racy:
                            racy.append(other)
            if len(racy) >= 2:
                conflicts.append((resource, tuple(racy)))
        return conflicts


# -- expression lowering ------------------------------------------------------


def lower_expr(
    expr: Expr,
    machine: Optional[str] = None,
    name: str = "expr",
) -> PlanIR:
    """Lower a composition expression to the plan IR.

    ``Seq`` children chain with ordering edges (every exit of part *n*
    precedes every entry of part *n+1*); ``Par`` children stay mutually
    unordered.  Leaf claims come from the transfer's resource set,
    split by exclusivity, and every node carries its notation span so
    race diagnostics can point into the source expression.
    """
    notation = expr.notation()
    spans = compute_spans(expr)
    nodes: List[IRNode] = []
    edges: List[IREdge] = []
    counter = [0]

    def emit(
        node: Expr, path: Tuple[int, ...]
    ) -> Tuple[List[str], List[str]]:
        """Return (entry ids, exit ids) of the lowered subgraph."""
        if isinstance(node, Term):
            transfer = node.transfer
            node_id = f"e{counter[0]}"
            counter[0] += 1
            nodes.append(
                IRNode(
                    node_id=node_id,
                    kind="op",
                    label=transfer.notation,
                    exclusive=frozenset(
                        str(r) for r in transfer.uses if r.is_exclusive
                    ),
                    shared=frozenset(
                        str(r) for r in transfer.uses if not r.is_exclusive
                    ),
                    span=spans.get(path),
                )
            )
            return [node_id], [node_id]
        if isinstance(node, Seq):
            entries: List[str] = []
            exits: List[str] = []
            for index, part in enumerate(node.parts):
                part_entries, part_exits = emit(part, path + (index,))
                if index == 0:
                    entries = part_entries
                else:
                    for src in exits:
                        for dst in part_entries:
                            edges.append(IREdge(src, dst))
                exits = part_exits
            return entries, exits
        if isinstance(node, Par):
            entries = []
            exits = []
            for index, part in enumerate(node.parts):
                part_entries, part_exits = emit(part, path + (index,))
                entries.extend(part_entries)
                exits.extend(part_exits)
            return entries, exits
        raise TypeError(f"cannot lower expression node {node!r}")

    emit(expr, ())
    return PlanIR(
        name=name,
        nodes=tuple(nodes),
        edges=tuple(edges),
        machine=machine,
        notation=notation,
    )


# -- plan lowering ------------------------------------------------------------


def phase_partition(
    flows: Sequence[Tuple[int, int]],
) -> List[List[int]]:
    """Greedy conflict-free phases over flow indices.

    Mirrors :func:`repro.netsim.schedule.partition_into_phases` but
    keeps *indices* (a plan may repeat a flow) — each flow lands in the
    first phase where its source is not yet sending and its
    destination not yet receiving, so every phase is a partial
    permutation: at most one send and one receive per node.
    """
    phases: List[Tuple[Set[int], Set[int], List[int]]] = []
    for index, (src, dst) in enumerate(flows):
        for sources, destinations, members in phases:
            if src not in sources and dst not in destinations:
                sources.add(src)
                destinations.add(dst)
                members.append(index)
                break
        else:
            phases.append(({src}, {dst}, [index]))
    return [members for __, ___, members in phases]


def _op_claims(
    src: int,
    dst: int,
    y: AccessPattern,
    capabilities: Optional[CommCapabilities],
    style: Optional[str],
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Per-node engine claims of one plan operation.

    Claims are scoped to concrete nodes *and* to the transfer role
    (``"node3:deposit"``, ``"node3:cpu[send]"``): two operations
    conflict only when they meet on the same engine of the same node
    doing the same kind of work.  The processor's send side and
    receive side are distinct claims because a node legally sends and
    receives at once — that duplex overlap is a *capacity* effect the
    runtime charges via the bus-interleave quirk and the duplex memory
    cap, not an exclusivity violation.  Two concurrent *sends* from
    one node (or two concurrent *receives* into one) are the real
    serialization the race pass must catch.
    """
    exclusive: Set[str] = set()
    shared = {f"node{src}:memory", f"node{dst}:memory", "network"}
    caps = capabilities
    if caps is None:
        exclusive.add(f"node{src}:cpu[send]")
        exclusive.add(f"node{dst}:cpu[recv]")
        return frozenset(exclusive), frozenset(shared)
    if style == "chained":
        exclusive.add(f"node{src}:cpu[send]")
        uses_deposit = caps.deposit is DepositSupport.ANY or (
            caps.deposit is DepositSupport.CONTIGUOUS and y.is_contiguous
        )
        if uses_deposit:
            exclusive.add(f"node{dst}:deposit")
        elif caps.coprocessor_receive:
            exclusive.add(f"node{dst}:coprocessor")
        else:
            exclusive.add(f"node{dst}:cpu[recv]")
        return frozenset(exclusive), frozenset(shared)
    # Buffer packing: the gather always runs on the sender's processor
    # and the scatter on the receiver's; the contiguous middle adds the
    # DMA engine (sender) and deposit engine (receiver) where present.
    exclusive.add(f"node{src}:cpu[send]")
    exclusive.add(f"node{dst}:cpu[recv]")
    if caps.dma_send:
        exclusive.add(f"node{src}:dma")
    if caps.deposit is not DepositSupport.NONE:
        exclusive.add(f"node{dst}:deposit")
    return frozenset(exclusive), frozenset(shared)


def _schedules_for(
    flows: Sequence[Tuple[int, int]],
    phases: Sequence[Sequence[int]],
    discipline: str,
) -> Tuple[NodeSchedule, ...]:
    if discipline not in DISCIPLINES:
        raise ValueError(
            f"unknown messaging discipline {discipline!r}; choose from "
            f"{DISCIPLINES}"
        )
    node_ids = sorted({endpoint for flow in flows for endpoint in flow})
    actions: Dict[int, List[CommAction]] = {node: [] for node in node_ids}
    if discipline == "interleaved":
        # One consistent global order (phase-major): every node posts
        # its actions in the order the phased schedule fires them.
        for members in phases:
            for index in members:
                src, dst = flows[index]
                actions[src].append(CommAction("send", dst, index))
                if dst != src:
                    actions[dst].append(CommAction("recv", src, index))
    else:
        # PVM-style blocking, unbuffered sends: each node posts all of
        # its sends in plan order before any receive.
        for index, (src, dst) in enumerate(flows):
            actions[src].append(CommAction("send", dst, index))
        for index, (src, dst) in enumerate(flows):
            if dst != src:
                actions[dst].append(CommAction("recv", src, index))
    return tuple(
        NodeSchedule(node, tuple(actions[node])) for node in node_ids
    )


def lower_plan(
    plan: "CommPlan",
    capabilities: Optional[CommCapabilities] = None,
    machine: Optional[str] = None,
    style: Optional[str] = None,
    schedule: str = "phased",
    discipline: str = "interleaved",
) -> PlanIR:
    """Lower a compiler-emitted communication plan to the plan IR.

    Args:
        plan: The operation list to lower.
        capabilities: Machine capabilities deciding which engines each
            operation claims (``None``: processors only).
        machine: Machine name carried into diagnostics.
        style: Operation style the claims model (``"chained"``,
            ``"buffer-packing"`` or ``None`` for packing's superset).
        schedule: ``"phased"`` runs the plan as conflict-free phases
            (at most one send and one receive per node per phase,
            separated by barriers); ``"eager"`` fires every operation
            concurrently — the naive runtime the race pass exists to
            catch.
        discipline: How each node orders its blocking sends/receives —
            ``"interleaved"`` (one consistent global order) or
            ``"blocking-sends"`` (all sends before any receive).
    """
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown plan schedule {schedule!r}; choose from {SCHEDULES}"
        )
    flows = plan.flows()
    phases = (
        phase_partition(flows)
        if schedule == "phased"
        else [list(range(len(flows)))]
    )
    nodes: List[IRNode] = []
    edges: List[IREdge] = []
    for op_index, op in enumerate(plan.ops):
        exclusive, shared = _op_claims(
            op.src, op.dst, op.y, capabilities, style
        )
        nodes.append(
            IRNode(
                node_id=f"op{op_index}",
                kind="op",
                label=(
                    f"op[{op_index}] {op.notation} "
                    f"{op.src}->{op.dst}"
                ),
                exclusive=exclusive,
                shared=shared,
                nbytes=op.nbytes,
            )
        )
    for phase_index in range(len(phases) - 1):
        barrier = f"phase{phase_index}"
        nodes.append(
            IRNode(node_id=barrier, kind="phase", label=f"barrier {phase_index}")
        )
        for index in phases[phase_index]:
            edges.append(IREdge(f"op{index}", barrier))
        for index in phases[phase_index + 1]:
            edges.append(IREdge(barrier, f"op{index}"))
    return PlanIR(
        name=plan.name,
        nodes=tuple(nodes),
        edges=tuple(edges),
        schedules=_schedules_for(flows, phases, discipline),
        machine=machine,
    )


# -- pipeline lowering --------------------------------------------------------


def lower_pipeline(
    phases: Iterable["_Phase"],
    machine: Optional[str] = None,
    name: str = "pipeline",
) -> PlanIR:
    """Lower the runtime's staged phases to the plan IR.

    Stages within a phase chain in order (stage *i* feeds stage
    *i+1*), and phases chain end to end — exactly the precedence the
    chunked :class:`~repro.runtime.stages.StagePipeline` honours.
    Stage resources that denote engines (CPU, DMA, deposit,
    co-processor) are exclusive claims; the network is shared.
    """
    nodes: List[IRNode] = []
    edges: List[IREdge] = []
    previous_exit: Optional[str] = None
    for phase in phases:
        for index, stage in enumerate(phase.stages):
            node_id = f"{phase.name}.{index}"
            is_engine = stage.resource != "network"
            nodes.append(
                IRNode(
                    node_id=node_id,
                    kind="stage",
                    label=f"{phase.name}/{stage.name}",
                    exclusive=(
                        frozenset({stage.resource}) if is_engine else frozenset()
                    ),
                    shared=(
                        frozenset() if is_engine else frozenset({stage.resource})
                    ),
                )
            )
            if previous_exit is not None:
                edges.append(IREdge(previous_exit, node_id))
            previous_exit = node_id
    return PlanIR(
        name=name, nodes=tuple(nodes), edges=tuple(edges), machine=machine
    )
