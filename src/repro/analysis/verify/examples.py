"""Canonical example plans the verifier's consumers share.

The CLI demos (``python -m repro verify --step ...``), the golden
diagnostics files, ``scripts/selfcheck.py`` and the CI smoke job all
need the same seeded plans: one that is *clean*, one with a seeded
resource race (an eager N-to-1 fan-in hammering the root's receive
engines), and one with a seeded rendezvous deadlock (a cyclic shift
under PVM-style blocking sends).  Defining them once keeps every
consumer bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ...compiler.commgen import CommOp, CommPlan
from ...core.errors import ModelError
from ...core.patterns import AccessPattern
from ...machines import paragon, t3d
from ...machines.base import Machine
from ...memsim.config import WORD_BYTES
from ...netsim.patterns import all_to_all, cyclic_shift, fan_in
from .api import DEFAULT_NBYTES, VerifyResult, results_payload, verify_plan

__all__ = [
    "EXAMPLES",
    "STEP_BUILDERS",
    "ExampleSpec",
    "example_machine",
    "example_result",
    "example_payload",
    "step_plan",
]

#: Flow-pattern builders keyed by the CLI's ``--step`` choices.
STEP_BUILDERS: Dict[str, Callable[[int], List[Tuple[int, int]]]] = {
    "all-to-all": all_to_all,
    "shift": cyclic_shift,
    "fan-in": fan_in,
}


@dataclass(frozen=True)
class ExampleSpec:
    """One named example plan configuration."""

    step: str
    nodes: int = 8
    x: str = "1"
    y: str = "64"
    nbytes: int = DEFAULT_NBYTES
    schedule: str = "phased"
    discipline: str = "interleaved"


#: The three canonical examples, by verdict they demonstrate.
EXAMPLES: Dict[str, ExampleSpec] = {
    # A phased cyclic shift: conflict-free phases, interleaved
    # rendezvous — verifies clean.
    "clean": ExampleSpec(step="shift"),
    # An *eager* fan-in races every sender against the root node's
    # processor and deposit engine — CT211.
    "racy": ExampleSpec(step="fan-in", schedule="eager"),
    # A cyclic shift where every node posts its send before its
    # receive — the full wait-for cycle, CT212.
    "deadlock": ExampleSpec(step="shift", discipline="blocking-sends"),
}


def step_plan(
    step: str,
    nodes: int,
    x: str = "1",
    y: str = "64",
    nbytes: int = DEFAULT_NBYTES,
) -> CommPlan:
    """Build a plan for one named step pattern."""
    try:
        builder = STEP_BUILDERS[step]
    except KeyError:
        raise ModelError(
            f"unknown step pattern {step!r}; choose from "
            f"{sorted(STEP_BUILDERS)}"
        ) from None
    if nodes < 2:
        raise ModelError(f"a step pattern needs >= 2 nodes, got {nodes}")
    read = AccessPattern.parse(x)
    write = AccessPattern.parse(y)
    nwords = max(1, nbytes // WORD_BYTES)
    return CommPlan(
        ops=[
            CommOp(src=src, dst=dst, x=read, y=write, nwords=nwords)
            for src, dst in builder(nodes)
        ],
        name=f"{step}[{nodes}]",
    )


def example_machine(machine_key: str) -> Machine:
    factories: Dict[str, Callable[[], Machine]] = {
        "t3d": t3d,
        "paragon": paragon,
    }
    try:
        return factories[machine_key]()
    except KeyError:
        raise ModelError(
            f"unknown machine {machine_key!r}; choose from "
            f"{sorted(factories)}"
        ) from None


def example_result(machine_key: str, example: str) -> VerifyResult:
    """Verify one named example on one machine."""
    try:
        spec = EXAMPLES[example]
    except KeyError:
        raise ModelError(
            f"unknown example {example!r}; choose from {sorted(EXAMPLES)}"
        ) from None
    plan = step_plan(
        spec.step, spec.nodes, x=spec.x, y=spec.y, nbytes=spec.nbytes
    )
    model = example_machine(machine_key).model()
    return verify_plan(
        plan,
        model=model,
        schedule=spec.schedule,
        discipline=spec.discipline,
    )


def example_payload(machine_key: str, example: str) -> Dict[str, Any]:
    """The full ``repro-verify-report/1`` payload for one example."""
    return results_payload([example_result(machine_key, example)])
