"""Canonical example plans the verifier's consumers share.

The CLI demos (``python -m repro verify --step ...``), the golden
diagnostics files, ``scripts/selfcheck.py`` and the CI smoke job all
need the same seeded plans: one that is *clean*, one with a seeded
resource race (an eager N-to-1 fan-in hammering the root's receive
engines), and one with a seeded rendezvous deadlock (a cyclic shift
under PVM-style blocking sends).  Defining them once keeps every
consumer bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ...compiler.commgen import CommOp, CommPlan
from ...core.errors import ModelError
from ...core.patterns import AccessPattern
from ...machines.base import Machine
from ...memsim.config import WORD_BYTES
from ...netsim.patterns import all_to_all, cyclic_shift, fan_in
from ...runtime.collectives import ALGORITHMS, collective_rounds
from .api import DEFAULT_NBYTES, VerifyResult, results_payload, verify_plan

__all__ = [
    "EXAMPLES",
    "STEP_BUILDERS",
    "ExampleSpec",
    "collective_plan",
    "example_machine",
    "example_result",
    "example_payload",
    "step_plan",
]

#: Flow-pattern builders keyed by the CLI's ``--step`` choices.
STEP_BUILDERS: Dict[str, Callable[[int], List[Tuple[int, int]]]] = {
    "all-to-all": all_to_all,
    "shift": cyclic_shift,
    "fan-in": fan_in,
}


@dataclass(frozen=True)
class ExampleSpec:
    """One named example plan configuration."""

    step: str
    nodes: int = 8
    x: str = "1"
    y: str = "64"
    nbytes: int = DEFAULT_NBYTES
    schedule: str = "phased"
    discipline: str = "interleaved"


#: The three canonical examples, by verdict they demonstrate.
EXAMPLES: Dict[str, ExampleSpec] = {
    # A phased cyclic shift: conflict-free phases, interleaved
    # rendezvous — verifies clean.
    "clean": ExampleSpec(step="shift"),
    # An *eager* fan-in races every sender against the root node's
    # processor and deposit engine — CT211.
    "racy": ExampleSpec(step="fan-in", schedule="eager"),
    # A cyclic shift where every node posts its send before its
    # receive — the full wait-for cycle, CT212.
    "deadlock": ExampleSpec(step="shift", discipline="blocking-sends"),
}


def collective_plan(
    op: str,
    nodes: int,
    x: str = "1",
    y: str = "64",
    nbytes: int = DEFAULT_NBYTES,
    algorithm: str = None,
) -> CommPlan:
    """Lower a whole collective into the verifier's plan IR.

    The rounds come from :func:`repro.runtime.collectives.collective_rounds`
    — the same source the runtime executes — concatenated in round order
    so the CT21x passes see every flow the operation performs.  Each
    round's ``bytes_per_flow`` carries through as per-op ``nwords``, so
    the bounds pass (CT214) brackets the real per-round payloads.
    """
    if algorithm is None:
        algorithm = ALGORITHMS[op][0] if op in ALGORITHMS else None
    rounds = collective_rounds(op, algorithm, nodes, nbytes)
    read = AccessPattern.parse(x)
    write = AccessPattern.parse(y)
    ops: List[CommOp] = []
    for rnd in rounds:
        nwords = max(1, rnd.bytes_per_flow // WORD_BYTES)
        ops.extend(
            CommOp(src=src, dst=dst, x=read, y=write, nwords=nwords)
            for src, dst in rnd.flows
        )
    return CommPlan(ops=ops, name=f"{op}/{algorithm}[{nodes}]")


def step_plan(
    step: str,
    nodes: int,
    x: str = "1",
    y: str = "64",
    nbytes: int = DEFAULT_NBYTES,
) -> CommPlan:
    """Build a plan for one named step pattern or collective op."""
    if step in ALGORITHMS:
        return collective_plan(step, nodes, x=x, y=y, nbytes=nbytes)
    try:
        builder = STEP_BUILDERS[step]
    except KeyError:
        raise ModelError(
            f"unknown step pattern {step!r}; choose from "
            f"{sorted(STEP_BUILDERS) + sorted(ALGORITHMS)}"
        ) from None
    if nodes < 2:
        raise ModelError(f"a step pattern needs >= 2 nodes, got {nodes}")
    read = AccessPattern.parse(x)
    write = AccessPattern.parse(y)
    nwords = max(1, nbytes // WORD_BYTES)
    return CommPlan(
        ops=[
            CommOp(src=src, dst=dst, x=read, y=write, nwords=nwords)
            for src, dst in builder(nodes)
        ],
        name=f"{step}[{nodes}]",
    )


def example_machine(machine_key: str) -> Machine:
    from ...machines.registry import MACHINE_FACTORIES

    try:
        return MACHINE_FACTORIES[machine_key]()
    except KeyError:
        raise ModelError(
            f"unknown machine {machine_key!r}; choose from "
            f"{sorted(MACHINE_FACTORIES)}"
        ) from None


def example_result(machine_key: str, example: str) -> VerifyResult:
    """Verify one named example on one machine."""
    try:
        spec = EXAMPLES[example]
    except KeyError:
        raise ModelError(
            f"unknown example {example!r}; choose from {sorted(EXAMPLES)}"
        ) from None
    plan = step_plan(
        spec.step, spec.nodes, x=spec.x, y=spec.y, nbytes=spec.nbytes
    )
    model = example_machine(machine_key).model()
    return verify_plan(
        plan,
        model=model,
        schedule=spec.schedule,
        discipline=spec.discipline,
    )


def example_payload(machine_key: str, example: str) -> Dict[str, Any]:
    """The full ``repro-verify-report/1`` payload for one example."""
    return results_payload([example_result(machine_key, example)])
