"""The fault-coverage pass: is every fault class survivable here?

The fault layer (:mod:`repro.faults`) can inject four classes of
trouble — link derates/failures, node slowdowns, deposit-engine loss,
fragment corruption — and the runtime has a degraded mode for each
*under the right configuration*.  This pass proves, per plan
configuration, which classes are covered and why the uncovered ones
are not, so a schedule that silently depends on (say) retransmission
being enabled gets a CT215 diagnostic instead of a runtime abort.

The registry maps fault-class names (as exported by
``repro.faults.spec.__all__``) to predicates over a
:class:`CoverageContext`.  A predicate returns ``None`` for "covered"
or a human-readable reason string for "uncovered".  A fault class
*without* a registered predicate is automatically uncovered ("no
registered coverage check") — adding a fifth fault class to the spec
without teaching the verifier about it is itself a coverage gap, and
the pass reports it as one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...core.operations import CommCapabilities, DepositSupport
from ...faults import spec as fault_spec
from ...faults.policy import RetryPolicy

__all__ = [
    "CoverageContext",
    "CoverageEntry",
    "FAULT_COVERAGE",
    "coverage_check",
    "fault_class_names",
    "fault_coverage",
]


@dataclass(frozen=True)
class CoverageContext:
    """The plan configuration the coverage predicates judge."""

    capabilities: Optional[CommCapabilities] = None
    style: Optional[str] = None
    machine: Optional[str] = None
    retry_policy: Optional[RetryPolicy] = None


@dataclass(frozen=True)
class CoverageEntry:
    """One fault class's verdict."""

    fault_class: str
    covered: bool
    reason: Optional[str] = None  # why it is *not* covered


CoverageCheck = Callable[[CoverageContext], Optional[str]]

#: fault-class name -> predicate (None: covered; str: uncovered reason).
FAULT_COVERAGE: Dict[str, CoverageCheck] = {}


def coverage_check(fault_class: str) -> Callable[[CoverageCheck], CoverageCheck]:
    """Register a coverage predicate for one fault class."""

    def register(check: CoverageCheck) -> CoverageCheck:
        FAULT_COVERAGE[fault_class] = check
        return check

    return register


def fault_class_names() -> Tuple[str, ...]:
    """Every injectable fault class, straight from the spec module."""
    return tuple(
        name for name in fault_spec.__all__ if name.endswith("Fault")
    )


@coverage_check("LinkFault")
def _link_fault(ctx: CoverageContext) -> Optional[str]:
    # Derated links scale stage rates; failed links reroute through
    # the faulty topology's surviving paths.  Always survivable.
    return None


@coverage_check("NodeFault")
def _node_fault(ctx: CoverageContext) -> Optional[str]:
    # Node slowdowns scale every stage pinned to the node; the
    # schedule completes at degraded throughput.  Always survivable.
    return None


@coverage_check("DepositFault")
def _deposit_fault(ctx: CoverageContext) -> Optional[str]:
    caps = ctx.capabilities
    if caps is None or caps.deposit is DepositSupport.NONE:
        # Nothing to lose: no plan on this machine uses a deposit
        # engine, so its failure cannot strand a transfer.
        return None
    if ctx.style != "chained":
        # Buffer packing falls back to a processor-driven receive
        # (deposit_ok=False) and keeps the same semantics.
        return None
    if caps.deposit is DepositSupport.ANY or caps.coprocessor_receive:
        # The chained style can rebuild on the co-processor (or the
        # general engine path degrades rather than disappears).
        return None
    return (
        "chained receives need the deposit engine and this machine has "
        "no co-processor to fall back to"
    )


@coverage_check("FragmentFault")
def _fragment_fault(ctx: CoverageContext) -> Optional[str]:
    policy = ctx.retry_policy or RetryPolicy()
    if policy.max_attempts <= 1:
        return (
            "retry policy allows a single attempt; one corrupted "
            "fragment aborts the transfer"
        )
    return None


def fault_coverage(ctx: CoverageContext) -> List[CoverageEntry]:
    """Judge every fault class against one plan configuration."""
    entries: List[CoverageEntry] = []
    for name in fault_class_names():
        check = FAULT_COVERAGE.get(name)
        if check is None:
            entries.append(
                CoverageEntry(
                    fault_class=name,
                    covered=False,
                    reason="no registered coverage check",
                )
            )
            continue
        reason = check(ctx)
        entries.append(
            CoverageEntry(
                fault_class=name, covered=reason is None, reason=reason
            )
        )
    return entries
