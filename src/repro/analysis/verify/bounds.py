"""Interval abstract interpretation of composition expressions.

The evaluator (:mod:`repro.core.throughput`) computes one number; this
module computes a *guaranteed bracket* around that number without
running it.  The abstract domain is the closed interval
``[mbps_lo, mbps_hi]``:

* the **upper** end folds the paper's composition rules alone —
  ``min`` over parallel branches, harmonic over sequential chains —
  ignoring every resource constraint, so no constraint application can
  push the concrete figure above it;
* the **lower** end takes that same fold and caps it by *every*
  resource constraint's limit, which is exactly the most any
  combination of constraints can subtract, so the concrete figure can
  never fall below it.

The concrete evaluator applies a subset of those caps (the binding
ones), hence ``mbps_lo <= evaluate(...).mbps <= mbps_hi`` holds *by
construction* — the CT214 pass turns a violation of that bracket into
a diagnostic, catching any future drift between the evaluator and the
composition rules.

Time bounds invert throughput: at 1 MB/s a byte takes a nanosecond, so
``ns = nbytes / mbps * 1000``.  Note the inversion swaps the ends —
the *fastest* rate gives the *lower* time bound.

:func:`pipeline_bounds` brackets the chunked
:class:`~repro.runtime.stages.StagePipeline` the same way: each
stage's total busy time is exact arithmetic (stream time + per-chunk
overheads + startup); wall-clock time is at least the busiest
exclusive resource (stages sharing a resource serialize) and at most
the sum of all busy times (the fully serialized schedule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ...core.calibration import ThroughputTable
from ...core.composition import Expr, Par, Seq, Term
from ...core.constraints import ResourceConstraint
from ...core.errors import CalibrationError, ModelError

if TYPE_CHECKING:
    from ...runtime.engine import _Phase

__all__ = [
    "Interval",
    "PhaseBound",
    "rate_interval",
    "phase_bounds",
    "pipeline_bounds",
]


@dataclass(frozen=True)
class Interval:
    """A closed throughput interval in MB/s."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ModelError(
                f"degenerate interval: lo {self.lo} > hi {self.hi}"
            )

    def contains(self, value: float, rel_tol: float = 1e-9) -> bool:
        slack_lo = self.lo * rel_tol
        slack_hi = self.hi * rel_tol
        return (self.lo - slack_lo) <= value <= (self.hi + slack_hi)


@dataclass(frozen=True)
class PhaseBound:
    """Static bounds for one phase of an operation.

    ``phase`` names the sub-expression (paper notation) or pipeline
    phase; the ns bounds are for moving ``nbytes`` through it.
    """

    phase: str
    mbps_lo: float
    mbps_hi: float
    lo_ns: float
    hi_ns: float


def _fold(expr: Expr, table: ThroughputTable) -> float:
    """The unconstrained composition fold (mirrors the evaluator)."""
    if isinstance(expr, Term):
        return table.lookup(expr.transfer)
    if isinstance(expr, Par):
        return min(_fold(part, table) for part in expr.parts)
    if isinstance(expr, Seq):
        rates = [_fold(part, table) for part in expr.parts]
        if any(rate <= 0.0 for rate in rates):
            raise ModelError(
                f"cannot bound {expr.notation()}: a sequential step has "
                "zero throughput"
            )
        return 1.0 / sum(1.0 / rate for rate in rates)
    raise ModelError(f"cannot bound expression node {expr!r}")


def rate_interval(
    expr: Expr,
    table: ThroughputTable,
    constraints: Sequence[ResourceConstraint] = (),
) -> Optional[Interval]:
    """The static throughput bracket for one expression.

    Returns ``None`` when the table cannot calibrate a leaf (that is
    the CT202 lint rule's report, not a bounds violation).
    """
    try:
        fold = _fold(expr, table)
        limits = [constraint.limit(table) for constraint in constraints]
    except CalibrationError:
        return None
    return Interval(lo=min([fold] + limits), hi=fold)


def _ns(nbytes: int, mbps: float) -> float:
    return nbytes / mbps * 1000.0


def phase_bounds(
    expr: Expr,
    table: ThroughputTable,
    nbytes: int,
    constraints: Sequence[ResourceConstraint] = (),
) -> List[PhaseBound]:
    """Per-phase and total static bounds for one operation.

    The phases of a composition are its top-level sequential parts
    (a non-``Seq`` root is a single phase).  The ``"total"`` row
    bounds the whole expression *with* constraints — the row CT214
    checks :meth:`~repro.core.model.CopyTransferModel.estimate`
    against; per-phase rows are informational (constraints apply to
    the whole operation, not to a phase in isolation).
    """
    rows: List[PhaseBound] = []
    parts: Tuple[Expr, ...] = (
        expr.parts if isinstance(expr, Seq) else (expr,)
    )
    if len(parts) > 1:
        for part in parts:
            interval = rate_interval(part, table)
            if interval is None:
                return []
            rows.append(
                PhaseBound(
                    phase=part.notation(top=False),
                    mbps_lo=interval.lo,
                    mbps_hi=interval.hi,
                    lo_ns=_ns(nbytes, interval.hi),
                    hi_ns=_ns(nbytes, interval.lo),
                )
            )
    total = rate_interval(expr, table, constraints)
    if total is None:
        return []
    rows.append(
        PhaseBound(
            phase="total",
            mbps_lo=total.lo,
            mbps_hi=total.hi,
            lo_ns=_ns(nbytes, total.hi),
            hi_ns=_ns(nbytes, total.lo),
        )
    )
    return rows


def pipeline_bounds(
    phases: Iterable["_Phase"],
    nbytes: int,
) -> Interval:
    """Static wall-clock bounds (ns) for the runtime's staged phases.

    For each phase, every stage's *busy* time is exact:
    ``nbytes / rate * 1000 + nchunks * chunk_overhead + startup``.
    The phase cannot finish before its busiest exclusive resource has
    done all its work (lower bound: max over resource groups of summed
    busy time) and cannot take longer than running every stage back to
    back (upper bound: sum of busy times).  Phases run sequentially,
    so the totals add.
    """
    lo = 0.0
    hi = 0.0
    for phase in phases:
        nchunks = max(1, math.ceil(nbytes / phase.chunk_bytes))
        by_resource: Dict[str, float] = {}
        for stage in phase.stages:
            busy = (
                _ns(nbytes, stage.rate_mbps)
                + nchunks * stage.chunk_overhead_ns
                + stage.startup_ns
            )
            by_resource[stage.resource] = (
                by_resource.get(stage.resource, 0.0) + busy
            )
            hi += busy
        if by_resource:
            lo += max(by_resource.values())
    return Interval(lo=lo, hi=hi)
