"""Schema validation for ``repro-verify-report/1`` payloads.

Mirrors :mod:`repro.faults.report`: a structural validator that CI
(and the CLI itself, before printing) runs over the JSON envelope, so
schema drift fails loudly at the producer instead of silently at a
downstream consumer.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["SCHEMA", "validate_verify_report"]

SCHEMA = "repro-verify-report/1"

_BOUND_KEYS = {"phase", "mbps_lo", "mbps_hi", "lo_ns", "hi_ns"}
_RESULT_KEYS = {
    "target",
    "machine",
    "style",
    "schedule",
    "discipline",
    "ok",
    "estimate_mbps",
    "bounds",
    "coverage",
    "diagnostics",
}


def _check_diagnostic(
    entry: Any, where: str, errors: List[str]
) -> None:
    if not isinstance(entry, dict):
        errors.append(f"{where} is not an object")
        return
    for key in ("rule", "severity", "message"):
        if not isinstance(entry.get(key), str):
            errors.append(f"{where}.{key} is not a string")
    severity = entry.get("severity")
    if severity not in ("error", "warning", "advice", None):
        errors.append(f"{where}.severity is {severity!r}")
    span = entry.get("span")
    if span is not None and not (
        isinstance(span, list)
        and len(span) == 2
        and all(isinstance(v, int) for v in span)
    ):
        errors.append(f"{where}.span is not a [start, end] pair")


def _check_result(
    result: Any, where: str, errors: List[str]
) -> None:
    if not isinstance(result, dict):
        errors.append(f"{where} is not an object")
        return
    missing = sorted(_RESULT_KEYS - set(result))
    if missing:
        errors.append(f"{where} is missing keys {missing}")
        return
    unknown = sorted(set(result) - _RESULT_KEYS)
    if unknown:
        errors.append(f"{where} has unknown keys {unknown}")
    if not isinstance(result["target"], str):
        errors.append(f"{where}.target is not a string")
    if not isinstance(result["ok"], bool):
        errors.append(f"{where}.ok is not a boolean")
    estimate = result["estimate_mbps"]
    if estimate is not None and not isinstance(estimate, (int, float)):
        errors.append(f"{where}.estimate_mbps is not a number")
    bounds = result["bounds"]
    if not isinstance(bounds, list):
        errors.append(f"{where}.bounds is not a list")
    else:
        for index, row in enumerate(bounds):
            label = f"{where}.bounds[{index}]"
            if not isinstance(row, dict) or set(row) != _BOUND_KEYS:
                errors.append(f"{label} does not have keys {sorted(_BOUND_KEYS)}")
                continue
            if not isinstance(row["phase"], str):
                errors.append(f"{label}.phase is not a string")
            for key in ("mbps_lo", "mbps_hi", "lo_ns", "hi_ns"):
                if not isinstance(row[key], (int, float)):
                    errors.append(f"{label}.{key} is not a number")
            if (
                isinstance(row["mbps_lo"], (int, float))
                and isinstance(row["mbps_hi"], (int, float))
                and row["mbps_lo"] > row["mbps_hi"]
            ):
                errors.append(f"{label} has mbps_lo > mbps_hi")
    coverage = result["coverage"]
    if not isinstance(coverage, dict):
        errors.append(f"{where}.coverage is not an object")
    else:
        for fault_class, verdict in coverage.items():
            label = f"{where}.coverage[{fault_class!r}]"
            if not isinstance(verdict, dict):
                errors.append(f"{label} is not an object")
                continue
            if not isinstance(verdict.get("covered"), bool):
                errors.append(f"{label}.covered is not a boolean")
            reason = verdict.get("reason")
            if reason is not None and not isinstance(reason, str):
                errors.append(f"{label}.reason is not a string or null")
            if verdict.get("covered") is False and reason is None:
                errors.append(f"{label} is uncovered but gives no reason")
    diagnostics = result["diagnostics"]
    if not isinstance(diagnostics, list):
        errors.append(f"{where}.diagnostics is not a list")
    else:
        for index, entry in enumerate(diagnostics):
            _check_diagnostic(
                entry, f"{where}.diagnostics[{index}]", errors
            )


def validate_verify_report(payload: Any) -> List[str]:
    """Structurally check one verify-report payload.

    Returns a list of problems; an empty list means the payload
    conforms to ``repro-verify-report/1``.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    if not isinstance(payload.get("ok"), bool):
        errors.append("ok is not a boolean")
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        errors.append("counts is not an object")
    else:
        for rule_id, count in counts.items():
            if not (isinstance(rule_id, str) and isinstance(count, int)):
                errors.append(f"counts[{rule_id!r}] is malformed")
    results = payload.get("results")
    if not isinstance(results, list):
        errors.append("results is not a list")
        return errors
    for index, result in enumerate(results):
        _check_result(result, f"results[{index}]", errors)
    if (
        isinstance(payload.get("ok"), bool)
        and isinstance(results, list)
        and all(isinstance(r, dict) for r in results)
    ):
        derived = all(r.get("ok") is True for r in results)
        if payload["ok"] != derived:
            errors.append("ok does not match the per-result verdicts")
    return errors
