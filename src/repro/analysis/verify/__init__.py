"""Semantic plan verification (the analysis tier above the linter).

Where the linter (:mod:`repro.analysis.linter`) checks composition
*syntax* — pattern matching, resource disjointness of explicit ``Par``
nodes — this package checks plan *semantics*: it lowers communication
plans, collective steps and runtime pipelines into a common plan IR
(:mod:`~repro.analysis.verify.ir`) and runs dataflow passes over it
(:mod:`~repro.analysis.verify.passes`):

* **CT211** resource races between concurrent units,
* **CT212/CT213** rendezvous deadlocks and unmatched sends/receives,
* **CT214** an interval abstract interpretation whose static bounds
  must bracket the model's concrete estimate,
* **CT215** fault-class coverage against :mod:`repro.faults.spec`.

Entry points: :func:`verify_expr`, :func:`verify_plan`,
:func:`verify_step` (see :mod:`~repro.analysis.verify.api`), and the
``python -m repro verify`` CLI.
"""

from .api import (
    DEFAULT_NBYTES,
    VerifyResult,
    results_payload,
    verify_expr,
    verify_plan,
    verify_step,
)
from .bounds import Interval, PhaseBound, phase_bounds, pipeline_bounds, rate_interval
from .coverage import (
    FAULT_COVERAGE,
    CoverageContext,
    CoverageEntry,
    coverage_check,
    fault_class_names,
    fault_coverage,
)
from .ir import (
    CommAction,
    IREdge,
    IRNode,
    NodeSchedule,
    PlanIR,
    lower_expr,
    lower_pipeline,
    lower_plan,
    phase_partition,
)
from .passes import VerifyContext, run_verify, simulate_rendezvous
from .report import SCHEMA, validate_verify_report

__all__ = [
    "CommAction",
    "CoverageContext",
    "CoverageEntry",
    "DEFAULT_NBYTES",
    "FAULT_COVERAGE",
    "IREdge",
    "IRNode",
    "Interval",
    "NodeSchedule",
    "PhaseBound",
    "PlanIR",
    "SCHEMA",
    "VerifyContext",
    "VerifyResult",
    "coverage_check",
    "fault_class_names",
    "fault_coverage",
    "lower_expr",
    "lower_pipeline",
    "lower_plan",
    "phase_bounds",
    "phase_partition",
    "pipeline_bounds",
    "rate_interval",
    "results_payload",
    "run_verify",
    "simulate_rendezvous",
    "verify_expr",
    "verify_plan",
    "verify_step",
]
