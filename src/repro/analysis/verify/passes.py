"""The verifier's dataflow passes (rule band CT21x).

Each pass is a rule registered in the shared registry
(:mod:`repro.analysis.rules`) under the ``"verify"`` scope, so rule
ids stay globally unique and `lint --rules` filtering works across
tiers — but the passes run only through :func:`run_verify`, never
through the linter's ``analyze()``/``analyze_plan()`` entry points.
They are all **warning** severity: the severity-policy invariant
(error iff ``Expr.validate()`` raises) belongs to the CT1xx band and
the verifier must not disturb it.  A CT21x warning still fails
``python -m repro verify`` — the CLI's exit code keys on the CT21x
band, not on severity.

The passes:

* **CT211** — resource race: two mutually unordered IR nodes claim the
  same exclusive resource (deposit engine, DMA, a node's processor).
* **CT212** — rendezvous deadlock: simulating the plan's blocking
  send/receive schedules to fixpoint leaves a wait-for cycle.
* **CT213** — unmatched rendezvous: a node blocks on a peer that has
  already run out of actions (a send nobody receives, or vice versa).
* **CT214** — estimate escapes bounds: the model's throughput figure
  falls outside the interval abstract interpretation's bracket.
* **CT215** — uncovered fault class: an injectable fault class has no
  degraded-mode story under this plan's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from ..rules import Finding, Rule, rule, verify_rules
from .bounds import PhaseBound
from .coverage import CoverageEntry
from .ir import CommAction, PlanIR

__all__ = ["VerifyContext", "run_verify", "simulate_rendezvous"]


@dataclass
class VerifyContext:
    """Everything a verify-scope rule may inspect.

    ``estimate_mbps``/``bounds`` and ``coverage`` are optional the
    same way the linter's table/capabilities are: passes that need a
    missing ingredient stay silent.
    """

    ir: PlanIR
    estimate_mbps: Optional[float] = None
    bounds: Tuple[PhaseBound, ...] = ()
    coverage: Tuple[CoverageEntry, ...] = ()
    bounds_rel_tol: float = 1e-9


# -- CT211: resource races ----------------------------------------------------


@rule(
    "CT211",
    Severity.WARNING,
    "concurrent claims on an exclusive resource",
    scope="verify",
)
def ct211_resource_race(ctx: VerifyContext) -> Iterator[Finding]:
    """Mutually unordered IR nodes must claim disjoint exclusive resources.

    The dynamic counterpart is an engine serving two transfers at once
    — which the runtime serializes, silently invalidating the
    schedule's cost model (the paper's engines pipeline one stream,
    Section 3.1).  One finding per contested resource.
    """
    for resource, claimants in ctx.ir.concurrent_claims():
        first, second = claimants[0], claimants[1]
        spans = ""
        if first.span is not None and second.span is not None:
            spans = (
                f" at notation spans [{first.span.start}, {first.span.end})"
                f" and [{second.span.start}, {second.span.end})"
            )
        others = (
            f" (and {len(claimants) - 2} more)" if len(claimants) > 2 else ""
        )
        yield Finding(
            message=(
                f"exclusive resource {resource!r} is claimed by "
                f"{len(claimants)} concurrent units: {first.label} and "
                f"{second.label}{others}{spans}"
            ),
            hint=(
                "order the claimants with a phase barrier or sequential "
                "composition, or move one onto a different engine"
            ),
            span=first.span or second.span,
        )


# -- CT212/CT213: rendezvous matching ----------------------------------------


def simulate_rendezvous(
    ir: PlanIR,
) -> Tuple[Dict[int, int], List[int]]:
    """Run the blocking send/receive schedules to fixpoint.

    A head send on node *a* matches a head receive on node *b* when
    peer and tag agree; both heads then advance.  Matching is
    confluent (each action has exactly one partner), so scanning nodes
    in sorted order reaches the same terminal state as any other
    maximal strategy.  Returns the final head index per node and the
    sorted list of blocked nodes.
    """
    actions = {s.node: s.actions for s in ir.schedules}
    heads = {node: 0 for node in actions}

    def head(node: int) -> Optional[CommAction]:
        index = heads[node]
        if index >= len(actions[node]):
            return None
        return actions[node][index]

    progress = True
    while progress:
        progress = False
        for node in sorted(actions):
            action = head(node)
            if action is None or action.kind != "send":
                continue
            peer = action.peer
            if peer not in actions:
                continue
            partner = head(peer)
            if (
                partner is not None
                and partner.kind == "recv"
                and partner.peer == node
                and partner.tag == action.tag
            ):
                heads[node] += 1
                heads[peer] += 1
                progress = True
    blocked = sorted(
        node for node in actions if heads[node] < len(actions[node])
    )
    return heads, blocked


def _wait_cycles(
    blocked: Sequence[int], waits_on: Dict[int, int]
) -> List[Tuple[int, ...]]:
    """Cycles of the functional wait-for graph, canonically rotated."""
    cycles: List[Tuple[int, ...]] = []
    seen: Set[int] = set()
    for start in blocked:
        if start in seen:
            continue
        trail: List[int] = []
        position: Dict[int, int] = {}
        node = start
        while node in waits_on and node not in seen and node not in position:
            position[node] = len(trail)
            trail.append(node)
            node = waits_on[node]
        if node in position:  # fresh cycle
            cycle = trail[position[node]:]
            pivot = cycle.index(min(cycle))
            cycles.append(tuple(cycle[pivot:] + cycle[:pivot]))
        seen.update(trail)
    return cycles


@rule(
    "CT212",
    Severity.WARNING,
    "send/receive deadlock cycle",
    scope="verify",
)
def ct212_deadlock_cycle(ctx: VerifyContext) -> Iterator[Finding]:
    """Blocking rendezvous schedules must not form a wait-for cycle.

    The classic case: every node of a cyclic-shift posts its send
    before its receive (PVM-style blocking unbuffered sends), so all
    sends wait on receives that are queued behind other sends —
    forever.  One finding per cycle, naming the chain.
    """
    if not ctx.ir.schedules:
        return
    heads, blocked = simulate_rendezvous(ctx.ir)
    if not blocked:
        return
    actions = {s.node: s.actions for s in ctx.ir.schedules}
    blocked_set = set(blocked)
    waits_on = {
        node: actions[node][heads[node]].peer
        for node in blocked
        if actions[node][heads[node]].peer in blocked_set
    }
    for cycle in _wait_cycles(blocked, waits_on):
        chain = " -> ".join(f"node {node}" for node in cycle)
        first = cycle[0]
        head_action = actions[first][heads[first]]
        yield Finding(
            message=(
                f"rendezvous deadlock: {chain} -> node {cycle[0]} "
                f"(node {first} blocks on '{head_action.describe()}')"
            ),
            hint=(
                "interleave sends and receives in one global phase order, "
                "or buffer sends so they complete without a rendezvous"
            ),
        )


@rule(
    "CT213",
    Severity.WARNING,
    "unmatched send or receive",
    scope="verify",
)
def ct213_unmatched_rendezvous(ctx: VerifyContext) -> Iterator[Finding]:
    """A blocked node whose peer has finished will never be served.

    Distinct from CT212: no cycle, just an action with no partner —
    a send into the void (e.g. a self-message that produced no
    receive) or a receive nobody posts the matching send for.
    """
    if not ctx.ir.schedules:
        return
    heads, blocked = simulate_rendezvous(ctx.ir)
    if not blocked:
        return
    actions = {s.node: s.actions for s in ctx.ir.schedules}
    blocked_set = set(blocked)
    for node in blocked:
        action = actions[node][heads[node]]
        if action.peer in blocked_set:
            continue  # waiting on another blocked node: CT212's case
        yield Finding(
            message=(
                f"node {node} blocks on '{action.describe()}' but node "
                f"{action.peer} has no matching "
                f"{'receive' if action.kind == 'send' else 'send'} left"
            ),
            hint=(
                "every send needs exactly one matching receive with the "
                "same peer and tag; check the plan for dropped or "
                "duplicated operations"
            ),
        )


# -- CT214: interval bounds ---------------------------------------------------


@rule(
    "CT214",
    Severity.WARNING,
    "model estimate escapes the static throughput bracket",
    scope="verify",
)
def ct214_estimate_outside_bounds(ctx: VerifyContext) -> Iterator[Finding]:
    """``evaluate()`` must land inside the abstract interpretation.

    The bracket is sound by construction (the upper end ignores every
    constraint, the lower end applies them all), so an escape means
    the evaluator and the composition rules have drifted apart — the
    static mirror of the runtime's phase-sum invariant.
    """
    if ctx.estimate_mbps is None:
        return
    total = next(
        (row for row in ctx.bounds if row.phase == "total"), None
    )
    if total is None:
        return
    tol = ctx.bounds_rel_tol
    lo = total.mbps_lo * (1.0 - tol)
    hi = total.mbps_hi * (1.0 + tol)
    if lo <= ctx.estimate_mbps <= hi:
        return
    yield Finding(
        message=(
            f"model estimate {ctx.estimate_mbps:.3f} MB/s escapes the "
            f"static bracket [{total.mbps_lo:.3f}, {total.mbps_hi:.3f}] "
            "MB/s"
        ),
        hint=(
            "the evaluator and the interval interpretation disagree on "
            "the composition rules; one of them has a bug"
        ),
    )


# -- CT215: fault coverage ----------------------------------------------------


@rule(
    "CT215",
    Severity.WARNING,
    "fault class without a degraded mode",
    scope="verify",
)
def ct215_uncovered_fault_class(ctx: VerifyContext) -> Iterator[Finding]:
    """Every injectable fault class needs a survival story.

    An uncovered class means injecting that fault against this plan
    configuration aborts the transfer instead of degrading it.
    """
    for entry in ctx.coverage:
        if entry.covered:
            continue
        yield Finding(
            message=(
                f"fault class {entry.fault_class} is not covered by a "
                f"degraded mode: {entry.reason}"
            ),
            hint=(
                "register a fallback (see repro.analysis.verify.coverage) "
                "or reconfigure the plan so the existing one applies"
            ),
        )


# -- runner -------------------------------------------------------------------


def _sorted(diagnostics: List[Diagnostic]) -> Tuple[Diagnostic, ...]:
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (
                -d.severity.rank,
                d.span.start if d.span else -1,
                d.rule,
                d.message,
            ),
        )
    )


def run_verify(
    ctx: VerifyContext,
    only: Optional[Sequence[str]] = None,
) -> Tuple[Diagnostic, ...]:
    """Run every verify-scope pass over one lowered plan.

    Args:
        ctx: The lowered plan plus whatever optional ingredients
            (estimate, bounds, coverage) the caller could supply.
        only: Restrict to these rule ids (unknown ids are ignored,
            matching the linter's ``--rules`` behaviour).

    Returns:
        Deterministically ordered diagnostics, worst first.
    """
    selected: List[Rule] = sorted(
        verify_rules(), key=lambda r: r.rule_id
    )
    if only is not None:
        wanted = set(only)
        selected = [r for r in selected if r.rule_id in wanted]
    diagnostics: List[Diagnostic] = []
    for pass_rule in selected:
        for finding in pass_rule.check(ctx):
            diagnostics.append(
                Diagnostic(
                    rule=pass_rule.rule_id,
                    severity=pass_rule.severity,
                    message=finding.message,
                    notation=ctx.ir.notation,
                    span=finding.span,
                    hint=finding.hint,
                )
            )
    return _sorted(diagnostics)
