"""The linter entry points: analyze expressions and compiler plans.

:func:`analyze` runs every registered expression rule over one
composition expression and returns sorted
:class:`~repro.analysis.diagnostics.Diagnostic` objects.  The caller
supplies whatever machine context it has — a calibration table enables
the calibration rules, capabilities enable the strategy-advice rules,
constraints inform the shared-resource rule — and rules that lack an
ingredient stay silent rather than guess.

:func:`analyze_plan` does the same for a compiler-emitted
:class:`~repro.compiler.commgen.CommPlan`: the plan-scope rules check
the operation list itself, and, when a model is supplied, each distinct
operation shape is built in the model's preferred style and run through
the expression rules too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

from ..core.calibration import ThroughputTable
from ..core.composition import Expr
from ..core.constraints import ResourceConstraint
from ..core.errors import CompositionError, ModelError
from ..core.operations import CommCapabilities
from .diagnostics import Diagnostic
from .rules import RULES, AnalysisContext, PlanContext, Rule
from .tree import compute_spans

if TYPE_CHECKING:
    from ..compiler.commgen import CommPlan
    from ..core.model import CopyTransferModel

__all__ = ["analyze", "analyze_plan", "select_rules"]


def select_rules(
    only: Optional[Sequence[str]] = None, scope: Optional[str] = None
) -> List[Rule]:
    """Resolve a rule-id selection (``None`` means every rule).

    Raises :class:`ModelError` for unknown ids so typos in ``--rules``
    fail loudly instead of silently linting nothing.
    """
    if only is None:
        selected = list(RULES.values())
    else:
        unknown = sorted(set(only) - set(RULES))
        if unknown:
            raise ModelError(
                f"unknown lint rule ids {unknown}; known rules: {sorted(RULES)}"
            )
        selected = [RULES[rule_id] for rule_id in only]
    if scope is not None:
        selected = [r for r in selected if r.scope == scope]
    return selected


def _sorted(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (
            -d.severity.rank,
            d.span.start if d.span else -1,
            d.rule,
            d.message,
        ),
    )


def analyze(
    expr: Expr,
    table: Optional[ThroughputTable] = None,
    capabilities: Optional[CommCapabilities] = None,
    constraints: Sequence[ResourceConstraint] = (),
    rules: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Statically check one composition expression.

    Args:
        expr: The expression to analyze.
        table: Calibration table, enabling the calibration-coverage and
            index-charge rules and the strategy comparison.
        capabilities: Machine capabilities, enabling the
            packing-vs-chained advice.
        constraints: Standing resource constraints in scope (used to
            decide whether shared capacity resources are covered).
        rules: Restrict to these rule ids (default: all expression rules).

    Returns:
        Diagnostics sorted by severity (errors first), then position.
    """
    notation = expr.notation()
    spans = compute_spans(expr)
    ctx = AnalysisContext(
        expr=expr,
        notation=notation,
        spans=spans,
        table=table,
        capabilities=capabilities,
        constraints=tuple(constraints),
    )
    diagnostics: List[Diagnostic] = []
    for rule in select_rules(rules, scope="expr"):
        for finding in rule.check(ctx):
            span = spans.get(finding.path) if finding.path is not None else None
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=finding.message,
                    notation=notation,
                    span=span,
                    hint=finding.hint,
                )
            )
    return _sorted(diagnostics)


def analyze_plan(
    plan: "CommPlan",
    model: Optional["CopyTransferModel"] = None,
    style: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Statically check a compiler-emitted communication plan.

    Plan-scope rules (``CT4xx``) inspect the operation list directly.
    When ``model`` is given, every distinct ``xQy`` shape in the plan
    is additionally built in ``style`` (default: the model's preferred
    style per shape) and run through the expression rules, so a plan
    inherits calibration and strategy findings for the operations it
    would actually execute.
    """
    ctx = PlanContext(
        plan=plan,
        model=model,
        style=style,
        machine=model.name if model is not None else None,
        capabilities=model.capabilities if model is not None else None,
    )
    diagnostics: List[Diagnostic] = []
    for rule in select_rules(rules, scope="plan"):
        for finding in rule.check(ctx):
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=finding.message,
                    hint=finding.hint,
                )
            )

    if model is not None:
        seen_shapes: Set[Tuple[str, str]] = set()
        seen_keys: Set[Tuple[str, str, str]] = set()
        for op in plan.ops:
            shape = (op.x.subscript, op.y.subscript)
            if shape in seen_shapes:
                continue
            seen_shapes.add(shape)
            styles = [style] if style is not None else ["buffer-packing", "chained"]
            for candidate in styles:
                try:
                    expr = model.build(op.x, op.y, candidate)
                except CompositionError:
                    continue  # CT403 reports infeasible shapes
                for diagnostic in analyze(
                    expr,
                    table=model.table,
                    capabilities=model.capabilities,
                    constraints=model.constraints,
                    rules=rules,
                ):
                    key = (diagnostic.rule, diagnostic.notation, diagnostic.message)
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    diagnostics.append(diagnostic)
    return _sorted(diagnostics)
