"""Static analysis of composition expressions and compiler plans.

A rule-based linter over the copy-transfer algebra: it checks the
model's composition rules (Section 3.3) *before* evaluation or
execution, polices model application (calibration coverage, resource
constraints, network framing), and surfaces the paper's performance
guidance (buffer packing vs. chaining, redundant copies) as advice.

Public surface:

* :func:`analyze` / :func:`analyze_plan` — run the rules, get sorted
  :class:`Diagnostic` objects;
* :class:`Diagnostic`, :class:`Severity`, :class:`Span` — structured
  findings with source spans over the paper notation;
* :data:`RULES` — the rule registry (see ``docs/ANALYSIS.md`` for the
  catalog);
* :func:`parse_expr` — parse paper notation back into ``Expr`` trees;
* :func:`verify_expr` / :func:`verify_plan` / :func:`verify_step` —
  the semantic verification tier (:mod:`repro.analysis.verify`): plan
  IR lowering plus race, deadlock, interval-bounds and fault-coverage
  passes.

Quickstart::

    from repro.analysis import analyze, parse_expr

    expr = parse_expr("64C1 o 2C1")        # mismatched intermediate pattern
    for diagnostic in analyze(expr):
        print(diagnostic.render())          # CT101 error: ...
"""

from .diagnostics import (
    Diagnostic,
    Severity,
    Span,
    has_errors,
    max_severity,
    render_report,
)
from .linter import analyze, analyze_plan, select_rules
from .parser import NotationError, parse_expr
from .report import LINT_SCHEMA, validate_lint_report
from .rules import RULES, AnalysisContext, Finding, PlanContext, Rule, rule
from .verify import (
    PlanIR,
    VerifyResult,
    results_payload,
    validate_verify_report,
    verify_expr,
    verify_plan,
    verify_step,
)

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "Finding",
    "LINT_SCHEMA",
    "NotationError",
    "PlanContext",
    "PlanIR",
    "RULES",
    "Rule",
    "Severity",
    "Span",
    "VerifyResult",
    "analyze",
    "analyze_plan",
    "has_errors",
    "max_severity",
    "parse_expr",
    "render_report",
    "results_payload",
    "rule",
    "select_rules",
    "validate_lint_report",
    "validate_verify_report",
    "verify_expr",
    "verify_plan",
    "verify_step",
]
