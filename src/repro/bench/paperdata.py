"""Every number the paper reports, as data.

Single source of truth for the benchmark harness and EXPERIMENTS.md:
the measured basic-transfer tables (Tables 1-3), network bandwidths
(Table 4), the printed model estimates (Sections 3.4.1 and 5.1), the
strided-loads-vs-stores comparison (Table 5), the application kernels
(Table 6 and the PVM3 paragraph), and approximate hardware context
from Section 1 / Figure 1.

Values are MB/s (MB = 1e6 bytes) throughout.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_LOCAL_COPIES",
    "TABLE2_SEND",
    "TABLE3_RECEIVE",
    "TABLE4_NETWORK",
    "SEC51_MODEL_ESTIMATES",
    "SEC341_EXAMPLE",
    "TABLE5",
    "TABLE6_T3D",
    "TABLE6_PVM3_T3D",
    "FIG1_CONTEXT",
]

#: Table 1: local memory-to-memory copy throughput for large blocks.
TABLE1_LOCAL_COPIES = {
    "Cray T3D": {"1C1": 93.0, "1C64": 67.9, "64C1": 33.3, "1Cw": 38.5, "wC1": 32.9},
    "Intel Paragon": {
        "1C1": 67.6,
        "1C64": 27.6,
        "64C1": 31.1,
        "1Cw": 35.2,
        "wC1": 45.1,
    },
}

#: Table 2: sending network transfers ('-' entries omitted).
TABLE2_SEND = {
    "Cray T3D": {"1S0": 126.0, "64S0": 35.0, "wS0": 32.0},
    "Intel Paragon": {"1S0": 52.0, "1F0": 160.0, "64S0": 42.0, "wS0": 36.0},
}

#: Table 3: receiving network transfers ('-' entries omitted).
TABLE3_RECEIVE = {
    "Cray T3D": {"0D1": 142.0, "0D64": 52.0, "0Dw": 52.0},
    "Intel Paragon": {"0R1": 82.0, "0D1": 160.0, "0R64": 38.0, "0Rw": 42.0},
}

#: Table 4: network bandwidth by framing mode and congestion; the
#: congestion-2 column is the paper's bold "representative" one.
TABLE4_NETWORK = {
    "Cray T3D": {
        "data": {1: 142.0, 2: 69.0, 4: 35.0},
        "adp": {1: 62.0, 2: 38.0, 4: 20.0},
    },
    "Intel Paragon": {
        "data": {1: 176.0, 2: 90.0, 4: 44.0},
        "adp": {1: 88.0, 2: 45.0, 4: 22.0},
    },
}

#: Sections 5.1.1-5.1.4: printed model estimates for xQy operations.
#: Keys: (machine, operation, style) -> MB/s.
SEC51_MODEL_ESTIMATES = {
    ("Cray T3D", "1Q1", "buffer-packing"): 27.9,
    ("Cray T3D", "1Q64", "buffer-packing"): 25.2,
    ("Cray T3D", "64Q1", "buffer-packing"): 17.1,
    ("Cray T3D", "wQw", "buffer-packing"): 14.2,
    ("Cray T3D", "1Q1", "chained"): 70.0,
    ("Cray T3D", "1Q64", "chained"): 38.0,
    ("Cray T3D", "wQw", "chained"): 32.0,
    ("Intel Paragon", "1Q1", "buffer-packing"): 20.7,
    ("Intel Paragon", "1Q64", "buffer-packing"): 16.1,
    ("Intel Paragon", "16Q64", "buffer-packing"): 14.9,
    ("Intel Paragon", "wQw", "buffer-packing"): 16.2,
    ("Intel Paragon", "1Q1", "chained"): 52.0,
    ("Intel Paragon", "1Q64", "chained"): 38.0,
    ("Intel Paragon", "16Q64", "chained"): 38.0,
    ("Intel Paragon", "wQw", "chained"): 36.0,
}

#: Section 3.4.1: the 1024x1024 transpose example on the T3D.
SEC341_EXAMPLE = {"estimate": 25.0, "measured": 20.0}

#: Table 5: strided loads vs strided stores.
#: (machine, operation) -> {style: (model, measured)}.
TABLE5 = {
    ("Cray T3D", "1Q16"): {
        "buffer-packing": (25.4, 20.8),
        "chained": (38.0, 31.3),
    },
    ("Cray T3D", "16Q1"): {
        "buffer-packing": (18.4, 14.3),
        "chained": (38.0, 27.4),
    },
    ("Intel Paragon", "1Q16"): {
        "buffer-packing": (18.3, 20.7),
        "chained": (32.0, 29.7),
    },
    ("Intel Paragon", "16Q1"): {
        "buffer-packing": (20.7, 24.2),
        "chained": (42.0, 39.2),
    },
}

#: Table 6: application kernels on a 64-node T3D partition, MB/s/node.
#: kernel -> (packing measured, chained measured, chained model).
TABLE6_T3D = {
    "transpose": (20.0, 25.2, 29.5),
    "FEM": (12.2, 14.2, 20.2),
    "SOR": (26.2, 27.9, 68.1),
}

#: The paragraph below Table 6: stock Cray PVM3 application throughput.
TABLE6_PVM3_T3D = {"FEM": 2.0, "transpose": 6.0, "SOR": 25.0}

#: Section 1 / Figure 1 context: hardware peaks and usable rates.
FIG1_CONTEXT = {
    "Cray T3D": {"raw_link": 300.0, "usable_wire": 160.0},
    "Intel Paragon": {"raw_link": 200.0, "usable_wire": 160.0},
}
