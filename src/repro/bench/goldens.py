"""Golden-value regression harness for the paper experiments.

The accuracy suite (:mod:`repro.bench.accuracy`, ``benchmarks/``)
checks our numbers against the *paper's* within loose ratios — it
answers "is the reproduction faithful?".  This module answers a
different question: "did our own numbers move?".  Every target
experiment has a committed JSON golden (``tests/golden/data/``) of the
values the library currently produces; the golden tests regenerate
each experiment and demand agreement cell by cell, so an accidental
behavioral change — a timing-rule edit, an engine divergence, a cache
mixing stale entries — fails loudly with a readable per-cell report
even when it stays inside the paper-accuracy envelope.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python scripts/regen_goldens.py

and commit the diff — the diff itself then documents exactly which
published numbers the change moved.
"""

from __future__ import annotations

import json
import math
import os
from typing import Callable, Dict, List, Tuple

__all__ = [
    "GOLDEN_SCHEMA",
    "GOLDEN_TARGETS",
    "GOLDEN_JSON_TARGETS",
    "DEFAULT_REL_TOL",
    "golden_dir",
    "golden_path",
    "generate_golden",
    "load_golden",
    "load_json_golden",
    "compare_values",
    "json_diff",
    "render_mismatches",
]

#: Schema tag embedded in every golden file.
GOLDEN_SCHEMA = "repro-golden/1"

#: Default per-cell relative tolerance.  The simulation is pure
#: deterministic float arithmetic, so goldens reproduce exactly on the
#: platform that wrote them; the slack only absorbs cross-platform
#: libm/vectorization differences in the last ulps.
DEFAULT_REL_TOL = 1e-6


def golden_dir() -> str:
    """The committed golden directory (``tests/golden/data``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden", "data")


def golden_path(name: str) -> str:
    return os.path.join(golden_dir(), f"{name}.json")


# -- value generators ---------------------------------------------------------
#
# Each returns a flat {cell_key: value} mapping.  Keys are chosen to be
# stable and self-describing ("1C64", "strided stores (1Cs)@16",
# "1Q64/chained measured") so a failure names the exact number that
# moved.


def _comparison_values(rows) -> Dict[str, float]:
    return {row.label: row.ours for row in rows}


def _table_values(table_fn, machine_key: str) -> Dict[str, float]:
    from ..machines import paragon, t3d

    machine = {"t3d": t3d, "paragon": paragon}[machine_key]()
    return _comparison_values(table_fn(machine))


def _figure4_values(machine_key: str) -> Dict[str, float]:
    from ..machines import paragon, t3d

    from .experiments import figure4

    machine = {"t3d": t3d, "paragon": paragon}[machine_key]()
    values: Dict[str, float] = {}
    for series, points in figure4(machine).items():
        for stride, rate in points:
            values[f"{series}@{stride}"] = rate
    return values


def _grid_values(figure_fn) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for pattern, entries in figure_fn().items():
        for entry, rate in entries.items():
            values[f"{pattern}/{entry}"] = rate
    return values


def _make_targets() -> Dict[str, Callable[[], Dict[str, float]]]:
    from .experiments import (
        collective_table,
        figure7,
        figure8,
        machine_grid,
        table1,
        table2,
        table3,
    )

    targets: Dict[str, Callable[[], Dict[str, float]]] = {}
    for machine_key in ("t3d", "paragon"):
        for table_name, table_fn in (
            ("table1", table1),
            ("table2", table2),
            ("table3", table3),
        ):
            targets[f"{table_name}_{machine_key}"] = (
                lambda fn=table_fn, key=machine_key: _table_values(fn, key)
            )
        targets[f"figure4_{machine_key}"] = (
            lambda key=machine_key: _figure4_values(key)
        )
    targets["figure7"] = lambda: _grid_values(figure7)
    targets["figure8"] = lambda: _grid_values(figure8)
    # The new machines get the same figure7-style grid pin, plus a
    # collective table pinning algorithm costs and crossover picks.
    for machine_key in ("cluster", "xe"):
        targets[f"figure7_{machine_key}"] = (
            lambda key=machine_key: _grid_values(
                lambda: machine_grid(key)
            )
        )
        targets[f"collectives_{machine_key}"] = (
            lambda key=machine_key: _grid_values(
                lambda: collective_table(key)
            )
        )
    return targets


#: Golden target registry: name -> zero-arg generator of cell values.
GOLDEN_TARGETS: Dict[str, Callable[[], Dict[str, float]]] = _make_targets()


# -- exact-JSON targets (verifier diagnostics) --------------------------------
#
# Unlike the numeric targets above (compared within a relative
# tolerance), these goldens pin an entire JSON payload bit for bit:
# the verifier's diagnostics — rule ids, messages, spans, bounds,
# coverage verdicts — are discrete artifacts where any drift is a
# behavior change worth reviewing.


def _verify_payload(machine_key: str, example: str) -> Dict:
    from ..analysis.verify.examples import example_payload

    return example_payload(machine_key, example)


def _verify_collective_payload(machine_key: str) -> Dict:
    from ..analysis.verify.api import results_payload, verify_plan
    from ..analysis.verify.examples import collective_plan, example_machine

    plan = collective_plan("broadcast", 8)
    model = example_machine(machine_key).model()
    return results_payload([verify_plan(plan, model=model)])


def _make_json_targets() -> Dict[str, Callable[[], Dict]]:
    targets: Dict[str, Callable[[], Dict]] = {}
    for machine_key in ("t3d", "paragon"):
        for example in ("clean", "racy"):
            targets[f"verify_{example}_{machine_key}"] = (
                lambda key=machine_key, ex=example: _verify_payload(key, ex)
            )
    # One collective plan verified end to end on every registered
    # machine: the plan IR lowering, the CT21x passes and the bounds
    # all pinned bit for bit.
    from ..machines.registry import machine_names

    for machine_key in machine_names():
        targets[f"verify_collective_{machine_key}"] = (
            lambda key=machine_key: _verify_collective_payload(key)
        )
    return targets


#: Exact-equality golden registry: name -> zero-arg payload generator.
#: The committed file *is* the payload (no golden envelope); it carries
#: its own schema tag (``repro-verify-report/1``).
GOLDEN_JSON_TARGETS: Dict[str, Callable[[], Dict]] = _make_json_targets()


def load_json_golden(name: str) -> Dict:
    with open(golden_path(name)) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ValueError(f"{golden_path(name)}: not a schema-tagged payload")
    return payload


def json_diff(expected, got, path: str = "$") -> List[str]:
    """Recursive exact diff of two JSON-plain values.

    Returns human-readable ``path: problem`` lines; empty means the
    values are identical.
    """
    problems: List[str] = []
    if type(expected) is not type(got):
        problems.append(
            f"{path}: type {type(got).__name__}, "
            f"expected {type(expected).__name__}"
        )
    elif isinstance(expected, dict):
        for key in sorted(set(expected) - set(got)):
            problems.append(f"{path}.{key}: missing")
        for key in sorted(set(got) - set(expected)):
            problems.append(f"{path}.{key}: unexpected")
        for key in sorted(set(expected) & set(got)):
            problems.extend(json_diff(expected[key], got[key], f"{path}.{key}"))
    elif isinstance(expected, list):
        if len(expected) != len(got):
            problems.append(
                f"{path}: length {len(got)}, expected {len(expected)}"
            )
        for index, (want, have) in enumerate(zip(expected, got)):
            problems.extend(json_diff(want, have, f"{path}[{index}]"))
    elif expected != got:
        problems.append(f"{path}: {got!r}, expected {expected!r}")
    return problems


# -- payloads -----------------------------------------------------------------


def generate_golden(name: str) -> Dict:
    """Regenerate the golden payload for one target."""
    values = GOLDEN_TARGETS[name]()
    return {
        "schema": GOLDEN_SCHEMA,
        "name": name,
        "rel_tol": DEFAULT_REL_TOL,
        "tolerances": {},  # per-cell overrides, edited by hand if needed
        "values": {key: values[key] for key in sorted(values)},
    }


def load_golden(name: str) -> Dict:
    with open(golden_path(name)) as handle:
        payload = json.load(handle)
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"{golden_path(name)}: expected schema {GOLDEN_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    return payload


# -- comparison ---------------------------------------------------------------


def compare_values(
    golden: Dict, fresh: Dict[str, float]
) -> List[Tuple[str, str]]:
    """Diff fresh values against a golden payload.

    Returns ``(cell_key, problem)`` pairs — empty when everything
    agrees within tolerance.  Missing and unexpected cells are
    problems too: a silently grown or shrunk grid is a behavior
    change.
    """
    rel_tol = float(golden.get("rel_tol", DEFAULT_REL_TOL))
    overrides = golden.get("tolerances", {})
    expected = golden["values"]
    problems: List[Tuple[str, str]] = []
    for key in sorted(set(expected) - set(fresh)):
        problems.append((key, "missing from regenerated values"))
    for key in sorted(set(fresh) - set(expected)):
        problems.append(
            (key, f"unexpected new cell (value {fresh[key]:.6g})")
        )
    for key in sorted(set(expected) & set(fresh)):
        want = float(expected[key])
        got = float(fresh[key])
        tol = float(overrides.get(key, rel_tol))
        if not math.isclose(got, want, rel_tol=tol, abs_tol=tol):
            drift = (got / want - 1.0) * 100.0 if want else float("inf")
            problems.append(
                (
                    key,
                    f"expected {want:.9g}, got {got:.9g} "
                    f"({drift:+.4f}%, tol {tol:g})",
                )
            )
    return problems


def render_mismatches(name: str, problems: List[Tuple[str, str]]) -> str:
    """A readable failure report for one golden target."""
    lines = [
        f"golden {name!r}: {len(problems)} cell(s) drifted",
        "(intentional change? regenerate with "
        "`PYTHONPATH=src python scripts/regen_goldens.py` and commit "
        "the diff)",
    ]
    for key, problem in problems:
        lines.append(f"  {key:40} {problem}")
    return "\n".join(lines)
