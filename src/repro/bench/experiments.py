"""Regeneration code for every table and figure in the paper.

Each function rebuilds one experiment from the library's own machinery
(simulators, model, runtime, kernels) and returns paper-vs-ours
:class:`~repro.bench.reporting.Comparison` rows (for tables with
printed numbers) or the raw series (for figures read off charts).
The ``benchmarks/`` tree calls these and asserts the shape criteria.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.operations import OperationStyle
from ..core.patterns import CONTIGUOUS, INDEXED, AccessPattern, strided
from ..machines import paragon, t3d
from ..machines.base import Machine
from ..netsim.network import FramingMode
from ..runtime.engine import CommRuntime, measure_q
from ..runtime.libraries import lowlevel_profile, pvm_profile
from . import paperdata
from .reporting import Comparison

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure4",
    "figure7",
    "figure8",
    "collective_table",
    "machine_grid",
    "section341",
    "section51",
    "table5",
    "table6",
    "PATTERN_GRID",
]

#: The x/y pattern grid of Figures 7 and 8 (both axes of each chart).
PATTERN_GRID: List[Tuple[str, AccessPattern, AccessPattern]] = [
    ("1Q1", CONTIGUOUS, CONTIGUOUS),
    ("1Q64", CONTIGUOUS, strided(64)),
    ("64Q1", strided(64), CONTIGUOUS),
    ("1Qw", CONTIGUOUS, INDEXED),
    ("wQ1", INDEXED, CONTIGUOUS),
    ("wQw", INDEXED, INDEXED),
]

#: Message size used for point-to-point "measured" comparisons.
MEASURE_BYTES = 128 * 1024


def _simulated(machine: Machine) -> Dict[str, float]:
    return machine.simulated_table().to_dict()


# -- Tables 1-3: basic transfer calibration ---------------------------------


def table1(machine: Machine) -> List[Comparison]:
    """Local memory-to-memory copies (Table 1)."""
    simulated = _simulated(machine)
    reference = paperdata.TABLE1_LOCAL_COPIES[machine.name]
    return [
        Comparison(key, reference[key], simulated[key]) for key in reference
    ]


def table2(machine: Machine) -> List[Comparison]:
    """Sending network transfers (Table 2)."""
    simulated = _simulated(machine)
    reference = paperdata.TABLE2_SEND[machine.name]
    return [
        Comparison(key, reference[key], simulated[key]) for key in reference
    ]


def table3(machine: Machine) -> List[Comparison]:
    """Receiving network transfers (Table 3)."""
    simulated = _simulated(machine)
    reference = paperdata.TABLE3_RECEIVE[machine.name]
    return [
        Comparison(key, reference[key], simulated[key]) for key in reference
    ]


def table4(machine: Machine) -> List[Comparison]:
    """Network bandwidth under congestion (Table 4)."""
    model = machine.network_model()
    reference = paperdata.TABLE4_NETWORK[machine.name]
    rows = []
    for mode_name, mode in (
        ("data", FramingMode.DATA_ONLY),
        ("adp", FramingMode.ADDRESS_DATA_PAIRS),
    ):
        for congestion, paper_rate in sorted(reference[mode_name].items()):
            ours = model.rate(mode, congestion=congestion)
            rows.append(
                Comparison(f"{mode_name}@{congestion}", paper_rate, ours)
            )
    return rows


# -- Figures 1 and 4: curves ---------------------------------------------------


def figure1(
    machine: Machine,
    sizes: Sequence[int] = (64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20),
) -> Dict[str, List[Tuple[int, float]]]:
    """Throughput vs message size: PVM vs the best low-level library.

    Single-pair microbenchmark, so the network runs at congestion 1.
    Returns the two curves; Figure 1 prints no exact numbers, so the
    checks are qualitative (shape + asymptote context).
    """
    pvm_runtime = CommRuntime(machine, library=pvm_profile(), congestion=1)
    low_runtime = CommRuntime(machine, library=lowlevel_profile(), congestion=1)
    pvm_curve = pvm_runtime.sweep_message_sizes(
        list(sizes), style=OperationStyle.BUFFER_PACKING
    )
    # The "best library" path for contiguous blocks: no copies (the
    # low-level profile skips them), hardware block transfer — the
    # Paragon's DMA or the T3D's load-send feeding the wire directly.
    low_curve = low_runtime.sweep_message_sizes(
        list(sizes), style=OperationStyle.BUFFER_PACKING
    )
    return {"PVM": pvm_curve, "low-level": low_curve}


def figure4(
    machine: Machine,
    strides: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> Dict[str, List[Tuple[int, float]]]:
    """Strided local copy throughput vs stride (Figure 4).

    Returns the strided-store curve (``1Cs``) and strided-load curve
    (``sC1``) measured on the simulator.
    """
    node = machine.node_memory()
    stores = [(s, node.measure_copy(CONTIGUOUS, strided(s))) for s in strides]
    loads = [(s, node.measure_copy(strided(s), CONTIGUOUS)) for s in strides]
    return {"strided stores (1Cs)": stores, "strided loads (sC1)": loads}


# -- Sections 3.4.1 and 5.1: model estimates -----------------------------------


def section341() -> List[Comparison]:
    """The 1024x1024 T3D transpose example: estimate and measurement."""
    machine = t3d()
    model = machine.model(source="paper")
    estimate = model.estimate(
        CONTIGUOUS, strided(1024), OperationStyle.BUFFER_PACKING
    ).mbps
    measured = measure_q(
        machine,
        CONTIGUOUS,
        strided(1024),
        MEASURE_BYTES,
        OperationStyle.BUFFER_PACKING,
    ).mbps
    return [
        Comparison("|1Q1024| estimate", paperdata.SEC341_EXAMPLE["estimate"], estimate),
        Comparison("|1Q1024| measured", paperdata.SEC341_EXAMPLE["measured"], measured),
    ]


def _parse_q(op: str) -> Tuple[AccessPattern, AccessPattern]:
    x_text, __, y_text = op.partition("Q")
    return AccessPattern.parse(x_text), AccessPattern.parse(y_text)


def section51(machine: Machine) -> List[Comparison]:
    """The printed Section 5.1 model estimates for this machine."""
    model = machine.model(source="paper")
    rows = []
    for (name, op, style), paper_rate in sorted(
        paperdata.SEC51_MODEL_ESTIMATES.items()
    ):
        if name != machine.name:
            continue
        x, y = _parse_q(op)
        ours = model.estimate(x, y, style).mbps
        rows.append(Comparison(f"{op} {style}", paper_rate, ours))
    return rows


# -- Figures 7/8 and Table 5: packing vs chained --------------------------------


def _packing_vs_chained(
    machine: Machine,
) -> Dict[str, Dict[str, float]]:
    """Model and measured rates over the Figure 7/8 pattern grid."""
    model = machine.model(source="paper")
    results: Dict[str, Dict[str, float]] = {}
    for name, x, y in PATTERN_GRID:
        entry = {}
        for style in OperationStyle:
            entry[f"{style.value} model"] = model.estimate(x, y, style).mbps
            entry[f"{style.value} measured"] = measure_q(
                machine, x, y, MEASURE_BYTES, style
            ).mbps
        results[name] = entry
    return results


def _packing_vs_chained_swept(
    spec, workers: int, shard_size=None, engine: str = "cell"
) -> Dict[str, Dict[str, float]]:
    """The Figure 7/8 grid executed through :mod:`repro.sweep`.

    Returns the same mapping (same keys, same insertion order, same
    values) as :func:`_packing_vs_chained` — only wall-clock differs.
    """
    from ..sweep import run_sweep

    result = run_sweep(
        spec, workers=workers, shard_size=shard_size, engine=engine
    )
    results: Dict[str, Dict[str, float]] = {}
    for cell, row in zip(result.cells, result.rows):
        name = f"{cell.x}Q{cell.y}"
        entry = results.setdefault(name, {})
        entry[f"{cell.style} model"] = row["model_mbps"]
        entry[f"{cell.style} measured"] = row["mbps"]
    return results


def figure7(
    workers: int = 1, shard_size=None, engine: str = "cell"
) -> Dict[str, Dict[str, float]]:
    """Buffer-packing vs chained on the T3D (Figure 7).

    ``workers`` > 1 executes the grid through the sharded sweep engine
    (:mod:`repro.sweep`), and ``engine="batch"`` evaluates it through
    the vectorized batch engine; the returned mapping is identical.
    """
    if (workers and workers > 1) or engine != "cell":
        from ..sweep import figure7_spec

        return _packing_vs_chained_swept(
            figure7_spec(), workers, shard_size, engine
        )
    return _packing_vs_chained(t3d())


def figure8(
    workers: int = 1, shard_size=None, engine: str = "cell"
) -> Dict[str, Dict[str, float]]:
    """Buffer-packing vs chained on the Paragon (Figure 8).

    ``workers`` > 1 executes the grid through the sharded sweep engine
    (:mod:`repro.sweep`), and ``engine="batch"`` evaluates it through
    the vectorized batch engine; the returned mapping is identical.
    """
    if (workers and workers > 1) or engine != "cell":
        from ..sweep import figure8_spec

        return _packing_vs_chained_swept(
            figure8_spec(), workers, shard_size, engine
        )
    return _packing_vs_chained(paragon())


def machine_grid(machine_key: str) -> Dict[str, Dict[str, float]]:
    """The Figure 7/8 pattern grid on any registered machine.

    Same shape as :func:`figure7` — per pattern, model and measured
    rates for both styles — so machines beyond the paper's two get the
    same golden-pinned grid.
    """
    from ..machines.registry import MACHINE_FACTORIES

    return _packing_vs_chained(MACHINE_FACTORIES[machine_key]())


#: The (sizes, node count) regime grid collective goldens pin.
COLLECTIVE_GRID_BYTES: Tuple[int, ...] = (1024, 1 << 20)
COLLECTIVE_GRID_NODES: int = 16


def collective_table(machine_key: str) -> Dict[str, Dict[str, float]]:
    """Every collective algorithm priced on one machine (paper rates).

    Returns ``{op/algorithm: {"<nbytes>B model_ns": ns, ...}}`` across
    the regime grid, plus the model-driven selector's pick per regime
    (as an index into the algorithm list) — pinning both the numbers
    and the crossover structure.
    """
    from ..compiler.advisor import choose_algorithm
    from ..machines.registry import MACHINE_FACTORIES
    from ..runtime.collectives import ALGORITHMS, run_collective

    machine = MACHINE_FACTORIES[machine_key]()
    runtime = CommRuntime(machine, rates="paper")
    nodes = COLLECTIVE_GRID_NODES
    results: Dict[str, Dict[str, float]] = {}
    for op, algorithms in sorted(ALGORITHMS.items()):
        entry: Dict[str, float] = {}
        for nbytes in COLLECTIVE_GRID_BYTES:
            for algorithm in algorithms:
                run = run_collective(runtime, op, algorithm, nodes, nbytes)
                entry[f"{algorithm} {nbytes}B ns"] = run.total_ns
            advice = choose_algorithm(op, machine, nbytes, nodes)
            entry[f"auto {nbytes}B pick"] = float(
                algorithms.index(advice.algorithm)
            )
        results[op] = entry
    return results


def table5() -> List[Comparison]:
    """Strided loads vs strided stores (Table 5), all 16 cells."""
    machines = {"Cray T3D": t3d(), "Intel Paragon": paragon()}
    rows = []
    for (machine_name, op), styles in sorted(paperdata.TABLE5.items()):
        machine = machines[machine_name]
        model = machine.model(source="paper")
        x, y = _parse_q(op)
        for style_name, (paper_model, paper_measured) in sorted(styles.items()):
            style = OperationStyle(style_name)
            ours_model = model.estimate(x, y, style).mbps
            ours_measured = measure_q(machine, x, y, MEASURE_BYTES, style).mbps
            short = "T3D" if "T3D" in machine_name else "Paragon"
            rows.append(
                Comparison(
                    f"{short} {op} {style_name} model", paper_model, ours_model
                )
            )
            rows.append(
                Comparison(
                    f"{short} {op} {style_name} meas",
                    paper_measured,
                    ours_measured,
                )
            )
    return rows


# -- Table 6: application kernels -----------------------------------------------


def table6() -> List[Comparison]:
    """Application kernels on the 64-node T3D (Table 6)."""
    from ..apps import FEMKernel, FFT2D, SORKernel

    machine = t3d()
    kernels = {
        "transpose": FFT2D(machine),
        "FEM": FEMKernel(machine),
        "SOR": SORKernel(machine),
    }
    rows = []
    for name, kernel in kernels.items():
        report = kernel.report()
        paper_packing, paper_chained, paper_model = paperdata.TABLE6_T3D[name]
        rows.append(
            Comparison(
                f"{name} packing meas", paper_packing, report.packing_measured_mbps
            )
        )
        rows.append(
            Comparison(
                f"{name} chained meas", paper_chained, report.chained_measured_mbps
            )
        )
        rows.append(
            Comparison(
                f"{name} chained model", paper_model, report.chained_model_mbps
            )
        )
    return rows
