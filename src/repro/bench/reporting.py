"""Comparison reporting for the benchmark harness.

Each table/figure regeneration produces :class:`Comparison` rows of
paper value vs our value; :func:`render` prints them in a consistent
format (this is what lands in bench output and EXPERIMENTS.md), and
the ``check_*`` helpers express the pass criteria: we validate the
*shape* — who wins, by roughly what factor — and report the numeric
ratios honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Comparison", "render", "max_ratio_error", "all_within"]


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-ours row."""

    label: str
    paper: float
    ours: float

    @property
    def ratio(self) -> float:
        return self.ours / self.paper if self.paper else float("inf")


def render(title: str, rows: Sequence[Comparison], note: str = "") -> str:
    """Format a comparison block for bench output."""
    lines = [f"== {title} ==", f"{'':24} {'paper':>8} {'ours':>8} {'ratio':>6}"]
    for row in rows:
        lines.append(
            f"{row.label:24} {row.paper:8.1f} {row.ours:8.1f} {row.ratio:6.2f}"
        )
    if note:
        lines.append(note)
    return "\n".join(lines)


def max_ratio_error(rows: Sequence[Comparison]) -> float:
    """The worst |log-ratio| style deviation, as max(r, 1/r) - 1."""
    worst = 0.0
    for row in rows:
        r = row.ratio
        worst = max(worst, max(r, 1.0 / r) - 1.0)
    return worst


def all_within(rows: Sequence[Comparison], tolerance: float) -> bool:
    """Whether every row's ratio is within [1-tol, 1+tol]-ish bounds."""
    return max_ratio_error(rows) <= tolerance
