"""Benchmark harness: paper reference data, regeneration, reporting."""

from . import paperdata
from .accuracy import AccuracyCase, AccuracyReport, model_accuracy
from .experiments import (
    figure1,
    figure4,
    figure7,
    figure8,
    PATTERN_GRID,
    section341,
    section51,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from .reporting import Comparison, all_within, max_ratio_error, render

__all__ = [
    "AccuracyCase",
    "AccuracyReport",
    "all_within",
    "Comparison",
    "figure1",
    "figure4",
    "figure7",
    "figure8",
    "max_ratio_error",
    "model_accuracy",
    "paperdata",
    "PATTERN_GRID",
    "render",
    "section341",
    "section51",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
]
