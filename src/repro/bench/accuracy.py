"""Model-accuracy assessment: the paper's closing claim, quantified.

"Although simple, the model is highly accurate in the cases that we
have evaluated so far" (Section 7).  This module measures that claim
against our end-to-end runtime: for every pattern pair and strategy it
compares the model's estimate with the measured throughput and
summarizes the error distribution.

Two statistics matter:

* the *bias* — measured/model should be below but near 1 (the model is
  a tight upper bound, per its optimistic-overlap assumption);
* the *ranking accuracy* — when the model says chained beats packing,
  the measurement must agree: the model's purpose is choosing
  implementations, so ordering mistakes are the costly ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.operations import OperationStyle
from ..core.patterns import CONTIGUOUS, INDEXED, AccessPattern, strided
from ..machines.base import Machine
from ..runtime.engine import measure_q

__all__ = ["AccuracyCase", "AccuracyReport", "model_accuracy"]

#: The pattern grid the assessment covers.
GRID: List[Tuple[AccessPattern, AccessPattern]] = [
    (x, y)
    for x in (CONTIGUOUS, strided(16), strided(64), INDEXED)
    for y in (CONTIGUOUS, strided(16), strided(64), INDEXED)
]


@dataclass(frozen=True)
class AccuracyCase:
    """One grid cell: model estimate vs runtime measurement."""

    operation: str
    style: OperationStyle
    model_mbps: float
    measured_mbps: float

    @property
    def ratio(self) -> float:
        """measured / model; <= 1 when the model upper-bounds reality."""
        return self.measured_mbps / self.model_mbps


@dataclass(frozen=True)
class AccuracyReport:
    """Summary of the model-vs-measured comparison on one machine."""

    machine: str
    cases: Tuple[AccuracyCase, ...]
    ranking_agreements: int
    ranking_total: int

    @property
    def mean_ratio(self) -> float:
        return sum(case.ratio for case in self.cases) / len(self.cases)

    @property
    def worst_overprediction(self) -> float:
        """The smallest measured/model ratio (most optimistic cell)."""
        return min(case.ratio for case in self.cases)

    @property
    def overshoot_cases(self) -> int:
        """Cells where the measurement beat the model (should be ~0)."""
        return sum(1 for case in self.cases if case.ratio > 1.0)

    @property
    def ranking_accuracy(self) -> float:
        return self.ranking_agreements / self.ranking_total

    def render(self) -> str:
        lines = [
            f"model accuracy on {self.machine} "
            f"({len(self.cases)} cells):",
            f"  mean measured/model ratio: {self.mean_ratio:.2f}",
            f"  worst cell: {self.worst_overprediction:.2f}",
            f"  measurements beating the model: {self.overshoot_cases}",
            f"  strategy-ranking accuracy: "
            f"{self.ranking_agreements}/{self.ranking_total}",
        ]
        return "\n".join(lines)


def model_accuracy(machine: Machine, nbytes: int = 128 * 1024) -> AccuracyReport:
    """Assess the model against the runtime over the full grid."""
    model = machine.model(source="simulated")
    cases: List[AccuracyCase] = []
    agreements = 0
    total = 0
    for x, y in GRID:
        per_style: Dict[OperationStyle, AccuracyCase] = {}
        for style in OperationStyle:
            estimate = model.estimate(x, y, style).mbps
            measured = measure_q(machine, x, y, nbytes, style).mbps
            case = AccuracyCase(
                operation=f"{x.subscript}Q{y.subscript}",
                style=style,
                model_mbps=estimate,
                measured_mbps=measured,
            )
            cases.append(case)
            per_style[style] = case

        total += 1
        packing = per_style[OperationStyle.BUFFER_PACKING]
        chained = per_style[OperationStyle.CHAINED]
        model_prefers_chained = chained.model_mbps >= packing.model_mbps
        measured_prefers_chained = chained.measured_mbps >= packing.measured_mbps
        if model_prefers_chained == measured_prefers_chained:
            agreements += 1

    return AccuracyReport(
        machine=machine.name,
        cases=tuple(cases),
        ranking_agreements=agreements,
        ranking_total=total,
    )
