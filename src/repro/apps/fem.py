"""FEM iterative solver on a partitioned irregular mesh (Section 6.1.2).

The paper's FEM kernel comes from the CMU Quake project: a sparse
solver over a partitioned finite-element graph of an alluvial valley.
The structure that matters for communication is (a) an irregular but
well-partitioned graph — only a small fraction of each node's elements
lie on partition boundaries — and (b) halo exchanges driven by index
arrays: gather the owned boundary values (indexed loads), send, and
scatter into ghost slots (indexed stores) — ``wQw`` transfers.

Without the proprietary valley mesh we build a synthetic analogue: a
2-D triangulated sheet with jittered interior connectivity, strip-
partitioned so boundary fractions match a good partitioner.  The
functional side runs weighted-Jacobi iterations for the graph
Laplacian system and checks convergence; the measured side drives the
halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..compiler.classify import classify_offsets
from ..compiler.commgen import CommOp, CommPlan
from ..machines.base import Machine
from .base import ApplicationKernel

__all__ = ["FEMesh", "FEMSolver", "FEMKernel"]


@dataclass(frozen=True)
class FEMesh:
    """A partitioned irregular mesh.

    Attributes:
        edges: (m, 2) vertex pairs.
        partition: Owner node of each vertex.
        n_nodes: Partition count.
    """

    edges: np.ndarray
    partition: np.ndarray
    n_nodes: int

    @property
    def n_vertices(self) -> int:
        return int(len(self.partition))

    @classmethod
    def synthetic_valley(
        cls,
        side: int = 64,
        n_nodes: int = 64,
        jitter: float = 0.05,
        seed: int = 20250705,
    ) -> "FEMesh":
        """A triangulated ``side x side`` sheet with irregular extras.

        Grid vertices are connected to their right/down/diagonal
        neighbours (a triangulation), plus a sprinkling of random
        short-range edges standing in for the irregular refinement of
        a real alluvial-valley mesh.  Vertices are strip-partitioned.
        """
        n = side * side
        rng = np.random.default_rng(seed)
        index = np.arange(n).reshape(side, side)

        edges: List[Tuple[int, int]] = []
        edges.extend(zip(index[:, :-1].ravel(), index[:, 1:].ravel()))
        edges.extend(zip(index[:-1, :].ravel(), index[1:, :].ravel()))
        edges.extend(zip(index[:-1, :-1].ravel(), index[1:, 1:].ravel()))

        extras = int(jitter * n)
        for __ in range(extras):
            v = int(rng.integers(0, n))
            dr = int(rng.integers(-2, 3))
            dc = int(rng.integers(-2, 3))
            r, c = divmod(v, side)
            r2, c2 = r + dr, c + dc
            if 0 <= r2 < side and 0 <= c2 < side:
                w = r2 * side + c2
                if w != v:
                    edges.append((v, w))

        edge_array = np.unique(
            np.sort(np.asarray(edges, dtype=np.int64), axis=1), axis=0
        )
        # Strip partition along rows (geometrically compact, so the
        # boundary fraction is small), then renumber vertices randomly
        # *within* each partition: mesh generators do not hand out
        # row-major ids, which is exactly why halo accesses are indexed.
        partition = ((np.arange(n) * n_nodes) // n).astype(np.int64)
        renumber = np.empty(n, dtype=np.int64)
        for node in range(n_nodes):
            mine = np.flatnonzero(partition == node)
            renumber[mine] = rng.permutation(mine)
        edge_array = np.sort(renumber[edge_array], axis=1)
        edge_array = np.unique(edge_array, axis=0)
        new_partition = np.empty(n, dtype=np.int64)
        new_partition[renumber] = partition
        return cls(edge_array, new_partition, n_nodes)

    def halo(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Boundary vertices each partition pair exchanges.

        Returns a map ``(src, dst) -> global vertex ids`` whose values
        src owns and dst reads (cut edges' src-side endpoints).
        """
        owners = self.partition
        u, v = self.edges[:, 0], self.edges[:, 1]
        cut = owners[u] != owners[v]
        halo: Dict[Tuple[int, int], set] = {}
        for a, b in self.edges[cut]:
            pa, pb = int(owners[a]), int(owners[b])
            halo.setdefault((pa, pb), set()).add(int(a))
            halo.setdefault((pb, pa), set()).add(int(b))
        return {
            pair: np.array(sorted(vertices), dtype=np.int64)
            for pair, vertices in halo.items()
        }

    def boundary_fraction(self) -> float:
        """Fraction of vertices on partition boundaries."""
        boundary: set = set()
        for vertices in self.halo().values():
            boundary.update(vertices.tolist())
        return len(boundary) / self.n_vertices


class FEMSolver:
    """Weighted-Jacobi iterations on the mesh's graph Laplacian.

    Solves ``(L + I) x = b`` — symmetric positive definite, so Jacobi
    with damping converges — as a stand-in for the Quake project's
    iterative solver.  The sparse matrix-vector product is organized
    exactly as the distributed code's would be: local rows times the
    full vector, with boundary values arriving via the halo exchange.
    """

    def __init__(self, mesh: FEMesh, damping: float = 0.7) -> None:
        self.mesh = mesh
        self.damping = damping
        n = mesh.n_vertices
        u, v = mesh.edges[:, 0], mesh.edges[:, 1]
        degree = np.zeros(n)
        np.add.at(degree, u, 1.0)
        np.add.at(degree, v, 1.0)
        self.degree = degree
        self.diagonal = degree + 1.0

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """(L + I) x computed edge-wise."""
        u, v = self.mesh.edges[:, 0], self.mesh.edges[:, 1]
        result = self.diagonal * x
        np.subtract.at(result, u, x[v])
        np.subtract.at(result, v, x[u])
        return result

    def solve(
        self, b: np.ndarray, iterations: int = 200
    ) -> Tuple[np.ndarray, float]:
        """Damped-Jacobi solve; returns (solution, residual norm)."""
        x = np.zeros_like(b)
        for __ in range(iterations):
            residual = b - self.matvec(x)
            x = x + self.damping * residual / self.diagonal
        return x, float(np.linalg.norm(b - self.matvec(x)))


class FEMKernel(ApplicationKernel):
    """The FEM halo-exchange communication kernel (Table 6 row 2)."""

    name = "FEM"
    scheduled = True  # neighbour exchanges are near-contention-free

    def __init__(
        self,
        machine: Machine,
        n_nodes: int = 64,
        side: int = 256,
        seed: int = 20250705,
    ) -> None:
        super().__init__(machine, n_nodes)
        self.mesh = FEMesh.synthetic_valley(
            side=side, n_nodes=n_nodes, seed=seed
        )

    def communication_plan(self) -> CommPlan:
        ops = []
        for (src, dst), vertices in sorted(self.mesh.halo().items()):
            local = vertices - vertices.min()
            pattern = classify_offsets(local)
            # Gather of scattered owned values, scatter into ghost
            # slots: indexed on both sides for irregular meshes.
            ops.append(CommOp(src, dst, pattern, pattern, len(vertices)))
        return CommPlan(ops, name="fem-halo")
