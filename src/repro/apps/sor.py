"""Successive over-relaxation with ghost-row exchange (Section 6.1.3).

SOR distributes the grid as contiguous blocks of rows and replicates a
one-row overlap between neighbours.  After each relaxation sweep the
overlap rows are exchanged in a shift pattern — contiguous transfers
(``1Q1``), the case where buffer packing loses least because there is
nothing to pack.

:class:`SORSolver` is a functional red-black SOR for the 2-D Poisson
problem, validated for convergence; :class:`SORKernel` measures the
ghost exchange at the paper's 256x256 scale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..compiler.commgen import CommOp, CommPlan
from ..core.patterns import CONTIGUOUS
from ..machines.base import Machine
from .base import ApplicationKernel

__all__ = ["SORSolver", "SORKernel"]


class SORSolver:
    """Red-black SOR for ``laplace(u) = f`` on the unit square.

    The sweep is organized by row blocks with ghost rows, exactly as
    the distributed code would run it; with one process the ghost
    exchange degenerates to row copies, which keeps the numerics
    testable while exercising the same data movement structure.
    """

    def __init__(self, n: int, omega: float = 1.7) -> None:
        if n < 3:
            raise ValueError(f"grid must be at least 3x3, got {n}")
        if not 0 < omega < 2:
            raise ValueError(f"SOR needs 0 < omega < 2, got {omega}")
        self.n = n
        self.omega = omega

    def sweep(self, u: np.ndarray, f: np.ndarray) -> None:
        """One in-place red-black SOR sweep."""
        h2 = (1.0 / (self.n - 1)) ** 2
        for color in (0, 1):
            mask = np.zeros_like(u, dtype=bool)
            mask[1:-1, 1:-1] = (
                np.add.outer(np.arange(1, self.n - 1), np.arange(1, self.n - 1))
                % 2
                == color
            )
            neighbours = np.zeros_like(u)
            neighbours[1:-1, 1:-1] = (
                u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            )
            gauss = (neighbours - h2 * f) / 4.0
            u[mask] += self.omega * (gauss[mask] - u[mask])

    def solve(
        self, f: np.ndarray, iterations: int = 500
    ) -> Tuple[np.ndarray, float]:
        """Run ``iterations`` sweeps from zero; returns (u, residual)."""
        u = np.zeros((self.n, self.n))
        for __ in range(iterations):
            self.sweep(u, f)
        h2 = (1.0 / (self.n - 1)) ** 2
        interior = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4.0 * u[1:-1, 1:-1]
        ) / h2
        residual = float(np.linalg.norm(interior - f[1:-1, 1:-1]))
        return u, residual


class SORKernel(ApplicationKernel):
    """The SOR ghost-exchange communication kernel (Table 6 row 3).

    Each node holds ``n / n_nodes`` rows and exchanges one overlap row
    with each neighbour per relaxation step: a cyclic shift of
    contiguous ``n``-word messages.
    """

    name = "SOR"
    scheduled = True

    def __init__(self, machine: Machine, n: int = 256, n_nodes: int = 64) -> None:
        super().__init__(machine, n_nodes)
        if n % n_nodes:
            raise ValueError(f"{n_nodes} nodes must divide n={n}")
        self.n = n

    def communication_plan(self) -> CommPlan:
        row_words = self.n  # one double per grid point
        ops = []
        for node in range(self.n_nodes):
            down = (node + 1) % self.n_nodes
            up = (node - 1) % self.n_nodes
            ops.append(CommOp(node, down, CONTIGUOUS, CONTIGUOUS, row_words))
            ops.append(CommOp(node, up, CONTIGUOUS, CONTIGUOUS, row_words))
        return CommPlan(ops, name="sor-ghost-exchange")
