"""Shared harness for the Section 6 application kernels.

Each kernel produces a :class:`~repro.compiler.commgen.CommPlan` for
its communication step and (optionally) a functional implementation of
its computation so the decomposition can be validated numerically.
:class:`ApplicationKernel` turns the plan into the three Table 6
columns: buffer-packing measured, chained measured, and chained model.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..compiler.commgen import CommPlan
from ..core.operations import OperationStyle
from ..machines.base import Machine
from ..runtime.collective import StepResult
from ..runtime.engine import CommRuntime
from ..runtime.libraries import (
    LibraryProfile,
    lowlevel_profile,
    packing_profile,
)

__all__ = ["KernelReport", "ApplicationKernel"]


@dataclass(frozen=True)
class KernelReport:
    """The Table 6 row for one kernel on one machine."""

    kernel: str
    machine: str
    packing_measured_mbps: float
    chained_measured_mbps: float
    chained_model_mbps: float

    def __str__(self) -> str:
        return (
            f"{self.kernel} on {self.machine}: "
            f"packing {self.packing_measured_mbps:.1f}, "
            f"chained {self.chained_measured_mbps:.1f} "
            f"(model {self.chained_model_mbps:.1f}) MB/s per node"
        )


class ApplicationKernel:
    """Base class: a named kernel with a communication plan.

    Subclasses implement :meth:`communication_plan` (and usually a
    functional ``run``/``solve`` used by the correctness tests).
    """

    name = "kernel"

    def __init__(self, machine: Machine, n_nodes: int = 64) -> None:
        self.machine = machine
        self.n_nodes = n_nodes

    # -- to implement -------------------------------------------------------

    def communication_plan(self) -> CommPlan:
        raise NotImplementedError

    #: Whether the step can be phase-scheduled to avoid link contention.
    scheduled = True

    # -- measurement ----------------------------------------------------------

    def _step(self, library: LibraryProfile):
        from ..runtime.planstep import PlanStep

        runtime = CommRuntime(self.machine, library=library)
        return PlanStep(
            runtime, self.communication_plan(), scheduled=self.scheduled
        )

    def measure(self, style: OperationStyle) -> StepResult:
        """Run the communication step end to end (Table 6 'measured').

        Executes the full plan — every message shape and size — via
        :class:`~repro.runtime.planstep.PlanStep`.
        """
        if style is OperationStyle.BUFFER_PACKING:
            library = packing_profile()
        else:
            library = lowlevel_profile()
        return self._step(library).run(style)

    def model_estimate(self, style: OperationStyle) -> float:
        """The copy-transfer model's prediction for the step (MB/s)."""
        plan = self.communication_plan()
        dominant = plan.dominant_op()
        congestion = self._step(lowlevel_profile()).congestion()
        if len(self.machine.published):
            # The published Table 4 has columns for congestion 1, 2 and
            # 4; use the nearest one to the step's actual congestion.
            columns = sorted(self.machine.published_network.get("data", {2: 0.0}))
            nearest = min(columns, key=lambda c: abs(c - congestion))
            model = self.machine.model(source="paper", congestion=nearest)
        else:
            # Machines without published calibration (user-defined
            # what-ifs) fall back to the simulator-derived table.
            model = self.machine.model(
                source="simulated", congestion=int(round(congestion))
            )
        return model.estimate(dominant.x, dominant.y, style).mbps

    def report(self) -> KernelReport:
        """The full Table 6 row."""
        return KernelReport(
            kernel=self.name,
            machine=self.machine.name,
            packing_measured_mbps=self.measure(
                OperationStyle.BUFFER_PACKING
            ).per_node_mbps,
            chained_measured_mbps=self.measure(
                OperationStyle.CHAINED
            ).per_node_mbps,
            chained_model_mbps=self.model_estimate(OperationStyle.CHAINED),
        )
