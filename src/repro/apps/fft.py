"""The 2-D FFT with distributed transpose (Sections 2, 5.2, 6.1.1).

A 2-D FFT over an ``n x n`` complex array factors into 1-D FFTs over
the rows, a transpose, 1-D FFTs over the (former) columns, and a final
transpose.  With rows block-distributed the 1-D FFTs are entirely
local and cache-friendly; *all* the awkward memory traffic sits in the
transpose — the paper's motivating example for memory-system-aware
communication.

:class:`FFT2D` provides:

* a *functional* distributed implementation (`run`) that really
  computes the FFT through the block decomposition and the transpose
  communication plan, validated against ``numpy.fft.fft2``;
* the *communication step* of the transpose for the Table 6 / Table 5
  measurements, at the paper's 1024x1024-complex scale by default;
* a compute-vs-communication :meth:`FFT2D.breakdown` quantifying the
  paper's claim that the transpose dominates the memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.commgen import CommPlan, transpose_2d
from ..core.operations import OperationStyle
from ..machines.base import Machine
from .base import ApplicationKernel

__all__ = ["FFT2D", "FFTBreakdown", "distributed_transpose"]

#: Sustained MFLOP rate of one node on cache-resident 1-D FFTs.  The
#: 150 MHz Alpha 21064 sustained a few tens of MFLOPS on FFT kernels;
#: the precise value only shifts the compute/communication split.
DEFAULT_NODE_MFLOPS = 40.0


def distributed_transpose(blocks: list) -> list:
    """Functionally transpose an array stored as per-node row blocks.

    ``blocks[p]`` holds node p's rows.  Returns the row blocks of the
    transposed array, moving each patch between nodes the way the
    transpose communication step does.
    """
    n_nodes = len(blocks)
    rows_per_node = blocks[0].shape[0]
    out = [np.empty_like(blocks[0]) for __ in range(n_nodes)]
    for src in range(n_nodes):
        for dst in range(n_nodes):
            # Patch of A owned by src destined for dst: its columns
            # dst*rows_per_node ... — transposed into dst's rows.
            patch = blocks[src][
                :, dst * rows_per_node : (dst + 1) * rows_per_node
            ]
            out[dst][:, src * rows_per_node : (src + 1) * rows_per_node] = patch.T
    return out


@dataclass(frozen=True)
class FFTBreakdown:
    """Compute-vs-communication split of one distributed 2-D FFT.

    The paper's motivating observation (Section 2): the 1-D FFTs run
    with locality out of caches, so the *transpose communication* is
    where the memory system bites.  This quantifies it.
    """

    compute_us: float
    transpose_us: float
    style: OperationStyle

    @property
    def total_us(self) -> float:
        return self.compute_us + self.transpose_us

    @property
    def communication_fraction(self) -> float:
        return self.transpose_us / self.total_us

    def __str__(self) -> str:
        return (
            f"2-D FFT ({self.style.value} transposes): compute "
            f"{self.compute_us:.0f} us + transpose {self.transpose_us:.0f} us "
            f"-> {self.communication_fraction:.0%} communication"
        )


class FFT2D(ApplicationKernel):
    """The 2-D FFT kernel.

    Args:
        machine: Machine to measure on.
        n: Array extent (n x n complex elements).
        n_nodes: Partition size; must divide ``n``.
        loop_order: Transpose implementation choice (Figure 9):
            ``"row"`` = contiguous loads + strided stores (``1Qn``),
            ``"col"`` = strided loads + contiguous stores (``nQ1``).
    """

    name = "transpose"
    scheduled = True  # complete exchanges schedule well on tori [8]

    def __init__(
        self,
        machine: Machine,
        n: int = 1024,
        n_nodes: int = 64,
        loop_order: str = "row",
    ) -> None:
        super().__init__(machine, n_nodes)
        if n % n_nodes:
            raise ValueError(f"{n_nodes} nodes must divide n={n}")
        self.n = n
        self.loop_order = loop_order

    def communication_plan(self) -> CommPlan:
        return transpose_2d(
            self.n,
            self.n,
            self.n_nodes,
            element_words=2,  # complex: 2 words per element
            loop_order=self.loop_order,
            name=f"fft-transpose-{self.n}",
        )

    # -- functional implementation ------------------------------------------

    def run(self, data: np.ndarray) -> np.ndarray:
        """Compute the 2-D FFT of ``data`` through the decomposition.

        Splits the array into row blocks, runs local row FFTs,
        transposes via the communication pattern, runs the second set
        of row FFTs, and transposes back.
        """
        if data.shape != (self.n, self.n):
            raise ValueError(f"expected a {self.n}x{self.n} array")
        rows_per_node = self.n // self.n_nodes
        blocks = [
            np.fft.fft(data[p * rows_per_node : (p + 1) * rows_per_node, :], axis=1)
            for p in range(self.n_nodes)
        ]
        blocks = distributed_transpose(blocks)
        blocks = [np.fft.fft(block, axis=1) for block in blocks]
        blocks = distributed_transpose(blocks)
        return np.vstack(blocks)

    # -- performance breakdown ------------------------------------------------

    def breakdown(
        self,
        style: OperationStyle = OperationStyle.CHAINED,
        node_mflops: float = DEFAULT_NODE_MFLOPS,
    ) -> FFTBreakdown:
        """Estimate one full 2-D FFT: two local passes + two transposes.

        Per node and pass: ``n / P`` rows of ``5 n log2(n)`` flops each
        (the standard complex-FFT operation count); the transposes come
        from the measured communication step.
        """
        rows_per_node = self.n // self.n_nodes
        flops_per_pass = rows_per_node * 5.0 * self.n * np.log2(self.n)
        compute_us = 2.0 * flops_per_pass / node_mflops  # MFLOPS -> us
        step = self.measure(style)
        transpose_us = 2.0 * step.step_ns / 1000.0
        return FFTBreakdown(
            compute_us=compute_us, transpose_us=transpose_us, style=style
        )
