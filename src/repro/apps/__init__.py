"""The paper's three application kernels (Section 6).

* :class:`~repro.apps.fft.FFT2D` — 2-D FFT with distributed transpose;
* :class:`~repro.apps.fem.FEMKernel` — FEM solver halo exchange on a
  partitioned irregular mesh;
* :class:`~repro.apps.sor.SORKernel` — SOR ghost-row exchange.

Each provides a functional implementation (validated numerically) and
the Table 6 measurement harness.
"""

from .base import ApplicationKernel, KernelReport
from .fem import FEMesh, FEMKernel, FEMSolver
from .fft import FFT2D, FFTBreakdown, distributed_transpose
from .sor import SORKernel, SORSolver

__all__ = [
    "ApplicationKernel",
    "distributed_transpose",
    "FEMesh",
    "FEMKernel",
    "FEMSolver",
    "FFT2D",
    "FFTBreakdown",
    "KernelReport",
    "SORKernel",
    "SORSolver",
]
