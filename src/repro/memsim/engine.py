"""The memory-system timeline engine.

Executes the optimized transfer loops of Section 3.2 — local copies,
load-sends, receive-stores, deposits, DMA fetches — against the node's
DRAM, cache, write buffer and prefetch units, and reports how long the
stream took.  This is the "live system" our measurements run on, in
place of the paper's T3D and Paragon hardware.

The engine tracks a small set of clocks:

* ``cpu_t`` — the processor's instruction stream;
* ``dram_free`` — when the (single, non-interleaved) DRAM is next idle;
* a bounded queue of posted stores that drain to DRAM in batches
  (the write-back queue); the CPU stalls only when the queue is full;
* a bounded set of outstanding pipelined loads (i860 ``pfld`` /
  prefetch queue) or read-ahead line prefetches (T3D RDAL).

Blocking loads (Alpha 21064) pay full DRAM latency; posted writes pay
only occupancy.  That asymmetry — plus open-page hits and line
merging — is what makes strided stores cheap on the T3D and pipelined
strided loads comparatively cheap on the Paragon, reproducing the
Figure 4 cross-over *mechanistically*.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

from ..trace.tracer import current_tracer
from .cache import Cache
from .config import WORD_BYTES, NodeConfig
from .dram import DRAM
from .streams import AccessStream

__all__ = ["KernelResult", "MemoryEngine", "ENGINE_VERSION"]

#: Semantic version of the timeline rules.  Bump whenever a change can
#: alter any kernel's timing or hit rates — it is part of every
#: calibration cache key (see :mod:`repro.caching`), so bumping it
#: orphans stale cached tables.  "2": page-kick boundary accounting and
#: read-ahead window eviction fixes.
ENGINE_VERSION = "2"

#: Ratio of MB (1e6 bytes) to ns for MB/s conversion: bytes / ns * 1000.
_NS_PER_S = 1e9


@dataclass(frozen=True)
class KernelResult:
    """The outcome of running one transfer loop.

    Attributes:
        ns: Total wall-clock time of the loop in nanoseconds.
        nwords: Payload words moved.
        cache_hit_rate: Data-cache hit rate over the run.
        dram_page_hit_rate: DRAM open-page hit rate over the run.
    """

    ns: float
    nwords: int
    cache_hit_rate: float = 0.0
    dram_page_hit_rate: float = 0.0

    @property
    def mbps(self) -> float:
        """Payload throughput in MB/s (MB = 1e6 bytes, as in the paper)."""
        if self.ns <= 0:
            return float("inf")
        return self.nwords * WORD_BYTES / self.ns * _NS_PER_S / 1e6


class MemoryEngine:
    """Runs transfer loops on one node's memory system.

    Engines are cheap to construct and hold no state between runs;
    every ``run_*`` method starts from cold caches and closed DRAM
    pages, like the paper's steady-state measurements on large blocks
    (the cold-start transient is negligible at the default stream
    lengths).

    Args:
        node: The node's hardware parameters.
        occupancy_scale: Multiplier on every DRAM occupancy, used to
            model bus-arbitration losses when a second master (DMA,
            co-processor) interleaves fine-grained accesses
            (Section 5.1.4 reports up to 50% on the Paragon — scale 2.0
            halves effective memory bandwidth).
    """

    def __init__(self, node: NodeConfig, occupancy_scale: float = 1.0) -> None:
        self.node = node
        self.occupancy_scale = occupancy_scale
        self._reset()

    # -- run state -----------------------------------------------------------

    def _reset(self) -> None:
        self.dram = DRAM(self.node.dram)
        self.cache = Cache(self.node.cache)
        self.cpu_t = 0.0
        self.dram_free = 0.0
        #: Write-buffer drains performed this run (observability only).
        self.drains = 0
        # Posted stores waiting to drain: list of (address, words) entries.
        self._store_batch: list = []
        self._batch_drained_at = 0.0
        # Outstanding pipelined loads: completion times, oldest first.
        self._pipe: Deque[float] = deque()
        # Read-ahead: prefetched line address -> data-ready time.
        self._prefetched: Dict[int, float] = {}

    def _occ(self, ns: float) -> float:
        return ns * self.occupancy_scale

    # -- store path ------------------------------------------------------------

    def _drain_stores(self) -> None:
        """Drain the posted-store batch to DRAM back to back."""
        if not self._store_batch:
            return
        self.drains += 1
        start = max(self.dram_free, self._batch_drained_at)
        for address, words in self._store_batch:
            occupancy = self.dram.write_burst(address, words)
            start = max(start, self.dram_free)
            self.dram_free = start + self._occ(occupancy)
            start = self.dram_free
        self._store_batch = []
        self._batch_drained_at = self.dram_free

    def _enqueue_writeback(self, line_address: int) -> None:
        """Queue a dirty line's write-back behind the posted stores."""
        self._store_batch.append((line_address, self.node.cache.line_words))
        if len(self._store_batch) >= self.node.write_buffer.depth:
            self.cpu_t = max(self.cpu_t, self._batch_drained_at)
            self._drain_stores()

    def _store(self, address: int) -> None:
        """One posted word store through the write buffer."""
        cfg = self.node
        self.cpu_t += cfg.processor.store_issue_cycles * cfg.processor.cycle_ns
        if cfg.cache.write_policy == "through":
            self.cache.lookup_store(address)
        elif cfg.cache.write_policy == "back":
            # Write-allocate: a miss fills the line (blocking read) and
            # the store dirties it; the word itself stays in the cache.
            hit, evicted = self.cache.store_allocate(address)
            if not hit:
                line = (address // cfg.cache.line_bytes) * cfg.cache.line_bytes
                self._load_blocking(line, cfg.cache.line_words)
            if evicted is not None and evicted[1]:
                self._enqueue_writeback(evicted[0])
            return

        if cfg.write_buffer.merge and self._store_batch:
            last_address, last_words = self._store_batch[-1]
            line = cfg.cache.line_bytes
            if last_address // line == address // line:
                self._store_batch[-1] = (last_address, last_words + 1)
                return
        self._store_batch.append((address, 1))
        if len(self._store_batch) >= cfg.write_buffer.depth:
            # The CPU may run one batch ahead of the drain; it stalls
            # until the previous batch has left the queue.
            self.cpu_t = max(self.cpu_t, self._batch_drained_at)
            self._drain_stores()

    # -- load path ----------------------------------------------------------------

    def _dram_read(self, address: int, words: int) -> tuple:
        """Schedule a demand read; returns (data_ready_t, ) side effects."""
        start = max(self.cpu_t, self.dram_free)
        latency, occupancy = self.dram.read_burst(address, words)
        self.dram_free = start + self._occ(occupancy)
        return start + latency

    def _load_blocking(self, address: int, words: int) -> None:
        self.cpu_t = max(self.cpu_t, self._dram_read(address, words))

    def _load_pipelined(self, address: int, words: int, depth: int) -> None:
        if len(self._pipe) >= depth:
            self.cpu_t = max(self.cpu_t, self._pipe.popleft())
        start = max(self.cpu_t, self.dram_free)
        latency, occupancy = self.dram.read_burst(address, words)
        self.dram_free = start + self._occ(occupancy)
        self._pipe.append(start + latency)

    def _load_readahead(self, line_address: int) -> None:
        """A line fill under RDAL: consume a prefetch, schedule more."""
        cfg = self.node
        line_bytes = cfg.cache.line_bytes
        words = cfg.cache.line_words
        ready = self._prefetched.pop(line_address, None)
        if ready is not None:
            self.cpu_t = max(self.cpu_t, ready)
        else:
            self._load_blocking(line_address, words)
        for ahead in range(1, cfg.read_ahead.depth + 1):
            next_line = line_address + ahead * line_bytes
            if next_line not in self._prefetched:
                start = max(self.cpu_t, self.dram_free)
                latency, occupancy = self.dram.read_burst(next_line, words)
                self.dram_free = start + self._occ(occupancy)
                self._prefetched[next_line] = start + latency
        # The read-ahead unit tracks one stream window: lines at or
        # behind the current fill, or beyond the look-ahead horizon,
        # fall out of the detector.  Without this eviction a stream
        # that jumps and returns would collect free hits from fills
        # issued arbitrarily long ago, and the table would grow without
        # bound over a long run.
        horizon = line_address + cfg.read_ahead.depth * line_bytes
        if len(self._prefetched) > cfg.read_ahead.depth:
            self._prefetched = {
                line: when
                for line, when in self._prefetched.items()
                if line_address < line <= horizon
            }

    def _load(
        self, address: int, readahead_active: bool, force_cached: bool = False
    ) -> None:
        """One data load through cache / prefetch units.

        ``force_cached`` routes the load through the cache even when
        pipelined loads bypass it — integer index-array loads use plain
        cached loads, not the floating-point pipelined path.
        """
        cfg = self.node
        self.cpu_t += cfg.processor.load_issue_cycles * cfg.processor.cycle_ns
        depth = cfg.processor.pipelined_load_depth

        if (
            depth > 0
            and cfg.processor.pipelined_loads_bypass_cache
            and not force_cached
        ):
            self._load_pipelined(address, 1, depth)
            return

        if cfg.cache.write_policy == "back":
            hit, evicted = self.cache.load_allocate(address)
            if evicted is not None and evicted[1]:
                self._enqueue_writeback(evicted[0])
            if hit:
                self.cpu_t += cfg.cache.hit_ns
                return
            line_address = (address // cfg.cache.line_bytes) * cfg.cache.line_bytes
            words = cfg.cache.line_words
            if readahead_active:
                self._load_readahead(line_address)
            elif depth > 0:
                self._load_pipelined(line_address, words, depth)
            else:
                self._load_blocking(line_address, words)
            return

        if self.cache.lookup_load(address):
            self.cpu_t += cfg.cache.hit_ns
            return

        line_address = (address // cfg.cache.line_bytes) * cfg.cache.line_bytes
        words = cfg.cache.line_words
        if readahead_active:
            self._load_readahead(line_address)
        elif depth > 0:
            self._load_pipelined(line_address, words, depth)
        else:
            self._load_blocking(line_address, words)

    def _finish(self, nwords: int) -> KernelResult:
        """Drain queues and package the result."""
        self._drain_stores()
        while self._pipe:
            self.cpu_t = max(self.cpu_t, self._pipe.popleft())
        ns = max(self.cpu_t, self.dram_free)
        self._emit_counters()
        return KernelResult(
            ns=ns,
            nwords=nwords,
            cache_hit_rate=self.cache.hit_rate,
            dram_page_hit_rate=self.dram.hit_rate,
        )

    def _emit_counters(self) -> None:
        """Hand this run's hit/drain/page tallies to an active tracer."""
        tracer = current_tracer()
        if tracer is None:
            return
        metrics = tracer.metrics
        metrics.inc("memsim.kernels")
        metrics.inc("memsim.cache_hits", self.cache.hits)
        metrics.inc("memsim.cache_misses", self.cache.misses)
        metrics.inc("memsim.dirty_evictions", self.cache.dirty_evictions)
        metrics.inc("memsim.page_hits", self.dram.page_hits)
        metrics.inc("memsim.page_misses", self.dram.page_misses)
        metrics.inc("memsim.wb_drains", self.drains)

    def _readahead_active(self, stream: AccessStream, writes_to_dram: bool) -> bool:
        cfg = self.node.read_ahead
        if not cfg.enabled or not stream.pattern.is_contiguous:
            return False
        return cfg.survives_writes or not writes_to_dram

    def _index_load(self, address: int) -> None:
        """A 4-byte index-array load (contiguous, usually cache hits)."""
        cfg = self.node.processor
        self.cpu_t += cfg.index_extra_cycles * cfg.cycle_ns
        self._load(address, readahead_active=False, force_cached=True)

    # -- public kernels ------------------------------------------------------------

    def run_load_stream(self, read: AccessStream) -> KernelResult:
        """A pure load stream: the Section 3.5.1 'local read bandwidth'.

        No stores at all, so contiguous streams keep their read-ahead
        benefit — this is the kernel behind the Cray documentation's
        "55 MB/s for non-contiguous single word transfers, and up to
        320 MB/s for contiguous reading of cache lines with read-ahead".
        """
        self._reset()
        cfg = self.node.processor
        overhead = cfg.loop_overhead_cycles * cfg.cycle_ns
        readahead = self._readahead_active(read, writes_to_dram=False)
        read_index = read.index_addresses
        for i in range(read.nwords):
            if read_index is not None:
                self._index_load(int(read_index[i]))
            self._load(int(read.addresses[i]), readahead)
            self.cpu_t += overhead
        return self._finish(read.nwords)

    def run_store_stream(self, write: AccessStream) -> KernelResult:
        """A pure store stream through the write buffer."""
        self._reset()
        cfg = self.node.processor
        overhead = cfg.loop_overhead_cycles * cfg.cycle_ns
        write_index = write.index_addresses
        for i in range(write.nwords):
            if write_index is not None:
                self._index_load(int(write_index[i]))
            self._store(int(write.addresses[i]))
            self.cpu_t += overhead
        return self._finish(write.nwords)

    def load_latency_ns(self, address: int = 0) -> float:
        """Load-to-use latency of one cold load from main memory.

        The critical word's DRAM latency (the rest of the line fill
        streams behind it).  The paper quotes ~150 ns for the T3D
        (Section 3.5.1).
        """
        self._reset()
        latency, __ = self.dram.read(address)
        return latency + self.node.cache.hit_ns

    def run_copy(self, read: AccessStream, write: AccessStream) -> KernelResult:
        """A local memory-to-memory copy ``xCy``: unrolled load/store loop."""
        if read.nwords != write.nwords:
            raise ValueError("read and write streams must have equal length")
        self._reset()
        cfg = self.node.processor
        overhead = cfg.loop_overhead_cycles * cfg.cycle_ns
        readahead = self._readahead_active(read, writes_to_dram=True)
        read_index = read.index_addresses
        write_index = write.index_addresses
        for i in range(read.nwords):
            if read_index is not None:
                self._index_load(int(read_index[i]))
            self._load(int(read.addresses[i]), readahead)
            if write_index is not None:
                self._index_load(int(write_index[i]))
            self._store(int(write.addresses[i]))
            self.cpu_t += overhead
        return self._finish(read.nwords)

    def run_load_send(self, read: AccessStream) -> KernelResult:
        """A load-send ``xS0``: loads plus stores to the NI port.

        NI-port stores do not touch DRAM, so a contiguous load stream
        keeps its read-ahead benefit — the effect that makes ``1S0``
        faster than ``1C1`` on the T3D.
        """
        self._reset()
        cfg = self.node
        overhead = cfg.processor.loop_overhead_cycles * cfg.processor.cycle_ns
        readahead = self._readahead_active(read, writes_to_dram=False)
        read_index = read.index_addresses
        for i in range(read.nwords):
            if read_index is not None:
                self._index_load(int(read_index[i]))
            self._load(int(read.addresses[i]), readahead)
            self.cpu_t += cfg.ni.store_ns + overhead
        result = self._finish(read.nwords)
        return self._cap_by_ni(result)

    def run_receive_store(self, write: AccessStream) -> KernelResult:
        """A receive-store ``0Ry``: NI-port loads plus pattern stores."""
        self._reset()
        cfg = self.node
        overhead = cfg.processor.loop_overhead_cycles * cfg.processor.cycle_ns
        write_index = write.index_addresses
        for i in range(write.nwords):
            self.cpu_t += cfg.ni.load_ns
            if write_index is not None:
                self._index_load(int(write_index[i]))
            self._store(int(write.addresses[i]))
            self.cpu_t += overhead
        result = self._finish(write.nwords)
        return self._cap_by_ni(result)

    def run_deposit(self, write: AccessStream) -> KernelResult:
        """A receive-deposit ``0Dy``: the deposit engine stores incoming
        words (or address-data pairs) without processor involvement."""
        cfg = self.node
        if not cfg.deposit.supports(write.pattern.is_contiguous):
            raise ValueError(
                f"deposit engine ({cfg.deposit.patterns}) cannot handle "
                f"write pattern {write.pattern}"
            )
        self._reset()
        engine_t = 0.0
        merge = write.pattern.is_contiguous
        word_ns = (
            cfg.deposit.contiguous_word_ns if merge else cfg.deposit.pair_word_ns
        )
        line = cfg.cache.line_bytes
        pending_address = None
        pending_words = 0
        for i in range(write.nwords):
            engine_t += word_ns
            address = int(write.addresses[i])
            if merge and pending_address is not None:
                if pending_address // line == address // line:
                    pending_words += 1
                    continue
            if pending_address is not None:
                start = max(engine_t, self.dram_free)
                occ = self.dram.write_burst(pending_address, pending_words)
                self.dram_free = start + self._occ(occ)
            pending_address, pending_words = address, 1
        if pending_address is not None:
            start = max(engine_t, self.dram_free)
            occ = self.dram.write_burst(pending_address, pending_words)
            self.dram_free = start + self._occ(occ)
        self._emit_counters()
        result = KernelResult(
            ns=max(engine_t, self.dram_free),
            nwords=write.nwords,
            dram_page_hit_rate=self.dram.hit_rate,
        )
        return self._cap_by_ni(result)

    def run_fetch_send(self, nwords: int) -> KernelResult:
        """A fetch-send ``1F0``: the DMA streams a contiguous block.

        Crossing a DMA page boundary stalls the engine until a
        processor kick, per the Paragon line-transfer-unit behaviour.
        """
        cfg = self.node
        if not cfg.dma.present:
            raise ValueError(f"node {cfg.name!r} has no DMA engine")
        bytes_total = nwords * WORD_BYTES
        # A kick is owed per page *boundary crossed*, not per page of
        # payload: a transfer ending exactly on a boundary (bytes_total
        # an exact multiple of the page size) crosses one boundary
        # fewer than the quotient suggests.
        if bytes_total <= 0:
            pages_crossed = 0
        else:
            pages_crossed = (bytes_total - 1) // cfg.dma.page_bytes
        ns = (
            cfg.dma.setup_ns
            + nwords * cfg.dma.word_ns
            + pages_crossed * cfg.dma.page_kick_ns
        )
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("memsim.kernels")
            tracer.metrics.inc("memsim.dma_page_kicks", pages_crossed)
        return self._cap_by_ni(KernelResult(ns=ns, nwords=nwords))

    def _cap_by_ni(self, result: KernelResult) -> KernelResult:
        """Apply the NI FIFO bandwidth cap to a send/receive kernel."""
        fifo = self.node.ni.fifo_mbps
        if fifo <= 0:
            return result
        floor_ns = result.nwords * WORD_BYTES / fifo * 1000.0
        if result.ns >= floor_ns:
            return result
        return KernelResult(
            ns=floor_ns,
            nwords=result.nwords,
            cache_hit_rate=result.cache_hit_rate,
            dram_page_hit_rate=result.dram_page_hit_rate,
        )
