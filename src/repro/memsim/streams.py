"""Address-stream generators for the access patterns of Section 2.2.

A *stream* is the sequence of byte addresses an optimized transfer loop
touches: contiguous words, constant-stride words, or indexed words
driven by an index array.  Indexed streams model the paper's
application reality (FEM gather/scatter index arrays are partially
sorted) with a tunable *run length*: the expected number of consecutive
indices that land in the same DRAM-page-sized region before jumping to
a random one.

All generators are deterministic given a seed, so measured throughputs
are reproducible run to run — mirroring the paper's claim that its
measurements are "highly accurate and consistently reproducible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.patterns import AccessPattern, PatternKind
from .config import WORD_BYTES

__all__ = ["AccessStream", "make_stream", "DEFAULT_INDEX_RUN"]

#: Expected same-region run length for indexed streams.  2 reflects the
#: partial sortedness of real index arrays (FEM edge lists, sparse rows).
DEFAULT_INDEX_RUN = 2

#: Region size (bytes) used to generate indexed locality runs.  Small
#: enough that a run usually stays within one DRAM page on machines with
#: page-mode-friendly memory controllers.
_INDEX_REGION_BYTES = 256


@dataclass(frozen=True)
class AccessStream:
    """A concrete address stream for one side of a transfer.

    Attributes:
        pattern: The access pattern that generated the stream.
        addresses: Byte address of every data word, in access order.
        index_addresses: Byte addresses of index-array *elements* (4-byte
            ints) read alongside an indexed stream; ``None`` otherwise.
    """

    pattern: AccessPattern
    addresses: np.ndarray
    index_addresses: Optional[np.ndarray] = None

    @property
    def nwords(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def payload_bytes(self) -> int:
        """Bytes of useful data (index loads are overhead, not payload)."""
        return self.nwords * WORD_BYTES


def _indexed_word_offsets(
    nwords: int, run_length: int, rng: np.random.Generator
) -> np.ndarray:
    """Word offsets with page-local runs: random pages, short runs inside."""
    region_words = _INDEX_REGION_BYTES // WORD_BYTES
    n_regions = max(1, (nwords * 4) // region_words)
    offsets = np.empty(nwords, dtype=np.int64)
    position = 0
    while position < nwords:
        run = 1 + rng.geometric(1.0 / max(1, run_length)) - 1
        run = int(min(run, nwords - position, region_words))
        run = max(run, 1)
        region = int(rng.integers(0, n_regions))
        inside = rng.integers(0, region_words, size=run)
        offsets[position : position + run] = region * region_words + inside
        position += run
    return offsets


def make_stream(
    pattern: AccessPattern,
    nwords: int,
    base: int = 0,
    seed: int = 12345,
    index_run: int = DEFAULT_INDEX_RUN,
) -> AccessStream:
    """Generate the address stream for ``nwords`` accesses of ``pattern``.

    Fixed patterns (NI ports) have no memory addresses and raise; the
    engine handles those ends directly.
    """
    if pattern.kind is PatternKind.FIXED:
        raise ValueError("fixed patterns address a port, not memory")
    if nwords <= 0:
        raise ValueError(f"need a positive word count, got {nwords}")

    if pattern.kind is PatternKind.CONTIGUOUS:
        offsets = np.arange(nwords, dtype=np.int64)
        return AccessStream(pattern, base + offsets * WORD_BYTES)

    if pattern.kind is PatternKind.STRIDED:
        stride = pattern.stride
        block = pattern.block
        points = (nwords + block - 1) // block
        starts = np.arange(points, dtype=np.int64) * stride
        offsets = (starts[:, None] + np.arange(block, dtype=np.int64)).ravel()
        offsets = offsets[:nwords]
        return AccessStream(pattern, base + offsets * WORD_BYTES)

    # Indexed: data addresses from the locality model, plus the index
    # array itself, read contiguously as 4-byte elements.
    rng = np.random.default_rng(seed)
    offsets = _indexed_word_offsets(nwords, index_run, rng)
    index_addresses = np.arange(nwords, dtype=np.int64) * 4
    # Keep the index array in a disjoint region far above the data.
    span = int(offsets.max() + 1) * WORD_BYTES
    # Keep the index array in a disjoint region, offset by half a typical
    # DRAM page so it tends to land in its own bank on interleaved memory.
    index_base = base + span + (1 << 20) + 128
    return AccessStream(
        pattern,
        base + offsets * WORD_BYTES,
        index_addresses=index_base + index_addresses,
    )
