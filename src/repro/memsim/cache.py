"""Set-associative data cache with LRU replacement.

Covers the two first-level caches of the paper's machines: the Alpha
21064's 8 KB direct-mapped cache (T3D) and the i860XP's 16 KB 4-way
cache (Paragon).  Massively parallel nodes have *one* cache level
(Section 3.1), so there is no hierarchy to model.

Only the behaviour that matters to throughput is kept: hit/miss
classification and line installation.  Timing lives in the engine,
which charges a line fill to the DRAM on each miss.
"""

from __future__ import annotations

from typing import List

from .config import CacheConfig

__all__ = ["Cache"]


class Cache:
    """Tag store for one cache.

    >>> cache = Cache(CacheConfig(size_bytes=128, line_bytes=32,
    ...                           associativity=2))
    >>> cache.lookup_load(0)   # cold miss installs the line
    False
    >>> cache.lookup_load(8)   # same 32-byte line
    True
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.size_bytes % config.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if config.n_lines % config.associativity:
            raise ValueError("line count must be a multiple of associativity")
        self.config = config
        # One LRU-ordered list of tags per set; index 0 is LRU.
        self._sets: List[List[int]] = [[] for __ in range(config.n_sets)]
        # Dirty tags per set (write-back policy only).
        self._dirty: List[set] = [set() for __ in range(config.n_sets)]
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    def reset(self) -> None:
        for entry in self._sets:
            entry.clear()
        for entry in self._dirty:
            entry.clear()
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    def _locate(self, address: int) -> tuple:
        line = address // self.config.line_bytes
        set_index = line % self.config.n_sets
        tag = line // self.config.n_sets
        return set_index, tag

    def _line_address(self, set_index: int, tag: int) -> int:
        return (tag * self.config.n_sets + set_index) * self.config.line_bytes

    def _probe(self, set_index: int, tag: int, install_on_miss: bool) -> bool:
        ways = self._sets[set_index]
        if tag in ways:
            self.hits += 1
            ways.remove(tag)
            ways.append(tag)  # most recently used at the back
            return True
        self.misses += 1
        if install_on_miss:
            if len(ways) >= self.config.associativity:
                victim = ways.pop(0)
                self._dirty[set_index].discard(victim)
            ways.append(tag)
        return False

    def lookup_load(self, address: int) -> bool:
        """A load probe: installs the line on a miss. True on hit."""
        set_index, tag = self._locate(address)
        return self._probe(set_index, tag, install_on_miss=True)

    # -- write-back support ---------------------------------------------------

    def _install_tracking_victim(self, set_index: int, tag: int):
        """Install a line; return the evicted (address, dirty) or None."""
        ways = self._sets[set_index]
        evicted = None
        if len(ways) >= self.config.associativity:
            victim = ways.pop(0)
            dirty = victim in self._dirty[set_index]
            self._dirty[set_index].discard(victim)
            if dirty:
                self.dirty_evictions += 1
            evicted = (self._line_address(set_index, victim), dirty)
        ways.append(tag)
        return evicted

    def load_allocate(self, address: int):
        """A load under write-back: ``(hit, evicted)``.

        ``evicted`` is ``(line_address, dirty)`` for a displaced line,
        or ``None``; dirty victims must be written back to memory.
        """
        set_index, tag = self._locate(address)
        if self._probe(set_index, tag, install_on_miss=False):
            return True, None
        return False, self._install_tracking_victim(set_index, tag)

    def store_allocate(self, address: int):
        """A store under write-back (write-allocate): ``(hit, evicted)``.

        The line ends up present and dirty either way.
        """
        set_index, tag = self._locate(address)
        if self._probe(set_index, tag, install_on_miss=False):
            self._dirty[set_index].add(tag)
            return True, None
        evicted = self._install_tracking_victim(set_index, tag)
        self._dirty[set_index].add(tag)
        return False, evicted

    def lookup_store(self, address: int) -> bool:
        """A store probe under the configured write policy.

        * ``around``: never allocates; a hit only means the line was
          already present (it is updated in place).
        * ``through``: updates on hit, never allocates on miss.

        Either way the store also goes to memory; the return value only
        tells the engine whether the cached copy stayed coherent.
        """
        set_index, tag = self._locate(address)
        return self._probe(set_index, tag, install_on_miss=False)

    def invalidate_all(self) -> None:
        """Flush every line (T3D synchronization-point invalidation)."""
        for entry in self._sets:
            entry.clear()
        for entry in self._dirty:
            entry.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
