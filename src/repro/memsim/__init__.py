"""Node memory-system simulator (substrate for the paper's machines).

The paper measured real Cray T3D and Intel Paragon nodes; this package
replaces them with a cycle-approximate timeline simulator whose
components mirror the hardware Section 3.5 describes: open-page DRAM,
one level of cache, a write(-back) queue, read-ahead / pipelined-load
units, DMA engines and deposit engines.
"""

from .cache import Cache
from .config import (
    WORD_BYTES,
    CacheConfig,
    DepositConfig,
    DMAConfig,
    DRAMConfig,
    NIConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from .dram import DRAM
from .engine import KernelResult, MemoryEngine
from .node import DEFAULT_MEASURE_WORDS, NodeMemorySystem
from .report import TransferProfile, profile_copy, profile_load_send
from .streams import DEFAULT_INDEX_RUN, AccessStream, make_stream

__all__ = [
    "AccessStream",
    "Cache",
    "CacheConfig",
    "DEFAULT_INDEX_RUN",
    "DEFAULT_MEASURE_WORDS",
    "DepositConfig",
    "DMAConfig",
    "DRAM",
    "DRAMConfig",
    "KernelResult",
    "make_stream",
    "MemoryEngine",
    "NIConfig",
    "NodeConfig",
    "NodeMemorySystem",
    "ProcessorConfig",
    "profile_copy",
    "profile_load_send",
    "TransferProfile",
    "ReadAheadConfig",
    "WORD_BYTES",
    "WriteBufferConfig",
]
