"""Vectorized fast path for the memory-system timeline engine.

:class:`FastEngine` computes the same :class:`~repro.memsim.engine.KernelResult`
as :class:`~repro.memsim.engine.MemoryEngine` — same nanoseconds, same
hit rates — but replaces the per-word Python dispatch with three batch
stages over the whole address stream:

1. **Classification** (pure numpy): cache hit/miss per probe, the
   write-buffer's entry/merge/drain structure, and the DRAM open-page
   hit/miss of every memory operation.  None of these depend on the
   clocks, only on address order, so they vectorize exactly.
2. **Compilation**: the classified stream is reduced to a short array
   of timeline *events* — blocking line fills, pipelined fills,
   write-buffer drains, read-ahead fills — each carrying the processor
   time accumulated since the previous event.  Words that stay inside
   the cache or the write buffer produce no event at all.
3. **Replay**: one tight loop advances the engine's clocks (``cpu_t``,
   ``dram_free``, the posted-store drain point, the pipelined-load
   queue, the read-ahead window) over the event array.  The arithmetic
   is the scalar engine's, in the scalar engine's order, so results
   agree to float rounding (~1e-12 relative).

The fast path is an optimization, not a new model: the scalar
``MemoryEngine`` remains the reference oracle, and a stream that falls
outside the envelope below raises :class:`FastpathUnsupported` so
callers (see :class:`~repro.memsim.node.NodeMemorySystem`) fall back.

Supported envelope:

* cache write policies ``"around"`` and ``"through"`` (``"back"``'s
  dirty-eviction traffic couples the cache to the write buffer per
  word and stays on the oracle);
* set-associative caches either direct-mapped (exact classification
  for arbitrary address streams) or, for higher associativity, probe
  streams that never revisit an evicted line (monotone per channel,
  disjoint regions across channels — true of every stream the
  measurement harness generates);
* read-ahead on strictly contiguous load streams;
* write-buffer depth < 256 and read-ahead depth <= 16.

Every kernel of the Section 4 calibration grid on the built-in T3D and
Paragon configurations qualifies; ``tests/properties`` holds the
hypothesis parity suite that enforces oracle agreement.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..trace.tracer import current_tracer
from .config import WORD_BYTES, NodeConfig
from .engine import KernelResult, MemoryEngine
from .streams import AccessStream

__all__ = ["FastEngine", "FastpathUnsupported", "FASTPATH_VERSION"]

#: Bumped whenever fastpath semantics change; part of calibration cache keys.
FASTPATH_VERSION = "1"

# -- position keys -------------------------------------------------------------
#
# Every per-word action gets a key ``word * 64 + slot`` so increments,
# probes and memory operations from different channels interleave in
# exactly the scalar engine's program order.  Memory operations append
# an intra-slot index (``key * 256 + intra``) to order the several
# write bursts of one drain.

_S_PRE = 0        # constants before the index-read fill
_S_IDX_R = 2      # read-side index-array line fill
_S_DATA_PRE = 4   # constants before the data access
_S_DATA = 6       # data line fill / pipelined load / read-ahead consume
_S_SCHED = 8      # read-ahead prefetch fills (slots 8 .. 8+depth-1)
_S_POST = 24      # constants after the data access (NI port store)
_S_IDX_W_PRE = 26
_S_IDX_W = 28     # write-side index-array line fill
_S_STORE_PRE = 30
_S_STORE = 32     # write-buffer drain triggered by this word's store
_S_OVERHEAD = 34  # loop overhead

_MAX_READAHEAD_DEPTH = 16
_MAX_WB_DEPTH = 255

# Event opcodes replayed by the timeline loop.
_EV_BLOCKING = 0
_EV_DRAIN = 1
_EV_PIPE = 2
_EV_RA_CONSUME = 3
_EV_RA_SCHED = 4
_EV_FINAL_DRAIN = 5


class FastpathUnsupported(Exception):
    """The stream/config combination is outside the vectorized envelope."""


# -- vector helpers ------------------------------------------------------------


def _prev_equal_in_group(group: np.ndarray, value: np.ndarray) -> np.ndarray:
    """True where the nearest earlier element of the same group has equal value.

    The open-page rule for a multi-bank DRAM: group by bank, compare
    each access's page with the previous access to the same bank.
    """
    n = group.shape[0]
    hit = np.zeros(n, dtype=bool)
    if n == 0:
        return hit
    order = np.argsort(group, kind="stable")
    g = group[order]
    v = value[order]
    same = np.empty(n, dtype=bool)
    same[0] = False
    np.logical_and(g[1:] == g[:-1], v[1:] == v[:-1], out=same[1:])
    hit[order] = same
    return hit


def _last_install_matches(
    group: np.ndarray, value: np.ndarray, install: np.ndarray
) -> np.ndarray:
    """True where the latest earlier *installing* probe of the same group
    recorded the same value.

    This is the exact hit rule of a direct-mapped cache: the group is
    the set index, the value the line id, and probes that do not
    install (write-around / write-through stores) observe without
    changing state.
    """
    n = group.shape[0]
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits
    order = np.argsort(group, kind="stable")
    g = group[order]
    v = value[order]
    inst = install[order]
    idx = np.arange(n, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(g[1:], g[:-1], out=boundary[1:])
    seg = np.cumsum(boundary) - 1
    offset = seg * np.int64(n)
    # Marker of the most recent install seen so far, segment-disambiguated.
    marker = np.where(inst, idx + offset + 1, np.int64(0))
    cummax = np.maximum.accumulate(marker)
    prev = np.empty(n, dtype=np.int64)
    prev[0] = 0
    prev[1:] = cummax[:-1]
    valid = prev > offset
    prev_idx = np.where(valid, prev - offset - 1, 0)
    hit_sorted = valid & (v[prev_idx] == v)
    hits[order] = hit_sorted
    return hits


def _build_store_plan(
    addresses: np.ndarray, line_bytes: int, depth: int, merge: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reduce a posted-store stream to write-buffer entries and drains.

    Returns ``(entry_addr, entry_words, entry_drain, drain_word)``:
    one row per buffer entry (its burst address and merged word count),
    the index of the drain that flushes it (``len(drain_word)`` for the
    final drain at ``_finish``), and the word index whose store
    triggered each drain.

    Mirrors ``MemoryEngine._store``: an entry extends only while it is
    the newest entry of a non-empty buffer and the incoming store hits
    the same line; appending the ``depth``-th entry drains the whole
    buffer immediately, so the last entry of a full batch never merges.
    """
    n = addresses.shape[0]
    depth_eff = max(int(depth), 1)
    use_merge = bool(merge) and depth_eff > 1
    if use_merge:
        lines = addresses // line_bytes
        starts_mask = np.empty(n, dtype=bool)
        starts_mask[0] = True
        np.not_equal(lines[1:], lines[:-1], out=starts_mask[1:])
        starts = np.flatnonzero(starts_mask)
        if starts.shape[0] == n:
            use_merge = False  # no two consecutive stores share a line

    if not use_merge:
        entry_addr = addresses
        entry_words = np.ones(n, dtype=np.int64)
        n_drains = n // depth_eff
        drain_word = np.arange(1, n_drains + 1, dtype=np.int64) * depth_eff - 1
        entry_drain = np.minimum(
            np.arange(n, dtype=np.int64) // depth_eff, n_drains
        )
        return entry_addr, entry_words, entry_drain, drain_word

    addr_list = addresses.tolist()
    bounds = starts.tolist()
    bounds.append(n)
    e_addr: List[int] = []
    e_words: List[int] = []
    drain_words: List[int] = []
    drain_ecount: List[int] = []
    in_batch = 0
    for k in range(len(bounds) - 1):
        start, end = bounds[k], bounds[k + 1]
        e_addr.append(addr_list[start])
        e_words.append(1)
        in_batch += 1
        pos = start + 1
        if in_batch == depth_eff:
            drain_words.append(start)
            drain_ecount.append(len(e_addr))
            in_batch = 0
            if pos < end:
                e_addr.append(addr_list[pos])
                e_words.append(1)
                in_batch = 1
                pos += 1
        if in_batch and pos < end:
            e_words[-1] += end - pos
    n_entries = len(e_addr)
    entry_drain = np.searchsorted(
        np.asarray(drain_ecount, dtype=np.int64),
        np.arange(n_entries, dtype=np.int64),
        side="right",
    )
    return (
        np.asarray(e_addr, dtype=np.int64),
        np.asarray(e_words, dtype=np.int64),
        entry_drain,
        np.asarray(drain_words, dtype=np.int64),
    )


# -- probe channels ------------------------------------------------------------


class _ProbeChannel:
    """One interleaved stream of cache probes (data loads, index loads,
    or store lookups), with its per-word position slot."""

    def __init__(
        self,
        slot: int,
        addresses: np.ndarray,
        install: bool,
    ) -> None:
        self.slot = slot
        self.addresses = addresses
        self.install = install
        self.hits: Optional[np.ndarray] = None


def _classify_cache(
    node: NodeConfig, channels: List[_ProbeChannel]
) -> Tuple[int, int]:
    """Fill each channel's per-probe hit array; return (hits, misses).

    Direct-mapped caches get the exact forward-fill classification for
    arbitrary probe streams.  Higher associativity requires the
    monotone / disjoint-region envelope (see module docstring).
    """
    channels = [c for c in channels if c.addresses.shape[0]]
    if not channels:
        return 0, 0
    cache = node.cache
    if cache.size_bytes % cache.line_bytes or cache.n_lines % cache.associativity:
        raise FastpathUnsupported("malformed cache geometry")
    line_bytes = cache.line_bytes
    n_sets = cache.n_sets
    if n_sets <= 0:
        raise FastpathUnsupported("cache has no sets")

    if cache.associativity == 1:
        keys = np.concatenate(
            [
                np.arange(c.addresses.shape[0], dtype=np.int64) * 64 + c.slot
                for c in channels
            ]
        )
        lines = np.concatenate([c.addresses // line_bytes for c in channels])
        install = np.concatenate(
            [
                np.full(c.addresses.shape[0], c.install, dtype=bool)
                for c in channels
            ]
        )
        order = np.argsort(keys, kind="stable")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.shape[0], dtype=np.int64)
        hits_ordered = _last_install_matches(
            (lines % n_sets)[order], (lines // n_sets)[order], install[order]
        )
        hits_all = hits_ordered[inverse]
        offset = 0
        for channel in channels:
            count = channel.addresses.shape[0]
            channel.hits = hits_all[offset : offset + count]
            offset += count
    else:
        installers = [c for c in channels if c.install]
        if len(installers) > cache.associativity:
            raise FastpathUnsupported(
                "more interleaved install streams than cache ways"
            )
        ranges = []
        for channel in channels:
            lines = channel.addresses // line_bytes
            if channel.install and np.any(np.diff(lines) < 0):
                raise FastpathUnsupported(
                    "set-associative classification needs monotone probe "
                    "streams"
                )
            ranges.append((int(lines.min()), int(lines.max()), channel))
        ranges.sort(key=lambda r: r[0])
        for (_, hi, _), (lo, _, _) in zip(ranges, ranges[1:]):
            if lo <= hi:
                raise FastpathUnsupported(
                    "probe streams overlap; LRU interaction not vectorized"
                )
        for channel in channels:
            lines = channel.addresses // line_bytes
            if channel.install:
                hits = np.empty(lines.shape[0], dtype=bool)
                hits[0] = False
                np.equal(lines[1:], lines[:-1], out=hits[1:])
                channel.hits = hits
            else:
                channel.hits = np.zeros(lines.shape[0], dtype=bool)
    hits = sum(int(c.hits.sum()) for c in channels)
    total = sum(c.addresses.shape[0] for c in channels)
    return hits, total - hits


# -- the fast engine -----------------------------------------------------------


class FastEngine:
    """Vectorized twin of :class:`~repro.memsim.engine.MemoryEngine`.

    Same constructor signature and ``run_*`` interface; raises
    :class:`FastpathUnsupported` instead of silently approximating when
    a stream falls outside the envelope.
    """

    def __init__(self, node: NodeConfig, occupancy_scale: float = 1.0) -> None:
        self.node = node
        self.occupancy_scale = occupancy_scale
        self._check_config()

    def _check_config(self) -> None:
        node = self.node
        if node.cache.write_policy not in ("around", "through"):
            raise FastpathUnsupported(
                f"write policy {node.cache.write_policy!r} stays on the oracle"
            )
        if node.write_buffer.depth > _MAX_WB_DEPTH:
            raise FastpathUnsupported("write buffer too deep for the fast path")
        if node.read_ahead.enabled and node.read_ahead.depth > _MAX_READAHEAD_DEPTH:
            raise FastpathUnsupported("read-ahead too deep for the fast path")

    # -- public kernels ----------------------------------------------------

    def run_load_stream(self, read: AccessStream) -> KernelResult:
        return self._run_processor_kernel(read=read, write=None)

    def run_store_stream(self, write: AccessStream) -> KernelResult:
        return self._run_processor_kernel(read=None, write=write)

    def run_copy(self, read: AccessStream, write: AccessStream) -> KernelResult:
        if read.nwords != write.nwords:
            raise ValueError("read and write streams must have equal length")
        return self._run_processor_kernel(read=read, write=write)

    def run_load_send(self, read: AccessStream) -> KernelResult:
        result = self._run_processor_kernel(
            read=read, write=None, ni_store=True
        )
        return self._cap_by_ni(result)

    def run_receive_store(self, write: AccessStream) -> KernelResult:
        result = self._run_processor_kernel(
            read=None, write=write, ni_load=True
        )
        return self._cap_by_ni(result)

    def run_fetch_send(self, nwords: int) -> KernelResult:
        # Already O(1) in the scalar engine; delegate so the DMA page
        # accounting lives in exactly one place.
        return MemoryEngine(self.node, self.occupancy_scale).run_fetch_send(
            nwords
        )

    def load_latency_ns(self, address: int = 0) -> float:
        return MemoryEngine(self.node, self.occupancy_scale).load_latency_ns(
            address
        )

    # -- deposit (no processor: closed-form recurrence) --------------------

    def run_deposit(self, write: AccessStream) -> KernelResult:
        cfg = self.node
        if not cfg.deposit.supports(write.pattern.is_contiguous):
            raise ValueError(
                f"deposit engine ({cfg.deposit.patterns}) cannot handle "
                f"write pattern {write.pattern}"
            )
        merge = write.pattern.is_contiguous
        word_ns = (
            cfg.deposit.contiguous_word_ns if merge else cfg.deposit.pair_word_ns
        )
        addresses = np.asarray(write.addresses, dtype=np.int64)
        n = addresses.shape[0]
        if n == 0:
            return self._cap_by_ni(KernelResult(ns=0.0, nwords=0))
        if merge:
            lines = addresses // cfg.cache.line_bytes
            starts_mask = np.empty(n, dtype=bool)
            starts_mask[0] = True
            np.not_equal(lines[1:], lines[:-1], out=starts_mask[1:])
            starts = np.flatnonzero(starts_mask)
            bounds = np.append(starts, n)
            entry_addr = addresses[starts]
            entry_words = np.diff(bounds)
            # Entry r flushes while the engine stamps the first word of
            # run r+1 (the final entry flushes after the loop).
            flush_at = np.append(bounds[1:-1] + 1, n).astype(np.float64) * word_ns
        else:
            entry_addr = addresses
            entry_words = np.ones(n, dtype=np.int64)
            flush_at = np.append(
                np.arange(2, n + 1, dtype=np.float64), float(n)
            ) * word_ns

        dram = cfg.dram
        page = entry_addr // dram.page_bytes
        hit = _prev_equal_in_group(page % dram.n_banks, page)
        occ = (
            np.where(hit, dram.write_hit_ns, dram.write_miss_ns)
            + dram.burst_word_ns * (entry_words - 1)
        ) * self.occupancy_scale
        # dram_free_k = max(flush_k, dram_free_{k-1}) + occ_k, solved by
        # the max-prefix identity over cumulative occupancies.
        cum = np.cumsum(occ)
        dram_final = float(np.max(flush_at - (cum - occ)) + cum[-1])
        engine_t = float(n) * word_ns
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("memsim.kernels")
            tracer.metrics.inc("memsim.page_hits", int(hit.sum()))
            tracer.metrics.inc("memsim.page_misses", int((~hit).sum()))
        result = KernelResult(
            ns=max(engine_t, dram_final),
            nwords=n,
            dram_page_hit_rate=float(hit.sum()) / hit.shape[0] if hit.shape[0] else 0.0,
        )
        return self._cap_by_ni(result)

    # -- shared processor-kernel machinery ---------------------------------

    def _cap_by_ni(self, result: KernelResult) -> KernelResult:
        fifo = self.node.ni.fifo_mbps
        if fifo <= 0:
            return result
        floor_ns = result.nwords * WORD_BYTES / fifo * 1000.0
        if result.ns >= floor_ns:
            return result
        return KernelResult(
            ns=floor_ns,
            nwords=result.nwords,
            cache_hit_rate=result.cache_hit_rate,
            dram_page_hit_rate=result.dram_page_hit_rate,
        )

    def _readahead_active(self, read: AccessStream, writes_to_dram: bool) -> bool:
        cfg = self.node.read_ahead
        if not cfg.enabled or not read.pattern.is_contiguous:
            return False
        return cfg.survives_writes or not writes_to_dram

    def _run_processor_kernel(
        self,
        read: Optional[AccessStream],
        write: Optional[AccessStream],
        ni_store: bool = False,
        ni_load: bool = False,
    ) -> KernelResult:
        node = self.node
        proc = node.processor
        cache = node.cache
        cyc = proc.cycle_ns
        line_bytes = cache.line_bytes
        line_words = cache.line_words
        pipe_depth = proc.pipelined_load_depth
        scale = self.occupancy_scale
        nwords = read.nwords if read is not None else write.nwords  # type: ignore[union-attr]
        if nwords == 0:
            result = KernelResult(ns=0.0, nwords=0)
            return self._cap_by_ni(result) if ni_store or ni_load else result
        word_keys = np.arange(nwords, dtype=np.int64) * 64

        writes_to_dram = write is not None
        # When the read-ahead unit is engaged the engine routes every
        # data miss through it even at depth 0, where the empty window
        # degenerates to plain blocking fills.
        ra_mode = read is not None and self._readahead_active(
            read, writes_to_dram=writes_to_dram
        )
        readahead = ra_mode and node.read_ahead.depth > 0
        data_probed = read is not None and not (
            pipe_depth > 0 and proc.pipelined_loads_bypass_cache
        )

        # ---- cache probes ------------------------------------------------
        channels: List[_ProbeChannel] = []
        idx_r = idx_w = data_ch = store_ch = None
        if read is not None and read.index_addresses is not None:
            idx_r = _ProbeChannel(
                _S_IDX_R, np.asarray(read.index_addresses, np.int64), True
            )
            channels.append(idx_r)
        if data_probed:
            data_ch = _ProbeChannel(
                _S_DATA, np.asarray(read.addresses, np.int64), True
            )
            channels.append(data_ch)
        if write is not None and write.index_addresses is not None:
            idx_w = _ProbeChannel(
                _S_IDX_W, np.asarray(write.index_addresses, np.int64), True
            )
            channels.append(idx_w)
        if write is not None and cache.write_policy == "through":
            store_ch = _ProbeChannel(
                _S_STORE, np.asarray(write.addresses, np.int64), False
            )
            channels.append(store_ch)
        cache_hits, cache_misses = _classify_cache(node, channels)

        # ---- memory operations (build order), events ---------------------
        ops_key: List[np.ndarray] = []
        ops_addr: List[np.ndarray] = []
        ops_words: List[np.ndarray] = []
        ops_is_write: List[np.ndarray] = []
        ev_specs: List[Tuple[np.ndarray, int, Optional[int]]] = []
        # ev_specs rows: (event keys, opcode, op-group id or None); op
        # groups pair each event with the memory operation feeding it.

        def add_read_ops(words_idx: np.ndarray, slot: int, addrs: np.ndarray,
                         burst_words: int, opcode: int) -> None:
            keys = words_idx * 64 + slot
            ops_key.append(keys * 256)
            ops_addr.append(addrs)
            ops_words.append(
                np.full(addrs.shape[0], burst_words, dtype=np.int64)
            )
            ops_is_write.append(np.zeros(addrs.shape[0], dtype=bool))
            ev_specs.append((keys, opcode, len(ops_key) - 1))

        fill_opcode = _EV_PIPE if pipe_depth > 0 else _EV_BLOCKING

        for channel in (idx_r, idx_w):
            if channel is None:
                continue
            miss = np.flatnonzero(~channel.hits)
            if miss.shape[0]:
                fills = (
                    channel.addresses[miss] // line_bytes
                ) * line_bytes
                add_read_ops(miss, channel.slot, fills, line_words, fill_opcode)

        ra_depth = node.read_ahead.depth
        if read is not None:
            data_addr = np.asarray(read.addresses, np.int64)
            if not data_probed:
                # Pipelined loads bypass the cache: every word issues.
                add_read_ops(
                    np.arange(nwords, dtype=np.int64),
                    _S_DATA,
                    data_addr,
                    1,
                    _EV_PIPE,
                )
            else:
                miss = np.flatnonzero(~data_ch.hits)
                if miss.shape[0]:
                    fills = (data_addr[miss] // line_bytes) * line_bytes
                    if readahead:
                        miss_lines = fills // line_bytes
                        if np.any(np.diff(miss_lines) != 1):
                            raise FastpathUnsupported(
                                "read-ahead needs a strictly advancing "
                                "contiguous line walk"
                            )
                        # First fill is a demand (blocking) read...
                        add_read_ops(
                            miss[:1], _S_DATA, fills[:1], line_words,
                            _EV_BLOCKING,
                        )
                        # ...followed by consumes of earlier prefetches.
                        if miss.shape[0] > 1:
                            ev_specs.append(
                                (miss[1:] * 64 + _S_DATA, _EV_RA_CONSUME, None)
                            )
                        # Prefetches: the first miss primes the whole
                        # window, every later miss tops it up by one.
                        first_line = int(miss_lines[0])
                        for ahead in range(1, ra_depth + 1):
                            add_read_ops(
                                miss[:1],
                                _S_SCHED + ahead - 1,
                                np.asarray(
                                    [(first_line + ahead) * line_bytes],
                                    np.int64,
                                ),
                                line_words,
                                _EV_RA_SCHED,
                            )
                        if miss.shape[0] > 1:
                            add_read_ops(
                                miss[1:],
                                _S_SCHED,
                                (miss_lines[1:] + ra_depth) * line_bytes,
                                line_words,
                                _EV_RA_SCHED,
                            )
                    else:
                        add_read_ops(
                            miss,
                            _S_DATA,
                            fills,
                            line_words,
                            _EV_BLOCKING if ra_mode else fill_opcode,
                        )

        n_drains = 0
        entry_drain = None
        if write is not None:
            store_addr = np.asarray(write.addresses, np.int64)
            entry_addr, entry_words, entry_drain, drain_word = _build_store_plan(
                store_addr, line_bytes, node.write_buffer.depth,
                node.write_buffer.merge,
            )
            n_drains = drain_word.shape[0]
            n_entries = entry_addr.shape[0]
            # Each buffer entry reaches DRAM at its drain's position;
            # leftovers flush at the finish drain past the last word.
            final_key = np.int64((nwords + 1) * 64)
            if n_drains:
                entry_pos = np.where(
                    entry_drain < n_drains,
                    drain_word[np.minimum(entry_drain, n_drains - 1)] * 64
                    + _S_STORE,
                    final_key,
                )
            else:
                entry_pos = np.full(n_entries, final_key, dtype=np.int64)
            # FIFO position within the flushing batch (entry_drain is
            # nondecreasing, so batches are consecutive runs).
            idx = np.arange(n_entries, dtype=np.int64)
            order_in_group = np.zeros(n_entries, dtype=np.int64)
            if n_entries:
                change = np.empty(n_entries, dtype=bool)
                change[0] = True
                np.not_equal(entry_drain[1:], entry_drain[:-1], out=change[1:])
                group_start = np.maximum.accumulate(np.where(change, idx, 0))
                order_in_group = idx - group_start
            if np.any(order_in_group >= 256):
                raise FastpathUnsupported("write batch too large to order")
            ops_key.append(entry_pos * 256 + order_in_group)
            ops_addr.append(entry_addr)
            ops_words.append(entry_words)
            ops_is_write.append(np.ones(entry_addr.shape[0], dtype=bool))
            if n_drains:
                ev_specs.append((drain_word * 64 + _S_STORE, _EV_DRAIN, None))

        # The finish drain always runs (a no-op when nothing is pending).
        ev_specs.append(
            (np.asarray([(nwords + 1) * 64], np.int64), _EV_FINAL_DRAIN, None)
        )

        # ---- DRAM page classification over the merged operation order ----
        all_key = np.concatenate(ops_key) if ops_key else np.zeros(0, np.int64)
        all_addr = np.concatenate(ops_addr) if ops_addr else np.zeros(0, np.int64)
        all_words = (
            np.concatenate(ops_words) if ops_words else np.zeros(0, np.int64)
        )
        all_write = (
            np.concatenate(ops_is_write) if ops_is_write else np.zeros(0, bool)
        )
        dram = node.dram
        order = np.argsort(all_key, kind="stable")
        page = all_addr // dram.page_bytes
        hit_sorted = _prev_equal_in_group(
            (page % dram.n_banks)[order], page[order]
        )
        page_hit = np.zeros(all_addr.shape[0], dtype=bool)
        page_hit[order] = hit_sorted
        burst_extra = dram.burst_word_ns * (all_words - 1)
        lat = np.where(page_hit, dram.read_hit_ns, dram.read_miss_ns) + burst_extra
        occ = np.where(
            all_write,
            np.where(page_hit, dram.write_hit_ns, dram.write_miss_ns),
            np.where(
                page_hit,
                dram.read_occupancy_hit_ns,
                dram.read_occupancy_miss_ns,
            ),
        ) + burst_extra
        occ = occ * scale
        page_hits = int(page_hit.sum())
        page_total = int(page_hit.shape[0])

        # Per-group offsets into the flat op arrays.
        group_offsets = np.cumsum(
            [0] + [arr.shape[0] for arr in ops_addr]
        )

        drain_sums = np.zeros(n_drains + 1, dtype=np.float64)
        if write is not None and entry_drain is not None and entry_drain.shape[0]:
            write_slice = slice(group_offsets[-2], group_offsets[-1])
            drain_sums = np.bincount(
                entry_drain,
                weights=occ[write_slice],
                minlength=n_drains + 1,
            )

        # ---- assemble events --------------------------------------------
        ev_key_parts: List[np.ndarray] = []
        ev_type_parts: List[np.ndarray] = []
        ev_p1_parts: List[np.ndarray] = []
        ev_p2_parts: List[np.ndarray] = []
        for keys, opcode, group in ev_specs:
            count = keys.shape[0]
            ev_key_parts.append(keys)
            ev_type_parts.append(np.full(count, opcode, dtype=np.int64))
            if group is not None:
                lo = group_offsets[group]
                ev_p1_parts.append(lat[lo : lo + count])
                ev_p2_parts.append(occ[lo : lo + count])
            elif opcode == _EV_DRAIN:
                ev_p1_parts.append(drain_sums[:n_drains])
                ev_p2_parts.append(np.zeros(count))
            elif opcode == _EV_FINAL_DRAIN:
                ev_p1_parts.append(drain_sums[n_drains:])
                ev_p2_parts.append(np.zeros(count))
            else:  # consume
                ev_p1_parts.append(np.zeros(count))
                ev_p2_parts.append(np.zeros(count))
        ev_key = np.concatenate(ev_key_parts)
        ev_order = np.argsort(ev_key, kind="stable")
        ev_key = ev_key[ev_order]
        ev_type = np.concatenate(ev_type_parts)[ev_order]
        ev_p1 = np.concatenate(ev_p1_parts)[ev_order]
        ev_p2 = np.concatenate(ev_p2_parts)[ev_order]

        # ---- processor-time increments ----------------------------------
        inc_cols: List[Tuple[int, np.ndarray]] = []

        def const(slot: int, value: float) -> None:
            if value:
                inc_cols.append((slot, np.full(nwords, value)))

        def hit_bonus(slot: int, channel: Optional[_ProbeChannel]) -> None:
            if channel is not None and cache.hit_ns and channel.hits is not None:
                amounts = np.where(channel.hits, cache.hit_ns, 0.0)
                inc_cols.append((slot, amounts))

        pre = 0.0
        if ni_load:
            pre += node.ni.load_ns
        if idx_r is not None:
            pre += (proc.index_extra_cycles + proc.load_issue_cycles) * cyc
        const(_S_PRE, pre)
        hit_bonus(_S_PRE, idx_r)
        if read is not None:
            const(_S_DATA_PRE, proc.load_issue_cycles * cyc)
            hit_bonus(_S_DATA_PRE, data_ch)
        if ni_store:
            const(_S_POST, node.ni.store_ns)
        if idx_w is not None:
            const(
                _S_IDX_W_PRE,
                (proc.index_extra_cycles + proc.load_issue_cycles) * cyc,
            )
            hit_bonus(_S_IDX_W_PRE, idx_w)
        if write is not None:
            const(_S_STORE_PRE, proc.store_issue_cycles * cyc)
        const(_S_OVERHEAD, proc.loop_overhead_cycles * cyc)

        a_pre = np.zeros(ev_key.shape[0])
        if inc_cols:
            inc_cols.sort(key=lambda col: col[0])
            slots = np.asarray([slot for slot, _ in inc_cols], dtype=np.int64)
            inc_keys = (word_keys[:, None] + slots[None, :]).ravel()
            inc_amounts = np.column_stack([arr for _, arr in inc_cols]).ravel()
            cumulative = np.cumsum(inc_amounts)
            positions = np.searchsorted(inc_keys, ev_key, side="left")
            consumed = np.where(positions > 0, cumulative[positions - 1], 0.0)
            a_pre[0] = consumed[0]
            np.subtract(consumed[1:], consumed[:-1], out=a_pre[1:])

        ns = _replay(
            ev_type.tolist(),
            a_pre.tolist(),
            ev_p1.tolist(),
            ev_p2.tolist(),
            pipe_depth,
        )
        total_probes = cache_hits + cache_misses
        tracer = current_tracer()
        if tracer is not None:
            metrics = tracer.metrics
            metrics.inc("memsim.kernels")
            metrics.inc("memsim.cache_hits", cache_hits)
            metrics.inc("memsim.cache_misses", cache_misses)
            metrics.inc("memsim.page_hits", page_hits)
            metrics.inc("memsim.page_misses", page_total - page_hits)
            # Scheduled drains plus the finish drain when entries are
            # still buffered past the last word — the same tally the
            # scalar engine's non-empty _drain_stores calls produce.
            drains = n_drains
            if entry_drain is not None and np.any(entry_drain >= n_drains):
                drains += 1
            metrics.inc("memsim.wb_drains", drains)
        return KernelResult(
            ns=ns,
            nwords=nwords,
            cache_hit_rate=cache_hits / total_probes if total_probes else 0.0,
            dram_page_hit_rate=page_hits / page_total if page_total else 0.0,
        )


def _replay(
    ev_type: List[int],
    ev_a: List[float],
    ev_p1: List[float],
    ev_p2: List[float],
    pipe_depth: int,
) -> float:
    """Advance the engine clocks over the compiled event array."""
    cpu = 0.0
    dram = 0.0
    bda = 0.0  # batch-drained-at: when the previous drain left the queue
    pipe: List[float] = []
    pipe_head = 0
    ra_fifo: List[float] = []
    ra_head = 0
    for typ, a, p1, p2 in zip(ev_type, ev_a, ev_p1, ev_p2):
        cpu += a
        if typ == _EV_BLOCKING:
            start = dram if dram > cpu else cpu
            dram = start + p2
            cpu = start + p1
        elif typ == _EV_DRAIN:
            if bda > cpu:
                cpu = bda
            dram += p1
            bda = dram
        elif typ == _EV_PIPE:
            if len(pipe) - pipe_head >= pipe_depth:
                ready = pipe[pipe_head]
                pipe_head += 1
                if ready > cpu:
                    cpu = ready
            start = dram if dram > cpu else cpu
            dram = start + p2
            pipe.append(start + p1)
        elif typ == _EV_RA_CONSUME:
            ready = ra_fifo[ra_head]
            ra_head += 1
            if ready > cpu:
                cpu = ready
        elif typ == _EV_RA_SCHED:
            start = dram if dram > cpu else cpu
            dram = start + p2
            ra_fifo.append(start + p1)
        else:  # _EV_FINAL_DRAIN
            dram += p1
            bda = dram
    for ready in pipe[pipe_head:]:
        if ready > cpu:
            cpu = ready
    return cpu if cpu > dram else dram
