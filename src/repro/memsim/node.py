"""High-level measurement interface to one node's memory system.

:class:`NodeMemorySystem` wraps the timeline engine with the stream
generators so callers can ask directly for the throughput of a basic
transfer — the Python equivalent of the paper's "simple experiments
using fine grain timers" (Section 4):

>>> from repro.machines import t3d
>>> node = t3d().node_memory()
>>> from repro.core.patterns import CONTIGUOUS, strided
>>> rate = node.measure_copy(CONTIGUOUS, strided(64))  # |1C64| in MB/s
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

from ..core.patterns import AccessPattern
from ..trace.tracer import current_tracer
from .config import NodeConfig
from .engine import KernelResult, MemoryEngine
from .fastpath import FastEngine, FastpathUnsupported
from .streams import DEFAULT_INDEX_RUN, AccessStream, make_stream

__all__ = ["NodeMemorySystem", "DEFAULT_MEASURE_WORDS", "ENGINE_ENV"]

#: Environment variable overriding every :class:`NodeMemorySystem`'s
#: engine selection: ``auto`` (default), ``fast`` (vectorized path,
#: error if a stream falls outside its envelope) or ``scalar`` (always
#: the reference oracle).
ENGINE_ENV = "REPRO_MEMSIM_ENGINE"

_ENGINE_MODES = ("auto", "fast", "scalar")

#: Default stream length for measurements: 32 Ki words = 256 KB, far
#: beyond both machines' first-level caches so cold-start effects wash
#: out, yet quick to simulate.
DEFAULT_MEASURE_WORDS = 32768

#: Byte distance between the source and destination regions of a copy.
#: Offset by one typical DRAM page so the regions fall in different banks
#: on interleaved memory systems (arrays allocated back to back rarely
#: share bank alignment).
_REGION_GAP = (1 << 24) + 256


class NodeMemorySystem:
    """Measurement harness over a :class:`~repro.memsim.engine.MemoryEngine`.

    Args:
        config: The node's hardware parameters.
        nwords: Stream length used for measurements.
        index_run: Locality run length for indexed streams (see
            :mod:`repro.memsim.streams`).
        occupancy_scale: Bus-arbitration multiplier passed to the engine.
        engine: ``"auto"`` uses the vectorized fast path when a stream
            qualifies and falls back to the scalar oracle otherwise;
            ``"fast"`` raises
            :class:`~repro.memsim.fastpath.FastpathUnsupported` instead
            of falling back; ``"scalar"`` always runs the oracle.  The
            ``REPRO_MEMSIM_ENGINE`` environment variable, when set,
            overrides this argument everywhere.

    Kernel results are memoized per instance: the streams are
    deterministic functions of ``(config, nwords, index_run,
    occupancy_scale, pattern)``, so re-measuring the same transfer is a
    dictionary lookup.  ``last_engine`` reports which engine produced
    the most recent (uncached) result.
    """

    def __init__(
        self,
        config: NodeConfig,
        nwords: int = DEFAULT_MEASURE_WORDS,
        index_run: int = DEFAULT_INDEX_RUN,
        occupancy_scale: float = 1.0,
        engine: str = "auto",
    ) -> None:
        if engine not in _ENGINE_MODES:
            raise ValueError(
                f"engine must be one of {_ENGINE_MODES}, got {engine!r}"
            )
        self.config = config
        self.nwords = nwords
        self.index_run = index_run
        self.occupancy_scale = occupancy_scale
        self.engine = engine
        self.last_engine: Optional[str] = None
        self.fastpath_fallbacks = 0
        self._results: Dict[Tuple, KernelResult] = {}
        # Kernel keys the fast path has already rejected, so ``auto``
        # mode neither re-attempts them nor re-counts the fallback.
        self._fast_unsupported: Dict[Tuple, bool] = {}

    def _engine(self) -> MemoryEngine:
        return MemoryEngine(self.config, occupancy_scale=self.occupancy_scale)

    def _resolve_engine_mode(self) -> str:
        mode = os.environ.get(ENGINE_ENV) or self.engine
        if mode not in _ENGINE_MODES:
            raise ValueError(
                f"{ENGINE_ENV} must be one of {_ENGINE_MODES}, got {mode!r}"
            )
        return mode

    def clear_cache(self) -> None:
        """Drop memoized kernel results."""
        self._results.clear()
        self._fast_unsupported.clear()

    def _memo_hit(self, result: KernelResult) -> KernelResult:
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc("memsim.memo_hits")
        return result

    def _run_with(
        self, key: Tuple, run: Callable[[object], KernelResult], used: str
    ) -> KernelResult:
        """Execute ``run`` on the named engine and memoize under it."""
        if used == "fast":
            result = run(
                FastEngine(self.config, occupancy_scale=self.occupancy_scale)
            )
        else:
            result = run(self._engine())
        self.last_engine = used
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.inc(f"memsim.engine.{used}")
        self._results[key + (used,)] = result
        return result

    def _kernel(
        self, key: Tuple, run: Callable[[object], KernelResult]
    ) -> KernelResult:
        """Run a kernel on the selected engine, memoizing the result.

        ``run`` receives either engine — :class:`FastEngine` mirrors
        the ``run_*`` interface of the scalar oracle exactly.

        Results are memoized under the engine that *actually produced*
        them, not the mode that was requested: an ``auto`` query that
        ran on the fast path shares its memo entry with ``fast`` mode,
        and an ``auto`` fallback shares with ``scalar`` mode.  The two
        engines may differ in the last float ulp, so keying on the
        requested mode would let a toggled ``REPRO_MEMSIM_ENGINE``
        serve a value the named engine never computed — and re-simulate
        queries whose result already exists under the other name.
        """
        mode = self._resolve_engine_mode()
        if mode == "scalar":
            cached = self._results.get(key + ("scalar",))
            if cached is not None:
                return self._memo_hit(cached)
            return self._run_with(key, run, "scalar")
        if mode == "fast":
            # Always attempt: a repeat of an unsupported kernel must
            # raise FastpathUnsupported again, identically.
            cached = self._results.get(key + ("fast",))
            if cached is not None:
                return self._memo_hit(cached)
            return self._run_with(key, run, "fast")
        # ``auto``: fast path when the kernel qualifies, scalar oracle
        # otherwise, remembering which side each key landed on.
        if key not in self._fast_unsupported:
            cached = self._results.get(key + ("fast",))
            if cached is not None:
                return self._memo_hit(cached)
            try:
                return self._run_with(key, run, "fast")
            except FastpathUnsupported:
                # Count every fallback so a configuration that silently
                # never uses the fast path shows up in metrics.
                self._fast_unsupported[key] = True
                self.fastpath_fallbacks += 1
                tracer = current_tracer()
                if tracer is not None:
                    tracer.metrics.inc("memsim.fastpath_unsupported")
        cached = self._results.get(key + ("scalar",))
        if cached is not None:
            return self._memo_hit(cached)
        return self._run_with(key, run, "scalar")

    def _stream(
        self, pattern: AccessPattern, base: int = 0, seed: int = 12345
    ) -> AccessStream:
        return make_stream(
            pattern, self.nwords, base=base, seed=seed, index_run=self.index_run
        )

    # -- kernel measurements (full results) ---------------------------------

    def copy_result(
        self, read: AccessPattern, write: AccessPattern
    ) -> KernelResult:
        """Run ``xCy`` and return the full kernel result."""
        read_stream = self._stream(read, base=0, seed=12345)
        write_stream = self._stream(write, base=_REGION_GAP, seed=54321)
        return self._kernel(
            ("copy", read, write),
            lambda eng: eng.run_copy(read_stream, write_stream),
        )

    def load_send_result(self, read: AccessPattern) -> KernelResult:
        """Run ``xS0`` and return the full kernel result."""
        stream = self._stream(read)
        return self._kernel(
            ("load_send", read),
            lambda eng: eng.run_load_send(stream),
        )

    def receive_store_result(self, write: AccessPattern) -> KernelResult:
        """Run ``0Ry`` and return the full kernel result."""
        stream = self._stream(write)
        return self._kernel(
            ("receive_store", write),
            lambda eng: eng.run_receive_store(stream),
        )

    def deposit_result(self, write: AccessPattern) -> KernelResult:
        """Run ``0Dy`` and return the full kernel result."""
        stream = self._stream(write)
        return self._kernel(
            ("deposit", write),
            lambda eng: eng.run_deposit(stream),
        )

    def fetch_send_result(self, nwords: Optional[int] = None) -> KernelResult:
        """Run ``1F0`` and return the full kernel result."""
        count = nwords or self.nwords
        # O(1) closed form in the scalar engine already; no fast twin.
        return self._engine().run_fetch_send(count)

    def load_stream_result(self, read: AccessPattern) -> KernelResult:
        """Run a pure load stream (Section 3.5.1 read bandwidth)."""
        stream = self._stream(read)
        return self._kernel(
            ("load_stream", read),
            lambda eng: eng.run_load_stream(stream),
        )

    def store_stream_result(self, write: AccessPattern) -> KernelResult:
        """Run a pure store stream."""
        stream = self._stream(write)
        return self._kernel(
            ("store_stream", write),
            lambda eng: eng.run_store_stream(stream),
        )

    # -- throughput shorthands -----------------------------------------------

    def measure_load_stream(self, read: AccessPattern) -> float:
        """Pure read bandwidth in MB/s."""
        return self.load_stream_result(read).mbps

    def measure_store_stream(self, write: AccessPattern) -> float:
        """Pure write bandwidth in MB/s."""
        return self.store_stream_result(write).mbps

    def load_latency_ns(self) -> float:
        """Cold main-memory load latency in ns."""
        return self._engine().load_latency_ns()

    def measure_copy(self, read: AccessPattern, write: AccessPattern) -> float:
        """``|xCy|`` in MB/s."""
        return self.copy_result(read, write).mbps

    def measure_load_send(self, read: AccessPattern) -> float:
        """``|xS0|`` in MB/s."""
        return self.load_send_result(read).mbps

    def measure_receive_store(self, write: AccessPattern) -> float:
        """``|0Ry|`` in MB/s."""
        return self.receive_store_result(write).mbps

    def measure_deposit(self, write: AccessPattern) -> float:
        """``|0Dy|`` in MB/s."""
        return self.deposit_result(write).mbps

    def measure_fetch_send(self) -> float:
        """``|1F0|`` in MB/s."""
        return self.fetch_send_result().mbps

    def supports_deposit(self, write: AccessPattern) -> bool:
        return self.config.deposit.supports(write.is_contiguous)

    @property
    def has_dma(self) -> bool:
        return self.config.dma.present
