"""High-level measurement interface to one node's memory system.

:class:`NodeMemorySystem` wraps the timeline engine with the stream
generators so callers can ask directly for the throughput of a basic
transfer — the Python equivalent of the paper's "simple experiments
using fine grain timers" (Section 4):

>>> from repro.machines import t3d
>>> node = t3d().node_memory()
>>> from repro.core.patterns import CONTIGUOUS, strided
>>> rate = node.measure_copy(CONTIGUOUS, strided(64))  # |1C64| in MB/s
"""

from __future__ import annotations

from typing import Optional

from ..core.patterns import AccessPattern
from .config import NodeConfig
from .engine import KernelResult, MemoryEngine
from .streams import DEFAULT_INDEX_RUN, AccessStream, make_stream

__all__ = ["NodeMemorySystem", "DEFAULT_MEASURE_WORDS"]

#: Default stream length for measurements: 32 Ki words = 256 KB, far
#: beyond both machines' first-level caches so cold-start effects wash
#: out, yet quick to simulate.
DEFAULT_MEASURE_WORDS = 32768

#: Byte distance between the source and destination regions of a copy.
#: Offset by one typical DRAM page so the regions fall in different banks
#: on interleaved memory systems (arrays allocated back to back rarely
#: share bank alignment).
_REGION_GAP = (1 << 24) + 256


class NodeMemorySystem:
    """Measurement harness over a :class:`~repro.memsim.engine.MemoryEngine`.

    Args:
        config: The node's hardware parameters.
        nwords: Stream length used for measurements.
        index_run: Locality run length for indexed streams (see
            :mod:`repro.memsim.streams`).
        occupancy_scale: Bus-arbitration multiplier passed to the engine.
    """

    def __init__(
        self,
        config: NodeConfig,
        nwords: int = DEFAULT_MEASURE_WORDS,
        index_run: int = DEFAULT_INDEX_RUN,
        occupancy_scale: float = 1.0,
    ) -> None:
        self.config = config
        self.nwords = nwords
        self.index_run = index_run
        self.occupancy_scale = occupancy_scale

    def _engine(self) -> MemoryEngine:
        return MemoryEngine(self.config, occupancy_scale=self.occupancy_scale)

    def _stream(
        self, pattern: AccessPattern, base: int = 0, seed: int = 12345
    ) -> AccessStream:
        return make_stream(
            pattern, self.nwords, base=base, seed=seed, index_run=self.index_run
        )

    # -- kernel measurements (full results) ---------------------------------

    def copy_result(
        self, read: AccessPattern, write: AccessPattern
    ) -> KernelResult:
        """Run ``xCy`` and return the full kernel result."""
        read_stream = self._stream(read, base=0, seed=12345)
        write_stream = self._stream(write, base=_REGION_GAP, seed=54321)
        return self._engine().run_copy(read_stream, write_stream)

    def load_send_result(self, read: AccessPattern) -> KernelResult:
        """Run ``xS0`` and return the full kernel result."""
        return self._engine().run_load_send(self._stream(read))

    def receive_store_result(self, write: AccessPattern) -> KernelResult:
        """Run ``0Ry`` and return the full kernel result."""
        return self._engine().run_receive_store(self._stream(write))

    def deposit_result(self, write: AccessPattern) -> KernelResult:
        """Run ``0Dy`` and return the full kernel result."""
        return self._engine().run_deposit(self._stream(write))

    def fetch_send_result(self, nwords: Optional[int] = None) -> KernelResult:
        """Run ``1F0`` and return the full kernel result."""
        return self._engine().run_fetch_send(nwords or self.nwords)

    def load_stream_result(self, read: AccessPattern) -> KernelResult:
        """Run a pure load stream (Section 3.5.1 read bandwidth)."""
        return self._engine().run_load_stream(self._stream(read))

    def store_stream_result(self, write: AccessPattern) -> KernelResult:
        """Run a pure store stream."""
        return self._engine().run_store_stream(self._stream(write))

    # -- throughput shorthands -----------------------------------------------

    def measure_load_stream(self, read: AccessPattern) -> float:
        """Pure read bandwidth in MB/s."""
        return self.load_stream_result(read).mbps

    def measure_store_stream(self, write: AccessPattern) -> float:
        """Pure write bandwidth in MB/s."""
        return self.store_stream_result(write).mbps

    def load_latency_ns(self) -> float:
        """Cold main-memory load latency in ns."""
        return self._engine().load_latency_ns()

    def measure_copy(self, read: AccessPattern, write: AccessPattern) -> float:
        """``|xCy|`` in MB/s."""
        return self.copy_result(read, write).mbps

    def measure_load_send(self, read: AccessPattern) -> float:
        """``|xS0|`` in MB/s."""
        return self.load_send_result(read).mbps

    def measure_receive_store(self, write: AccessPattern) -> float:
        """``|0Ry|`` in MB/s."""
        return self.receive_store_result(write).mbps

    def measure_deposit(self, write: AccessPattern) -> float:
        """``|0Dy|`` in MB/s."""
        return self.deposit_result(write).mbps

    def measure_fetch_send(self) -> float:
        """``|1F0|`` in MB/s."""
        return self.fetch_send_result().mbps

    def supports_deposit(self, write: AccessPattern) -> bool:
        return self.config.deposit.supports(write.is_contiguous)

    @property
    def has_dma(self) -> bool:
        return self.config.dma.present
