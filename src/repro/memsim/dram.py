"""Open-page DRAM timing model.

The T3D node memory is "a simple non-interleaved memory system built
from DRAM chips" (Section 3.5.1); the Paragon's is "surprisingly
similar".  We model a single rank with one open row: accesses to the
open row are page hits, others pay the full row-activate penalty.

Reads return both a *latency* (when the requester sees the data, which
a blocking processor waits for) and an *occupancy* (how long the part
stays busy, which paces pipelined loads, write drains and DMA bursts).
Posted writes only occupy.
"""

from __future__ import annotations

from .config import DRAMConfig

__all__ = ["DRAM"]


class DRAM:
    """Mutable open-page state plus the timing rules.

    The class is deliberately tiny: callers (the
    :class:`~repro.memsim.engine.MemoryEngine`) own all scheduling; the
    DRAM only answers "is this a page hit and what does it cost".
    """

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._open_pages = [-1] * config.n_banks
        self.page_hits = 0
        self.page_misses = 0

    def reset(self) -> None:
        self._open_pages = [-1] * self.config.n_banks
        self.page_hits = 0
        self.page_misses = 0

    def _touch(self, address: int) -> bool:
        """Record an access; return True on a page hit."""
        page = address // self.config.page_bytes
        bank = page % self.config.n_banks
        if page == self._open_pages[bank]:
            self.page_hits += 1
            return True
        self._open_pages[bank] = page
        self.page_misses += 1
        return False

    # -- single accesses ----------------------------------------------------

    def read(self, address: int) -> tuple:
        """One word read: ``(latency_ns, occupancy_ns)``."""
        if self._touch(address):
            return (self.config.read_hit_ns, self.config.read_occupancy_hit_ns)
        return (self.config.read_miss_ns, self.config.read_occupancy_miss_ns)

    def write(self, address: int) -> float:
        """One posted word write: occupancy in ns."""
        if self._touch(address):
            return self.config.write_hit_ns
        return self.config.write_miss_ns

    # -- bursts ---------------------------------------------------------------

    def read_burst(self, address: int, words: int) -> tuple:
        """A line fill or DMA burst of ``words`` consecutive words.

        The first word pays the hit/miss latency; the rest stream at
        ``burst_word_ns``.  Returns ``(latency_ns, occupancy_ns)``
        where latency is until the *last* word arrives.
        """
        first_latency, first_occupancy = self.read(address)
        extra = self.config.burst_word_ns * max(0, words - 1)
        return (first_latency + extra, first_occupancy + extra)

    def write_burst(self, address: int, words: int) -> float:
        """A merged line write of ``words`` consecutive words (ns busy)."""
        first = self.write(address)
        return first + self.config.burst_word_ns * max(0, words - 1)

    @property
    def hit_rate(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0
