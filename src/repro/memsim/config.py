"""Configuration dataclasses for the node memory-system simulator.

Every timing is in nanoseconds and every size in bytes, so configs read
like a datasheet.  A machine (:mod:`repro.machines`) is little more than
one :class:`NodeConfig` plus a network config: the simulator itself is
machine-independent.

The parameters mirror the microarchitectural features Section 3.5 of
the paper holds responsible for the measured throughput asymmetries:

* the T3D's *RDAL* read-ahead circuitry and Alpha write-back queue
  (:class:`ReadAheadConfig`, :class:`WriteBufferConfig`);
* the Paragon i860XP's pipelined loads / prefetch queue
  (``ProcessorConfig.pipelined_load_depth``);
* the Paragon's restricted DMA / line-transfer units
  (:class:`DMAConfig`);
* the T3D annex deposit engine (:class:`DepositConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "WORD_BYTES",
    "DRAMConfig",
    "CacheConfig",
    "WriteBufferConfig",
    "ReadAheadConfig",
    "ProcessorConfig",
    "NIConfig",
    "DMAConfig",
    "DepositConfig",
    "NodeConfig",
]

#: The model's unit of transfer (Section 2.2): a 64-bit word.
WORD_BYTES = 8


@dataclass(frozen=True)
class DRAMConfig:
    """Open-page DRAM timing.

    The simulator keeps one open row (page); an access to the open page
    is a *page hit*, anything else a *page miss*.  Reads have both a
    latency (when the data arrives at the requester) and an occupancy
    (how long the DRAM/bus is busy); posted writes only occupy.

    Attributes:
        page_bytes: Row size.  Strides beyond this always miss.
        n_banks: Independent banks, each keeping its own open row.
            1 models the T3D's "simple non-interleaved memory system";
            more banks let interleaved source/destination streams keep
            separate rows open (Paragon).  Banks share the data bus, so
            they affect hit rates, not parallelism.
        read_hit_ns / read_miss_ns: Load-to-data latency.
        read_occupancy_hit_ns / read_occupancy_miss_ns: Bus + array
            busy time per read.
        write_hit_ns / write_miss_ns: Busy time per posted write.
        burst_word_ns: Incremental cost of each extra word in a burst
            (cache-line fills, DMA streams).
    """

    page_bytes: int = 2048
    n_banks: int = 1
    read_hit_ns: float = 110.0
    read_miss_ns: float = 155.0
    read_occupancy_hit_ns: float = 50.0
    read_occupancy_miss_ns: float = 90.0
    write_hit_ns: float = 40.0
    write_miss_ns: float = 150.0
    burst_word_ns: float = 15.0


@dataclass(frozen=True)
class CacheConfig:
    """A physically-indexed data cache.

    ``write_policy`` is one of:

    * ``"around"`` — stores never allocate and bypass the cache (T3D
      default; stores ride the write buffer);
    * ``"through"`` — stores update the cache on hit and always go to
      memory (Paragon under SUNMOS);
    * ``"back"`` — write-allocate with dirty lines written back on
      eviction.  Neither 1994 machine ran this way; it is provided as
      the modern-node archetype — note it makes *single-touch*
      communication stores more expensive (fill + write-back per
      line), which only sharpens the paper's argument.
    """

    size_bytes: int = 8192
    line_bytes: int = 32
    associativity: int = 1
    hit_ns: float = 7.0
    write_policy: str = "around"

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity

    @property
    def line_words(self) -> int:
        return self.line_bytes // WORD_BYTES


@dataclass(frozen=True)
class WriteBufferConfig:
    """The processor's write (back) queue.

    Posted stores enter the queue and drain to DRAM in the background;
    the processor stalls only when the queue is full.  ``merge=True``
    coalesces consecutive stores to the same line into one DRAM burst —
    the effect that makes contiguous stores cheap on the T3D.
    """

    depth: int = 6
    merge: bool = True


@dataclass(frozen=True)
class ReadAheadConfig:
    """External read-ahead circuitry for contiguous load streams (RDAL).

    When enabled and the load stream is contiguous, line fills are
    prefetched ``depth`` lines ahead so consumption overlaps the fill.
    ``survives_writes=False`` models the T3D behaviour that interleaved
    DRAM writes break the detected stream, so copies do not benefit —
    only pure load streams (e.g. load-sends to the network port) do.
    """

    enabled: bool = False
    depth: int = 2
    survives_writes: bool = False


@dataclass(frozen=True)
class ProcessorConfig:
    """Instruction-issue costs of the optimized transfer loops.

    ``pipelined_load_depth`` > 0 enables pipelined loads (the i860
    ``pfld`` / prefetch queue): up to that many loads are outstanding,
    so load cost degrades to DRAM *occupancy* instead of full latency.
    0 means blocking loads (Alpha 21064).
    """

    clock_mhz: float = 150.0
    load_issue_cycles: float = 1.0
    store_issue_cycles: float = 1.0
    loop_overhead_cycles: float = 2.0
    index_extra_cycles: float = 1.0
    pipelined_load_depth: int = 0
    pipelined_loads_bypass_cache: bool = False

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.clock_mhz


@dataclass(frozen=True)
class NIConfig:
    """The memory-mapped network-interface port.

    Attributes:
        store_ns: Processor cost of one word store to the port (T3D
            annex store, Paragon NI FIFO store).
        load_ns: Processor cost of reading one received word.
        fifo_mbps: The port's sustained bandwidth cap.
    """

    store_ns: float = 30.0
    load_ns: float = 30.0
    fifo_mbps: float = 160.0


@dataclass(frozen=True)
class DMAConfig:
    """A block-transfer / line-transfer DMA engine (Paragon).

    Only contiguous, aligned transfers are supported; crossing a
    ``page_bytes`` boundary stalls the engine until a processor kicks
    it (``page_kick_ns``), modelling the Paragon behaviour described in
    Section 3.5.2.
    """

    present: bool = False
    word_ns: float = 45.0
    setup_ns: float = 2000.0
    page_bytes: int = 4096
    page_kick_ns: float = 500.0


@dataclass(frozen=True)
class DepositConfig:
    """A deposit engine: stores incoming network data in the background.

    ``patterns`` is ``"any"`` (T3D annex: handles address-data pairs
    with arbitrary write patterns) or ``"contiguous"`` (a plain DMA)
    or ``"none"``.

    Block-framed contiguous deposits cost ``contiguous_word_ns`` of
    engine time per word; non-contiguous deposits arrive as
    address-data pairs and pay ``pair_word_ns`` each — decoding an
    address per word is what makes the annex so much slower on
    strided and indexed remote stores (Table 3: 142 vs 52 MB/s).
    """

    patterns: str = "none"
    contiguous_word_ns: float = 15.0
    pair_word_ns: float = 100.0

    def supports(self, contiguous: bool) -> bool:
        if self.patterns == "any":
            return True
        if self.patterns == "contiguous":
            return contiguous
        return False


@dataclass(frozen=True)
class NodeConfig:
    """Everything the memory-system simulator needs about one node."""

    name: str = "node"
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    write_buffer: WriteBufferConfig = field(default_factory=WriteBufferConfig)
    read_ahead: ReadAheadConfig = field(default_factory=ReadAheadConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    ni: NIConfig = field(default_factory=NIConfig)
    dma: DMAConfig = field(default_factory=DMAConfig)
    deposit: DepositConfig = field(default_factory=DepositConfig)
