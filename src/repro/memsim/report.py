"""Diagnostic profiles for memory-system measurements.

Calibrating a machine means understanding *why* a transfer runs at the
speed it does.  :func:`profile_copy` (and friends) re-run a kernel and
classify the result the way an architect would read a performance
counter dump: per-word cost, cache and DRAM page behaviour, and
whether the loop is compute-bound (instruction issue) or memory-bound
(DRAM occupancy / latency).

Used by the calibration script and handy in notebooks; the simulation
itself is untouched — this is presentation over
:class:`~repro.memsim.engine.KernelResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.patterns import AccessPattern
from .config import NodeConfig
from .engine import KernelResult
from .node import NodeMemorySystem

__all__ = ["TransferProfile", "profile_copy", "profile_load_send"]


@dataclass(frozen=True)
class TransferProfile:
    """A human-oriented reading of one kernel measurement.

    Attributes:
        name: Transfer notation ("1C64").
        mbps: Measured throughput.
        ns_per_word: Average end-to-end cost per 64-bit word.
        cache_hit_rate / dram_page_hit_rate: From the kernel run.
        issue_ns_per_word: The processor's instruction cost per word,
            from the node config — the lower bound if memory were free.
        bound_by: ``"issue"`` when the loop runs within 1.3x of the
            instruction bound (compute-bound), else ``"memory"``.
    """

    name: str
    mbps: float
    ns_per_word: float
    cache_hit_rate: float
    dram_page_hit_rate: float
    issue_ns_per_word: float
    bound_by: str

    def render(self) -> str:
        return (
            f"{self.name}: {self.mbps:.1f} MB/s "
            f"({self.ns_per_word:.0f} ns/word, issue bound "
            f"{self.issue_ns_per_word:.0f} ns/word, {self.bound_by}-bound; "
            f"cache hits {self.cache_hit_rate:.0%}, "
            f"DRAM page hits {self.dram_page_hit_rate:.0%})"
        )


def _issue_bound_ns(config: NodeConfig, loads: int, stores: int, indexed: int) -> float:
    processor = config.processor
    cycles = (
        loads * processor.load_issue_cycles
        + stores * processor.store_issue_cycles
        + processor.loop_overhead_cycles
        + indexed * processor.index_extra_cycles
    )
    return cycles * processor.cycle_ns


def _profile(
    name: str,
    config: NodeConfig,
    result: KernelResult,
    issue_ns: float,
) -> TransferProfile:
    ns_per_word = result.ns / result.nwords
    bound_by = "issue" if ns_per_word <= 1.3 * issue_ns else "memory"
    return TransferProfile(
        name=name,
        mbps=result.mbps,
        ns_per_word=ns_per_word,
        cache_hit_rate=result.cache_hit_rate,
        dram_page_hit_rate=result.dram_page_hit_rate,
        issue_ns_per_word=issue_ns,
        bound_by=bound_by,
    )


def profile_copy(
    node: NodeMemorySystem, read: AccessPattern, write: AccessPattern
) -> TransferProfile:
    """Profile a local copy ``xCy``."""
    result = node.copy_result(read, write)
    indexed = int(read.is_indexed) + int(write.is_indexed)
    issue = _issue_bound_ns(node.config, loads=1 + indexed, stores=1, indexed=indexed)
    return _profile(
        f"{read.subscript}C{write.subscript}", node.config, result, issue
    )


def profile_load_send(node: NodeMemorySystem, read: AccessPattern) -> TransferProfile:
    """Profile a load-send ``xS0`` (NI store charged as issue cost)."""
    result = node.load_send_result(read)
    indexed = int(read.is_indexed)
    issue = _issue_bound_ns(node.config, loads=1 + indexed, stores=0, indexed=indexed)
    issue += node.config.ni.store_ns
    return _profile(f"{read.subscript}S0", node.config, result, issue)
