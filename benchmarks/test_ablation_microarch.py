"""Ablation: which microarchitectural feature explains which asymmetry.

DESIGN.md design decision 2: the Table 1 asymmetries must be emergent.
Toggling each feature off must remove exactly the effect the paper
attributes to it:

* T3D write-back-queue merging -> contiguous-store advantage;
* T3D RDAL read-ahead -> the 1S0 > 1C1 pure-load-stream advantage;
* Paragon pipelined loads -> the strided-load advantage.
"""

from dataclasses import replace

from conftest import regenerate
from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import paragon, replace_node, t3d

WORDS = 8192


def test_ablate_wbq_merging(benchmark):
    def run():
        base = t3d()
        ablated = replace_node(
            base, write_buffer=replace(base.node.write_buffer, merge=False)
        )
        return (
            base.node_memory(WORDS).measure_copy(CONTIGUOUS, CONTIGUOUS),
            ablated.node_memory(WORDS).measure_copy(CONTIGUOUS, CONTIGUOUS),
            base.node_memory(WORDS).measure_copy(CONTIGUOUS, strided(64)),
            ablated.node_memory(WORDS).measure_copy(CONTIGUOUS, strided(64)),
        )

    contig_on, contig_off, strided_on, strided_off = regenerate(benchmark, run)
    print(
        f"\nWBQ merging: 1C1 {contig_on:.1f} -> {contig_off:.1f}, "
        f"1C64 {strided_on:.1f} -> {strided_off:.1f} MB/s"
    )
    # Merging is a contiguous-store feature: a clear loss there (the
    # store stream reverts to word-granular DRAM writes)...
    assert contig_off < 0.93 * contig_on
    # ...and (near) no effect on strided stores, which never merge.
    assert abs(strided_off - strided_on) / strided_on < 0.05


def test_ablate_rdal_readahead(benchmark):
    def run():
        base = t3d()
        ablated = replace_node(
            base, read_ahead=replace(base.node.read_ahead, enabled=False)
        )
        return (
            base.node_memory(WORDS).measure_load_send(CONTIGUOUS),
            ablated.node_memory(WORDS).measure_load_send(CONTIGUOUS),
        )

    send_on, send_off = regenerate(benchmark, run)
    print(f"\nRDAL: 1S0 {send_on:.1f} -> {send_off:.1f} MB/s")
    # The paper measured ~60% improvement from read-ahead.
    assert send_on > 1.3 * send_off


def test_ablate_pipelined_loads(benchmark):
    def run():
        base = paragon()
        ablated = replace_node(
            base,
            processor=replace(
                base.node.processor,
                pipelined_load_depth=0,
                pipelined_loads_bypass_cache=False,
            ),
        )
        return (
            base.node_memory(WORDS).measure_copy(strided(64), CONTIGUOUS),
            ablated.node_memory(WORDS).measure_copy(strided(64), CONTIGUOUS),
            base.node_memory(WORDS).measure_copy(CONTIGUOUS, strided(64)),
            ablated.node_memory(WORDS).measure_copy(CONTIGUOUS, strided(64)),
        )

    loads_on, loads_off, stores_on, stores_off = regenerate(benchmark, run)
    print(
        f"\npipelined loads: 64C1 {loads_on:.1f} -> {loads_off:.1f}, "
        f"1C64 {stores_on:.1f} -> {stores_off:.1f} MB/s"
    )
    # Without pfld, strided loads collapse below strided stores: the
    # Paragon would behave like the T3D.
    assert loads_off < 0.8 * loads_on
    assert loads_on >= 0.95 * stores_on   # Paragon asymmetry present
    assert loads_off < stores_off         # ...and gone without pfld
