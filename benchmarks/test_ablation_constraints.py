"""Ablation: the resource-constraint rule and deposit-engine generality.

DESIGN.md design decisions 1 and 4:

* evaluating with vs without the Section 3.4 duplex-memory constraint
  shows when the third composition rule actually binds;
* restricting the T3D annex to contiguous patterns (a Paragon-style
  DMA) makes chained transfers infeasible for strided and indexed
  patterns — the paper's closing advice to hardware designers.
"""

from dataclasses import replace

import pytest

from conftest import regenerate
from repro.core import (
    CompositionError,
    DepositSupport,
    duplex_memory_constraint,
)
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.machines import t3d


def test_duplex_memory_constraint_binds_fast_operations(benchmark):
    def run():
        model = t3d().model(source="paper")
        constraint = duplex_memory_constraint()
        out = {}
        for name, x, y in (
            ("1Q1 chained", CONTIGUOUS, CONTIGUOUS),
            ("1Q64 chained", CONTIGUOUS, strided(64)),
        ):
            free = model.estimate(x, y, "chained")
            capped = model.estimate(
                x, y, "chained", extra_constraints=[constraint]
            )
            out[name] = (free.mbps, capped.mbps, capped.constrained)
        return out

    results = regenerate(benchmark, run)
    print()
    for name, (free, capped, binding) in results.items():
        print(f"{name}: unconstrained {free:.1f}, duplex-capped {capped:.1f} "
              f"({'BINDING' if binding else 'slack'})")
    # The cap (|1C1|/2 = 46.5) bites the fast contiguous chained path...
    free, capped, binding = results["1Q1 chained"]
    assert binding and capped == pytest.approx(46.5)
    # ...but not the already-slower strided one.
    free, capped, binding = results["1Q64 chained"]
    assert not binding and capped == free


def test_deposit_generality_enables_chained(benchmark):
    def run():
        general = t3d()
        restricted = t3d()
        restricted.capabilities = replace(
            restricted.capabilities, deposit=DepositSupport.CONTIGUOUS
        )
        general_model = general.model(source="paper")
        restricted_model = restricted.model(source="paper")
        feasible = general_model.estimate(INDEXED, INDEXED, "chained").mbps
        contiguous_ok = restricted_model.estimate(
            CONTIGUOUS, CONTIGUOUS, "chained"
        ).mbps
        try:
            restricted_model.estimate(INDEXED, INDEXED, "chained")
            infeasible = False
        except CompositionError:
            infeasible = True
        best = restricted_model.choose(INDEXED, INDEXED)
        return feasible, contiguous_ok, infeasible, best.style.value, best.mbps

    feasible, contiguous_ok, infeasible, fallback, rate = regenerate(
        benchmark, run
    )
    print(
        f"\nannex (any pattern): chained wQw {feasible:.1f} MB/s; "
        f"contiguous-only engine: chained wQw infeasible={infeasible}, "
        f"compiler falls back to {fallback} at {rate:.1f} MB/s"
    )
    assert infeasible
    assert fallback == "buffer-packing"
    assert contiguous_ok > 0
    # The hardware restriction costs more than 2x on indexed traffic.
    assert feasible > 2 * rate
