"""Bench: Table 4 — network bandwidth as a function of congestion."""

from conftest import regenerate, show
from repro.bench import table4
from repro.bench.reporting import max_ratio_error
from repro.machines import paragon, t3d
from repro.netsim.network import FramingMode
from repro.netsim.patterns import all_to_all, cyclic_shift


def test_table4_t3d(benchmark):
    rows = regenerate(benchmark, table4, t3d())
    show("Table 4 (Cray T3D): network bandwidth, MB/s", rows)
    assert max_ratio_error(rows) < 0.06
    by_label = {row.label: row.ours for row in rows}
    # Data-only framing roughly doubles address-data-pair throughput
    # once the wire binds (congestion >= 2).
    assert by_label["data@2"] > 1.7 * by_label["adp@2"]
    # The adp column falls less than 2x from congestion 1 to 2: the
    # annex endpoint cap binds at congestion 1.
    assert by_label["adp@1"] / by_label["adp@2"] < 1.8


def test_table4_paragon(benchmark):
    rows = regenerate(benchmark, table4, paragon())
    show("Table 4 (Intel Paragon): network bandwidth, MB/s", rows)
    assert max_ratio_error(rows) < 0.06
    by_label = {row.label: row.ours for row in rows}
    # Pure wire effect: every doubling of congestion halves the rate.
    assert abs(by_label["data@1"] / by_label["data@2"] - 2.0) < 0.05
    assert abs(by_label["adp@2"] / by_label["adp@4"] - 2.0) < 0.1


def test_congestion_quirks(benchmark):
    """The two Section 4.3 quirks: T3D port sharing and Paragon aspect
    ratio both push typical patterns to congestion two or more."""

    def quirks():
        t3d_net = t3d().network_model(64)
        paragon_net = paragon().network_model(64)
        return {
            "t3d shift": t3d_net.congestion_for(cyclic_shift(64)),
            "t3d shift half-populated": t3d_net.congestion_for(
                cyclic_shift(64), active_nodes=32
            ),
            "paragon shift": paragon_net.congestion_for(cyclic_shift(64)),
            "paragon aapc": paragon_net.congestion_for(all_to_all(64)),
        }

    values = benchmark.pedantic(quirks, rounds=1, iterations=1)
    print()
    print("== Section 4.3 congestion quirks ==")
    for name, value in values.items():
        print(f"{name:28} {value:.0f}")
    assert values["t3d shift"] == 2  # port sharing floor
    assert values["t3d shift half-populated"] == 1
    assert values["paragon shift"] == 1
    assert values["paragon aapc"] > 2  # unscheduled AAPC congests the mesh
