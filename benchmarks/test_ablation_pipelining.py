"""Ablation: pipelining granularity (DESIGN.md decision 3).

The model optimistically assumes the stages of a transfer overlap
("spread evenly ... obtained through pipelining", Section 4).  This
ablation runs the same chained transfer at three granularities —
message-grain store-and-forward, the runtime's default chunking, and
very fine chunks — and shows that:

* store-and-forward collapses to the *sum* of stage times (well under
  the model);
* fine-grained chunking converges on the model's min rule;
* below a point, per-chunk software overhead eats the gains back.
"""

from conftest import regenerate
from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import t3d
from repro.runtime.engine import CPU_CHUNK_OVERHEAD_NS, CommRuntime
from repro.runtime.stages import Stage, StagePipeline

MESSAGE = 1 << 20  # 1 MB


def test_chunk_granularity_sweep(benchmark):
    def run():
        runtime = CommRuntime(t3d())
        send = runtime._send_rate(CONTIGUOUS)
        network = runtime._network_rate(adp=False, congestion=2)
        deposit = 140.0
        stages = [
            Stage("send", send, "cpu", chunk_overhead_ns=CPU_CHUNK_OVERHEAD_NS),
            Stage("net", network, "net"),
            Stage("deposit", deposit, "dep"),
        ]
        results = {}
        for chunk in (MESSAGE, 65536, 4096, 512, 64):
            results[chunk] = StagePipeline(stages).run(
                MESSAGE, chunk_bytes=chunk
            ).mbps
        model_min = min(send, network, deposit)
        harmonic = 1.0 / (1.0 / send + 1.0 / network + 1.0 / deposit)
        return results, model_min, harmonic

    results, model_min, harmonic = regenerate(benchmark, run)
    print()
    print("== Pipelining ablation: chained 1Q1-like transfer, 1 MB ==")
    print(f"model (min rule): {model_min:.1f} MB/s; "
          f"store-and-forward bound (harmonic): {harmonic:.1f} MB/s")
    for chunk, rate in sorted(results.items(), reverse=True):
        print(f"  chunk {chunk:>8} B: {rate:6.1f} MB/s")

    # Message-grain staging lands at the harmonic (sum-of-stages) bound.
    assert results[MESSAGE] < 0.6 * model_min
    assert abs(results[MESSAGE] - harmonic) / harmonic < 0.05
    # Moderate chunking recovers most of the min rule.
    assert results[4096] > 0.9 * model_min
    # Too-fine chunks pay per-chunk overhead and regress again.
    assert results[64] < results[4096]
