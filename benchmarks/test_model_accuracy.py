"""Bench: Section 7 — "the model is highly accurate".

Assesses the copy-transfer model against the end-to-end runtime over a
4x4 pattern grid and both strategies, on both machines.  The claim is
quantified two ways: the model is a tight upper bound (measured/model
near, and almost never above, 1) and — what a compiler actually needs —
it ranks the two implementation strategies correctly everywhere.
"""

from conftest import regenerate
from repro.bench.accuracy import model_accuracy
from repro.machines import paragon, t3d


def _check(report):
    print()
    print(report.render())
    # Tight upper bound: on average the measurement reaches >=55% of
    # the model, and no cell falls below 40%.
    assert 0.55 <= report.mean_ratio <= 1.0
    assert report.worst_overprediction > 0.40
    # Essentially no cell beats the model.
    assert report.overshoot_cases <= 1
    # The model never mis-ranks the strategies.
    assert report.ranking_accuracy == 1.0


def test_model_accuracy_t3d(benchmark):
    _check(regenerate(benchmark, model_accuracy, t3d()))


def test_model_accuracy_paragon(benchmark):
    _check(regenerate(benchmark, model_accuracy, paragon()))
