"""Bench: Table 3 — throughput of receiving network transfers."""

from conftest import regenerate, show
from repro.bench import table3
from repro.bench.reporting import max_ratio_error
from repro.machines import paragon, t3d


def test_table3_t3d(benchmark):
    rows = regenerate(benchmark, table3, t3d())
    show("Table 3 (Cray T3D): receive transfers, MB/s", rows)
    assert max_ratio_error(rows) < 0.15
    by_label = {row.label: row.ours for row in rows}
    # Block-framed contiguous deposits far outrun address-data pairs...
    assert by_label["0D1"] > 2 * by_label["0D64"]
    # ...and the annex handles strided and indexed pairs at the same
    # pace: decoding the address dominates, not the DRAM pattern.
    assert abs(by_label["0D64"] - by_label["0Dw"]) / by_label["0D64"] < 0.1


def test_table3_paragon(benchmark):
    rows = regenerate(benchmark, table3, paragon())
    show("Table 3 (Intel Paragon): receive transfers, MB/s", rows)
    assert max_ratio_error(rows) < 0.25
    by_label = {row.label: row.ours for row in rows}
    # The DMA deposit beats the co-processor receive loop for blocks.
    assert by_label["0D1"] > by_label["0R1"]
    # Strided receive-stores pay full write-miss cost.
    assert by_label["0R64"] < 0.6 * by_label["0R1"]
