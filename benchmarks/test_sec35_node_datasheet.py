"""Bench: Section 3.5 — published node datasheet figures.

Section 3.5.1 quotes the Cray T3D Applications Programming Course:
local read bandwidth of 55 MB/s for non-contiguous single-word
transfers, up to 320 MB/s for contiguous cache-line reads with
read-ahead, load latency around 150 ns, and processor-to-network
transfers at ~125 MB/s (which is Table 2's 1S0 = 126).  These are
node-level facts the simulator should land on *independently* of the
Table 1-3 calibration targets.
"""

from conftest import regenerate, show
from repro.bench.reporting import Comparison, max_ratio_error
from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import t3d


def test_t3d_datasheet(benchmark):
    def run():
        node = t3d().node_memory(nwords=8192)
        return [
            Comparison(
                "contiguous read stream", 320.0,
                node.measure_load_stream(CONTIGUOUS),
            ),
            Comparison(
                "single-word read stream", 55.0,
                node.measure_load_stream(strided(64)),
            ),
            Comparison("load latency (ns)", 150.0, node.load_latency_ns()),
            Comparison(
                "processor-to-network", 125.0,
                node.measure_load_send(CONTIGUOUS),
            ),
        ]

    rows = regenerate(benchmark, run)
    show("Section 3.5.1 (Cray T3D datasheet figures)", rows)
    by_label = {row.label: row for row in rows}
    # The headline read-ahead number is tight.
    assert abs(by_label["contiguous read stream"].ratio - 1.0) < 0.05
    assert abs(by_label["load latency (ns)"].ratio - 1.0) < 0.10
    assert abs(by_label["processor-to-network"].ratio - 1.0) < 0.05
    # Single-word reads: our loop charges the full line fill; the Cray
    # figure is closer to raw latency. Within a 35% band.
    assert 0.65 < by_label["single-word read stream"].ratio < 1.15
    # And the ratio the paper's argument needs: read-ahead buys ~6x.
    assert (
        by_label["contiguous read stream"].ours
        > 5 * by_label["single-word read stream"].ours
    )


def test_rdal_improvement_band(benchmark):
    """Section 3.5.1: "we have measured improvements of approx. 60%"
    from enabling RDAL (on realistic send streams)."""
    from dataclasses import replace
    from repro.machines import replace_node

    def run():
        base = t3d()
        off = replace_node(
            base, read_ahead=replace(base.node.read_ahead, enabled=False)
        )
        with_rdal = base.node_memory(8192).measure_load_send(CONTIGUOUS)
        without = off.node_memory(8192).measure_load_send(CONTIGUOUS)
        return with_rdal, without

    with_rdal, without = regenerate(benchmark, run)
    improvement = with_rdal / without - 1.0
    print(f"\nRDAL improvement on 1S0: {improvement:.0%} (paper: ~60%)")
    assert 0.4 < improvement < 0.9
