"""Bench: Table 2 — throughput of sending network transfers."""

from conftest import regenerate, show
from repro.bench import table2
from repro.bench.reporting import max_ratio_error
from repro.machines import paragon, t3d


def test_table2_t3d(benchmark):
    rows = regenerate(benchmark, table2, t3d())
    show("Table 2 (Cray T3D): send transfers, MB/s", rows)
    assert max_ratio_error(rows) < 0.15
    by_label = {row.label: row.ours for row in rows}
    # Contiguous sends stream far faster than strided/indexed ones.
    assert by_label["1S0"] > 3 * by_label["64S0"]
    # Indexed sends are the slowest (index loads add work).
    assert by_label["wS0"] <= by_label["64S0"]


def test_table2_paragon(benchmark):
    rows = regenerate(benchmark, table2, paragon())
    show("Table 2 (Intel Paragon): send transfers, MB/s", rows)
    assert max_ratio_error(rows) < 0.30
    by_label = {row.label: row.ours for row in rows}
    # The DMA fetch-send is by far the fastest way to feed the wire.
    assert by_label["1F0"] > 2.5 * by_label["1S0"]
    # Unlike the T3D, strided sends are not catastrophically slower:
    # pipelined loads keep them within ~35% of contiguous sends.
    assert by_label["64S0"] > 0.6 * by_label["1S0"]
