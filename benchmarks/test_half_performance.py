"""Bench: half-performance message lengths (Figure 1, read via n_1/2).

Fitting ``time(n) = t0 + n/B`` to the Figure 1 sweeps condenses each
library's curve into two numbers.  The paper's qualitative reading
becomes quantitative: the low-level path has both a higher asymptote
and an order-of-magnitude smaller half-performance length than PVM —
PVM needs tens-of-KB messages to reach half its (already low) speed.
"""

from conftest import regenerate
from repro.bench import figure1
from repro.core.latency import LatencyModel
from repro.machines import paragon, t3d


def fit_curves(machine):
    curves = figure1(machine)
    return {name: LatencyModel.fit(points) for name, points in curves.items()}


def test_half_performance_lengths(benchmark):
    def run():
        return {machine.name: fit_curves(machine) for machine in (t3d(), paragon())}

    fits = regenerate(benchmark, run)
    print()
    print("== Half-performance analysis of the Figure 1 sweeps ==")
    for machine_name, by_library in fits.items():
        for library, fit in by_library.items():
            print(f"{machine_name:16} {library:10} {fit}")

    for machine_name, by_library in fits.items():
        pvm = by_library["PVM"]
        low = by_library["low-level"]
        # Asymptotes: low-level several times PVM.
        assert low.asymptotic_mbps > 3 * pvm.asymptotic_mbps
        # Startup: PVM pays >100 us per message; the low-level path is
        # several times cheaper.
        assert pvm.startup_ns > 100_000
        assert low.startup_ns < pvm.startup_ns / 5
        # Even at its low asymptote, PVM needs KB-scale messages to
        # reach half speed; at 1 KB it delivers only a few MB/s.
        assert pvm.half_performance_bytes > 1000
        assert pvm.throughput(1024) < 8.0
