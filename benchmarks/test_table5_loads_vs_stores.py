"""Bench: Table 5 — strided loads vs strided stores.

All sixteen cells: {T3D, Paragon} x {1Q16, 16Q1} x {packing, chained}
x {model, measured}.  The optimization the table supports (Section
5.2): prefer strided *stores* on the T3D and strided *loads* on the
Paragon when buffer packing, because each machine's memory system
favours the opposite side.
"""

from conftest import regenerate, show
from repro.bench import table5
from repro.bench.reporting import max_ratio_error


def test_table5(benchmark):
    rows = regenerate(benchmark, table5)
    show("Table 5: strided loads vs strided stores, MB/s", rows)
    by_label = {row.label: row for row in rows}

    # Model cells are algebra over the published tables: tight match,
    # except Paragon 1Q16 chained, where the paper's 32 implies an
    # unpublished (and non-monotonic) 0R16 reading we carry as-is.
    model_rows = [row for row in rows if row.label.endswith("model")]
    assert max_ratio_error(model_rows) < 0.12

    # Measured cells run the full runtime: a wider honest band.
    measured_rows = [row for row in rows if row.label.endswith("meas")]
    assert max_ratio_error(measured_rows) < 0.45

    # Section 5.2's optimization, in the measured packing columns:
    t3d_stores = by_label["T3D 1Q16 buffer-packing meas"].ours
    t3d_loads = by_label["T3D 16Q1 buffer-packing meas"].ours
    assert t3d_stores > t3d_loads, "T3D should prefer strided stores"

    paragon_stores = by_label["Paragon 1Q16 buffer-packing meas"].ours
    paragon_loads = by_label["Paragon 16Q1 buffer-packing meas"].ours
    assert paragon_loads >= paragon_stores, "Paragon should prefer strided loads"

    # Chained beats packing in every measured cell.
    for machine in ("T3D", "Paragon"):
        for op in ("1Q16", "16Q1"):
            chained = by_label[f"{machine} {op} chained meas"].ours
            packing = by_label[f"{machine} {op} buffer-packing meas"].ours
            assert chained > packing
