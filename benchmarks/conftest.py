"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints the
paper-vs-ours comparison, and asserts the *shape* criteria (who wins,
by roughly what factor).  Timing comes from pytest-benchmark; each
regeneration runs once (``pedantic`` with one round) since the work is
deterministic simulation, not noise-limited microcode.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import Comparison, render


def regenerate(benchmark, function, *args, **kwargs):
    """Run a regeneration once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def show(title: str, rows, note: str = "") -> None:
    print()
    print(render(title, rows, note))


def show_series(title: str, series) -> None:
    print()
    print(f"== {title} ==")
    for name, points in series.items():
        formatted = "  ".join(f"{x}:{y:.1f}" for x, y in points)
        print(f"{name:24} {formatted}")
