"""Bench: Section 3.4.1 — the worked 1024x1024 transpose example.

The paper estimates |1Q1024| = 25.0 MB/s for buffer-packing message
passing on the T3D and measures 20.0 MB/s on a 64-node partition.  We
reproduce both: the estimate from the model over the published
calibration, the measurement from the end-to-end runtime simulator.
"""

from conftest import regenerate, show
from repro.bench import section341
from repro.bench.reporting import max_ratio_error


def test_sec341_example(benchmark):
    rows = regenerate(benchmark, section341)
    show("Section 3.4.1 (Cray T3D): |1Q1024| buffer packing, MB/s", rows)
    by_label = {row.label: row for row in rows}
    # The estimate is an algebraic identity: match tightly.
    assert abs(by_label["|1Q1024| estimate"].ratio - 1.0) < 0.02
    # The measurement involves the full runtime: allow a wider band.
    assert abs(by_label["|1Q1024| measured"].ratio - 1.0) < 0.30
    # Shape: measured falls short of the estimate, as on the machine.
    assert by_label["|1Q1024| measured"].ours < by_label["|1Q1024| estimate"].ours
