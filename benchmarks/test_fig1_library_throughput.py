"""Bench: Figure 1 — application throughput, PVM vs low-level libraries.

Figure 1 plots throughput against message size for both machines,
comparing the portable PVM path against the fastest vendor library
(libsm.a / SUNMOS libnx).  The chart prints no exact values, so the
checks are on shape: both curves saturate, PVM saturates far below the
low-level path, neither exceeds the usable wire rate, and the
small-message regime is overhead-dominated.
"""

from conftest import regenerate, show_series
from repro.bench import figure1
from repro.bench.paperdata import FIG1_CONTEXT
from repro.machines import paragon, t3d


def _check(machine, curves):
    pvm = dict(curves["PVM"])
    low = dict(curves["low-level"])
    sizes = sorted(pvm)
    wire = FIG1_CONTEXT[machine.name]["usable_wire"]

    # Monotone saturation for both libraries.
    assert [pvm[s] for s in sizes] == sorted(pvm[s] for s in sizes)
    assert [low[s] for s in sizes] == sorted(low[s] for s in sizes)
    # Nobody beats the usable wire rate.
    assert max(low.values()) <= wire
    # The low-level library dominates PVM at every size, by >2x at the top.
    assert all(low[s] >= pvm[s] for s in sizes)
    assert low[sizes[-1]] > 2 * pvm[sizes[-1]]
    # Small messages are overhead-dominated for PVM.
    assert pvm[sizes[0]] < 1.0
    # Large messages reach a meaningful fraction of the wire.
    assert low[sizes[-1]] > 0.3 * wire


def test_fig1_t3d(benchmark):
    machine = t3d()
    curves = regenerate(benchmark, figure1, machine)
    show_series("Figure 1 (Cray T3D): throughput vs message size, MB/s", curves)
    _check(machine, curves)


def test_fig1_paragon(benchmark):
    machine = paragon()
    curves = regenerate(benchmark, figure1, machine)
    show_series(
        "Figure 1 (Intel Paragon): throughput vs message size, MB/s", curves
    )
    _check(machine, curves)
