"""Bench: Figure 7 — buffer packing vs chained transfers on the T3D.

The figure shows, per access pattern, model and measured throughput
for both implementation strategies.  The published reading: chained
wins everywhere, dramatically for non-contiguous patterns, and the
model tracks the measurements closely.
"""

from conftest import regenerate
from repro.bench import PATTERN_GRID, figure7


def _print(results):
    print()
    print("== Figure 7 (Cray T3D): packing vs chained, MB/s ==")
    header = f"{'pattern':8} {'pack mdl':>9} {'pack meas':>9} {'chain mdl':>9} {'chain meas':>10}"
    print(header)
    for name, entry in results.items():
        print(
            f"{name:8} {entry['buffer-packing model']:9.1f} "
            f"{entry['buffer-packing measured']:9.1f} "
            f"{entry['chained model']:9.1f} {entry['chained measured']:10.1f}"
        )


def test_fig7(benchmark):
    results = regenerate(benchmark, figure7)
    _print(results)

    for name, entry in results.items():
        # Chained beats packing in both the model and the measurement.
        assert entry["chained model"] > entry["buffer-packing model"]
        assert entry["chained measured"] > entry["buffer-packing measured"]
        # Measurements never exceed the model's optimism by much.
        assert entry["chained measured"] <= entry["chained model"] * 1.05
        assert (
            entry["buffer-packing measured"]
            <= entry["buffer-packing model"] * 1.05
        )
        # The model is accurate: measured within ~45% below the model.
        assert entry["chained measured"] > 0.55 * entry["chained model"]

    # The paper's headline: 40-60% gains for non-contiguous patterns.
    for name in ("1Q64", "64Q1", "wQw"):
        entry = results[name]
        gain = entry["chained measured"] / entry["buffer-packing measured"]
        assert 1.3 < gain < 2.6, f"{name}: gain {gain:.2f}"

    # Contiguous-to-contiguous shows the biggest chained advantage in
    # the model (no copies to amortize the slow network against).
    assert (
        results["1Q1"]["chained model"] / results["1Q1"]["buffer-packing model"]
        > 2.0
    )
