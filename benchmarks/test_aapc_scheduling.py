"""Bench: the Section 4.3 scheduling claim.

"Even dense patterns like the complete exchange or personalized
all-to-all communication can be scheduled with minimal congestion on
T3D tori of up to 1024 compute nodes" (citing Hinrichs et al. [8]).

We schedule complete exchanges on growing tori and show the worst
per-phase congestion stays a small constant while the unscheduled
pattern's worst-link load grows with machine size — the fact that
justifies evaluating the model at the bold congestion-2 column.
"""

from conftest import regenerate
from repro.netsim.patterns import all_to_all
from repro.netsim.schedule import best_aapc_schedule
from repro.netsim.topology import Mesh, Torus


def test_aapc_schedules_on_growing_tori(benchmark):
    def run():
        results = {}
        for torus in (Torus(2, 2, 2), Torus(4, 4, 2), Torus(4, 4, 4),
                      Torus(4, 4, 8), Torus(4, 8, 8)):
            name, worst, __phases = best_aapc_schedule(torus)
            unscheduled = (
                torus.max_link_congestion(all_to_all(torus.n_nodes))
                if torus.n_nodes <= 64
                else None
            )
            results[torus.n_nodes] = (name, worst, unscheduled)
        return results

    results = regenerate(benchmark, run)
    print()
    print("== AAPC scheduling on T3D tori (worst per-phase congestion) ==")
    print(f"{'nodes':>6} {'schedule':>9} {'scheduled':>10} {'unscheduled':>12}")
    for nodes, (name, worst, unscheduled) in sorted(results.items()):
        raw = f"{unscheduled}" if unscheduled is not None else "-"
        print(f"{nodes:>6} {name:>9} {worst:>10} {raw:>12}")

    # Minimal congestion: a small constant across two orders of size.
    assert all(worst <= 4 for __, worst, __u in results.values())
    # While the unscheduled worst link grows superlinearly.
    assert results[64][2] >= 16 * results[64][1]


def test_paragon_mesh_aspect_ratio(benchmark):
    """The Paragon quirk: skewed meshes congest even when scheduled."""

    def run():
        __, skewed, __p = best_aapc_schedule(Mesh(4, 16))
        __, square, __p2 = best_aapc_schedule(Mesh(8, 8))
        return skewed, square

    skewed, square = regenerate(benchmark, run)
    print(f"\nscheduled AAPC congestion: Mesh(4,16) {skewed}, Mesh(8,8) {square}")
    assert skewed >= 2 * square
